//! Application-level tests: WeatherWatcher and RegattaClassifier on the
//! full simulated stack.

use radio::{Position, Region};
use sailing::scenario::{start_regatta, straight_course};
use sailing::{WeatherSource, WeatherWatcher};
use sensors::EnvField;
use simkit::SimDuration;
use testbed::{PhoneSetup, Testbed};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn weather_from_nearby_boats_over_adhoc() {
    let tb = Testbed::with_seed(11);
    // Two communicators sailing near each other; the neighbour shares its
    // weather observations.
    let me = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC, EnvField::WindKnots],
        ..PhoneSetup::nokia9500("me", Position::new(0.0, 0.0))
    });
    let neighbor = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC, EnvField::WindKnots],
        ..PhoneSetup::nokia9500("neighbor", Position::new(60.0, 0.0))
    });
    tb.sim.run_for(SimDuration::from_secs(5));
    let neighbor_watcher = WeatherWatcher::new(&tb.sim, neighbor.factory());
    neighbor_watcher.start_sharing(&["temperature", "wind"], SimDuration::from_secs(20));
    tb.sim.run_for(SimDuration::from_secs(60));

    let watcher = WeatherWatcher::new(&tb.sim, me.factory());
    let report = Rc::new(RefCell::new(None));
    let r = report.clone();
    watcher.request(
        Region::new(Position::new(50.0, 0.0), 300.0),
        &["temperature", "wind"],
        move |res| *r.borrow_mut() = Some(res.unwrap()),
    );
    tb.sim.run_for(SimDuration::from_secs(60));
    let report = report.borrow_mut().take().expect("report arrived");
    assert_eq!(report.source, WeatherSource::AdHoc);
    assert!(report.latest("temperature").is_some());
    let t = report.latest("temperature").unwrap().value.as_f64().unwrap();
    let truth = tb
        .env
        .sample(EnvField::TemperatureC, Position::new(60.0, 0.0), tb.sim.now());
    assert!((t - truth).abs() < 3.0, "reported {t}, truth {truth}");
}

#[test]
fn weather_for_a_far_region_falls_back_to_the_infrastructure() {
    let tb = Testbed::with_seed(12);
    // An official station reports from the far harbour region.
    let harbour = Position::new(30_000.0, 5_000.0);
    tb.add_weather_station(
        "harbour-station",
        harbour,
        &[EnvField::TemperatureC, EnvField::WindKnots],
        SimDuration::from_secs(60),
    );
    tb.sim.run_for(SimDuration::from_secs(130));
    let me = tb.add_phone(PhoneSetup {
        cell_on: true,
        ..PhoneSetup::nokia9500("me", Position::new(0.0, 0.0))
    });
    let watcher =
        WeatherWatcher::new(&tb.sim, me.factory()).with_patience(SimDuration::from_secs(10));
    let report = Rc::new(RefCell::new(None));
    let r = report.clone();
    watcher.request(
        Region::new(harbour, 1_000.0),
        &["wind"],
        move |res| *r.borrow_mut() = Some(res.unwrap()),
    );
    tb.sim.run_for(SimDuration::from_secs(90));
    let report = report.borrow_mut().take().expect("report arrived");
    assert_eq!(report.source, WeatherSource::Infrastructure);
    let wind = report.latest("wind").expect("wind observation");
    assert!(wind.source.as_ref().unwrap().0.contains("harbour-station"));
}

#[test]
fn regatta_classification_tracks_the_fastest_boat() {
    let tb = Testbed::with_seed(13);
    let course = straight_course(3, 600.0);
    let regatta = start_regatta(&tb, 3, course);
    // Sail for 20 minutes: boat-0 (fastest) should lead.
    tb.sim.run_for(SimDuration::from_mins(20));
    let standings = regatta.classifier.standings();
    assert!(!standings.is_empty(), "passages reached the infrastructure");
    assert_eq!(standings[0].entity, "boat-0", "fastest boat leads: {standings:?}");
    // Standings are consistent with each participant's local view.
    for p in &regatta.participants {
        let local = p.checkpoints_passed();
        let remote = standings
            .iter()
            .find(|s| s.entity == p.name())
            .map(|s| s.passed)
            .unwrap_or(0);
        assert!(
            remote <= local,
            "{}: infrastructure ({remote}) cannot know more than the boat ({local})",
            p.name()
        );
        assert!(
            local - remote <= 1,
            "{}: at most one passage still in flight",
            p.name()
        );
    }
    // The leader actually finished all checkpoints by now.
    assert_eq!(standings[0].passed, 3);
    assert!(standings[0].last_speed > 0.0, "speed reported at passage");
}

#[test]
fn regatta_order_is_stable_under_reruns_with_same_seed() {
    let run = |seed| {
        let tb = Testbed::with_seed(seed);
        let regatta = start_regatta(&tb, 3, straight_course(2, 500.0));
        tb.sim.run_for(SimDuration::from_mins(15));
        regatta
            .classifier
            .standings()
            .into_iter()
            .map(|s| (s.entity, s.passed))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(99), run(99), "deterministic replay");
}
