//! # contory-sailing
//!
//! The DYNAMOS sailing application re-implemented on Contory (paper
//! §6.2): support services for a community of recreational sailboaters,
//! exercising every provisioning mechanism the middleware offers.
//!
//! - [`WeatherWatcher`]: weather for a geographic region — live boats in
//!   the area via multi-hop ad hoc provisioning when the region is close
//!   and dense enough, the remote infrastructure (fed by boats and
//!   official stations) otherwise.
//! - [`RegattaClassifier`] / [`RegattaParticipant`]: virtual checkpoints
//!   along the course; each passage is reported (location + speed from
//!   the GPS) to the infrastructure, which keeps an updated
//!   classification.
//! - [`scenario`]: regatta scenario builder used by the examples and the
//!   benchmark figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod regatta;
pub mod scenario;
mod weather;

pub use regatta::{Checkpoint, RegattaClassifier, RegattaCourse, RegattaParticipant, Standing};
pub use weather::{WeatherReport, WeatherSource, WeatherWatcher};
