//! Regatta scenario builder: boats with tracks along a course, GPS pucks
//! aboard, participants started — the setup behind the examples and the
//! application-level figures.

use crate::regatta::{Checkpoint, RegattaClassifier, RegattaCourse, RegattaParticipant};
use phone::PhoneModel;
use radio::Position;
use simkit::{SimDuration, SimTime};
use std::rc::Rc;
use testbed::{PhoneSetup, Testbed, TestbedPhone};

/// Everything a running regatta consists of.
pub struct Regatta {
    /// The course.
    pub course: RegattaCourse,
    /// Boats (phones) in start order.
    pub boats: Vec<Rc<TestbedPhone>>,
    /// Participant services, one per boat.
    pub participants: Vec<RegattaParticipant>,
    /// The infrastructure-side classifier.
    pub classifier: RegattaClassifier,
}

/// Builds a straight downwind course with `n` checkpoints spaced
/// `spacing` metres apart.
pub fn straight_course(n: usize, spacing: f64) -> RegattaCourse {
    RegattaCourse::new(
        (1..=n)
            .map(|i| Checkpoint::new(Position::new(i as f64 * spacing, 0.0), spacing * 0.25))
            .collect(),
    )
}

/// Starts a regatta: `n_boats` boats sail the course at slightly
/// different speeds (boat 0 fastest), each with a BT-GPS puck aboard and
/// the participant service running. Cellular radios are on (passages go
/// to the infrastructure).
///
/// # Panics
///
/// Panics if a participant cannot start (no mechanism for location —
/// cannot happen with the pucks aboard).
pub fn start_regatta(tb: &Testbed, n_boats: usize, course: RegattaCourse) -> Regatta {
    let course_len = course.checkpoints().len() as f64
        * course.checkpoints()[0].position.x.max(1.0)
        / course.checkpoints().len() as f64;
    let finish_x = course.checkpoints().last().expect("nonempty").position.x + 200.0;
    let _ = course_len;
    let mut boats = Vec::new();
    let mut participants = Vec::new();
    for b in 0..n_boats {
        // Faster boats reach the finish sooner; everyone starts at x=0
        // with a little lateral separation.
        let speed = 3.0 - 0.35 * b as f64; // m/s (≈6 kn down to ~4 kn)
        let y = b as f64 * 15.0;
        let duration_s = (finish_x / speed).ceil() as u64;
        let node_track = vec![
            (SimTime::ZERO, Position::new(0.0, y)),
            (SimTime::from_secs(duration_s), Position::new(finish_x, y)),
        ];
        let boat = tb.add_mobile_phone(
            PhoneSetup {
                name: format!("boat-{b}"),
                model: PhoneModel::Nokia6630,
                position: Position::new(0.0, y),
                metered: false,
                internal_sensors: Vec::new(),
                wifi_on: false,
                cell_on: true,
                factory: contory::FactoryConfig::default(),
            },
            node_track,
        );
        // GPS puck aboard: its own radio node following the same track,
        // a metre to the side (a node can host only one BT radio).
        let puck_node = tb.world.add_mobile_node(vec![
            (SimTime::ZERO, Position::new(0.0, y + 1.0)),
            (
                SimTime::from_secs(duration_s),
                Position::new(finish_x, y + 1.0),
            ),
        ]);
        let _puck = tb.add_bt_gps_on(puck_node, SimDuration::from_secs(5));
        let participant = RegattaParticipant::start(
            &tb.sim,
            boat.factory(),
            boat.name(),
            course.clone(),
            SimDuration::from_secs(5),
        )
        .expect("location provisioning available");
        boats.push(boat);
        participants.push(participant);
    }
    let classifier = RegattaClassifier::new(&tb.infra);
    Regatta {
        course,
        boats,
        participants,
        classifier,
    }
}
