//! RegattaClassifier (paper §6.2).
//!
//! "During a regatta competition, this service constantly provides an
//! updated classification of the current winner. Virtual checkpoints can
//! be arranged along the route that the boats will take. Each time a
//! boat reaches a checkpoint, the RegattaClassifier running on the
//! phone's participant communicates to the infrastructure location and
//! speed of the boat (collected using GPS sensors). The infrastructure
//! processes this information and provides each participant with an
//! updated classification."

use contory::query::QueryBuilder;
use contory::{Client, ContextFactory, CxtItem, CxtValue, QueryId};
use fuego::{ContextInfrastructure, InfraQuery, InfraRecord};
use radio::{Position, Region};
use simkit::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Record type under which checkpoint passages are stored.
const PASSAGE_TYPE: &str = "regattaCheckpoint";

/// A virtual checkpoint along the course.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Checkpoint {
    /// Checkpoint centre.
    pub position: Position,
    /// Capture radius in metres.
    pub radius: f64,
}

impl Checkpoint {
    /// Creates a checkpoint.
    pub fn new(position: Position, radius: f64) -> Self {
        Checkpoint { position, radius }
    }

    /// Whether a boat at `p` is inside the checkpoint.
    pub fn captures(&self, p: Position) -> bool {
        Region::new(self.position, self.radius).contains(p)
    }
}

/// The ordered checkpoints of a course.
#[derive(Clone, Debug, PartialEq)]
pub struct RegattaCourse {
    checkpoints: Vec<Checkpoint>,
}

impl RegattaCourse {
    /// Creates a course.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty.
    pub fn new(checkpoints: Vec<Checkpoint>) -> Self {
        assert!(!checkpoints.is_empty(), "a course needs checkpoints");
        RegattaCourse { checkpoints }
    }

    /// The checkpoints in passage order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Never true (construction forbids empty courses); included for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }
}

/// One row of the classification.
#[derive(Clone, Debug, PartialEq)]
pub struct Standing {
    /// Participant entity name.
    pub entity: String,
    /// Checkpoints passed so far.
    pub passed: usize,
    /// When the latest checkpoint was passed.
    pub last_passage: SimTime,
    /// Speed (knots) reported at the latest passage.
    pub last_speed: f64,
}

/// The classification service, computed on the infrastructure from the
/// passage records participants store.
#[derive(Clone)]
pub struct RegattaClassifier {
    infra: ContextInfrastructure,
}

impl RegattaClassifier {
    /// Creates the classifier over the shared infrastructure.
    pub fn new(infra: &ContextInfrastructure) -> Self {
        RegattaClassifier {
            infra: infra.clone(),
        }
    }

    /// The current classification: most checkpoints first, ties broken by
    /// earliest last passage (you were there first).
    pub fn standings(&self) -> Vec<Standing> {
        let records = self.infra.eval(&InfraQuery::for_type(PASSAGE_TYPE));
        let mut per_boat: Vec<Standing> = Vec::new();
        for r in &records {
            let Some((passed_idx, speed)) = passage_metadata(r) else {
                continue;
            };
            match per_boat.iter_mut().find(|s| s.entity == r.entity) {
                Some(s) => {
                    if passed_idx + 1 > s.passed {
                        s.passed = passed_idx + 1;
                        s.last_passage = r.timestamp;
                        s.last_speed = speed;
                    }
                }
                None => per_boat.push(Standing {
                    entity: r.entity.clone(),
                    passed: passed_idx + 1,
                    last_passage: r.timestamp,
                    last_speed: speed,
                }),
            }
        }
        per_boat.sort_by(|a, b| {
            b.passed
                .cmp(&a.passed)
                .then(a.last_passage.cmp(&b.last_passage))
        });
        per_boat
    }

    /// The current leader, if anyone passed a checkpoint yet.
    pub fn leader(&self) -> Option<Standing> {
        self.standings().into_iter().next()
    }
}

impl fmt::Debug for RegattaClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegattaClassifier").finish()
    }
}

struct ParticipantState {
    next_checkpoint: usize,
    last_position: Option<(Position, SimTime)>,
    passages: Vec<SimTime>,
}

struct ParticipantClient {
    name: String,
    course: RegattaCourse,
    factory: ContextFactory,
    state: RefCell<ParticipantState>,
}

impl Client for ParticipantClient {
    fn receive_cxt_item(&self, _query: QueryId, item: CxtItem) {
        let CxtValue::Position { x, y } = item.value else {
            return;
        };
        let here = Position::new(x, y);
        let mut st = self.state.borrow_mut();
        // Speed estimate from consecutive GPS fixes.
        let speed_kn = match st.last_position {
            Some((prev, at)) if item.timestamp > at => {
                let dt = (item.timestamp - at).as_secs_f64();
                prev.distance_to(here) / dt * 1.943_84 // m/s → knots
            }
            _ => 0.0,
        };
        st.last_position = Some((here, item.timestamp));
        let idx = st.next_checkpoint;
        let Some(cp) = self.course.checkpoints().get(idx) else {
            return; // finished
        };
        if cp.captures(here) {
            st.next_checkpoint += 1;
            st.passages.push(item.timestamp);
            drop(st);
            // "communicates to the infrastructure location and speed"
            let passage = CxtItem::new(
                PASSAGE_TYPE,
                CxtValue::Composite(vec![
                    ("checkpoint".into(), idx as f64),
                    ("x".into(), here.x),
                    ("y".into(), here.y),
                    ("speed".into(), speed_kn),
                ]),
                item.timestamp,
            )
            .with_source(self.name.clone());
            self.factory.store_cxt_item(passage);
        }
    }

    fn inform_error(&self, _message: &str) {}
}

/// The participant-side service running on each boat's phone.
pub struct RegattaParticipant {
    name: String,
    client: Rc<ParticipantClient>,
}

impl RegattaParticipant {
    /// Starts the service: a periodic location query (the GPS via
    /// Contory) drives checkpoint detection; passages are stored in the
    /// infrastructure.
    ///
    /// # Errors
    ///
    /// Propagates the factory's error if no mechanism can provide
    /// location.
    pub fn start(
        _sim: &Sim,
        factory: &ContextFactory,
        name: &str,
        course: RegattaCourse,
        fix_every: SimDuration,
    ) -> Result<Self, contory::ContoryError> {
        let client = Rc::new(ParticipantClient {
            name: name.to_owned(),
            course,
            factory: factory.clone(),
            state: RefCell::new(ParticipantState {
                next_checkpoint: 0,
                last_position: None,
                passages: Vec::new(),
            }),
        });
        let q = QueryBuilder::select("location")
            .from_int_sensor()
            .duration(SimDuration::from_hours(12))
            .every(fix_every)
            .build();
        factory.process_cxt_query(q, client.clone())?;
        Ok(RegattaParticipant { name: name.to_owned(), client })
    }

    /// Participant entity name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Checkpoints passed so far (local view).
    pub fn checkpoints_passed(&self) -> usize {
        self.client.state.borrow().next_checkpoint
    }

    /// Local passage timestamps.
    pub fn passages(&self) -> Vec<SimTime> {
        self.client.state.borrow().passages.clone()
    }
}

impl fmt::Debug for RegattaParticipant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegattaParticipant")
            .field("name", &self.name)
            .field("passed", &self.checkpoints_passed())
            .finish()
    }
}

/// Extracts `(checkpoint index, speed)` from a passage record: from the
/// structured payload when it survived, else from the printable
/// composite value (`"checkpoint=0.0,x=…,speed=5.4"`).
pub(crate) fn passage_metadata(record: &InfraRecord) -> Option<(usize, f64)> {
    if let Some(p) = &record.payload {
        if let Ok(item) = p.clone().downcast::<CxtItem>() {
            if let CxtValue::Composite(parts) = &item.value {
                let get = |k: &str| parts.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
                let cp = get("checkpoint")? as usize;
                return Some((cp, get("speed").unwrap_or(0.0)));
            }
        }
    }
    let mut cp = None;
    let mut speed = 0.0;
    for part in record.value_text.split(',') {
        let (k, v) = part.split_once('=')?;
        match k {
            "checkpoint" => cp = v.parse::<f64>().ok().map(|f| f as usize),
            "speed" => speed = v.parse().unwrap_or(0.0),
            _ => {}
        }
    }
    cp.map(|c| (c, speed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_capture() {
        let cp = Checkpoint::new(Position::new(100.0, 0.0), 50.0);
        assert!(cp.captures(Position::new(120.0, 30.0)));
        assert!(!cp.captures(Position::new(200.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "checkpoints")]
    fn empty_course_panics() {
        let _ = RegattaCourse::new(Vec::new());
    }
}
