//! WeatherWatcher (paper §6.2).
//!
//! "It allows users to retrieve weather information in a certain
//! geographical region. … as this type of information can change very
//! quickly, the information owned by boats currently sailing in such a
//! region is often more reliable than the one provided by official
//! weather stations. Once the user has issued a weather request, if the
//! target region is not dense enough or too far away to support
//! multi-hop ad hoc network provisioning, the query is sent to the
//! remote infrastructure."

use contory::query::QueryBuilder;
use contory::{Client, ContextFactory, ContoryError, CxtItem, QueryId};
use radio::Region;
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Where a weather report ultimately came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeatherSource {
    /// Boats currently sailing in the region (ad hoc provisioning).
    AdHoc,
    /// The remote context infrastructure.
    Infrastructure,
}

/// A completed weather request.
#[derive(Clone, Debug)]
pub struct WeatherReport {
    /// The region asked about.
    pub region: Region,
    /// Observations gathered (one or more per requested field).
    pub observations: Vec<CxtItem>,
    /// Which provisioning path produced them.
    pub source: WeatherSource,
}

impl WeatherReport {
    /// The freshest observation of a given type, if any.
    pub fn latest(&self, cxt_type: &str) -> Option<&CxtItem> {
        self.observations
            .iter()
            .filter(|i| i.cxt_type == cxt_type)
            .max_by_key(|i| i.timestamp)
    }
}

/// Collects items for the in-flight weather request, noting whether any
/// of them were served by a non-ad-hoc mechanism (failover may silently
/// reroute a region query to the infrastructure).
struct RequestClient {
    items: Rc<RefCell<Vec<CxtItem>>>,
    factory: Option<ContextFactory>,
    any_non_adhoc: Rc<std::cell::Cell<bool>>,
}

impl Client for RequestClient {
    fn receive_cxt_item(&self, query: QueryId, item: CxtItem) {
        if let Some(f) = &self.factory {
            match f.mechanism_of(query) {
                Some(contory::Mechanism::AdHocBt) | Some(contory::Mechanism::AdHocWifi) => {}
                _ => self.any_non_adhoc.set(true),
            }
        }
        self.items.borrow_mut().push(item);
    }
    fn inform_error(&self, _message: &str) {}
}

/// The weather service running on one phone.
pub struct WeatherWatcher {
    sim: Sim,
    factory: ContextFactory,
    /// How long to wait for ad hoc answers before falling back to the
    /// infrastructure.
    adhoc_patience: SimDuration,
    /// Maximum hop distance attempted over the ad hoc network.
    max_hops: u32,
}

impl WeatherWatcher {
    /// Creates a watcher over the phone's middleware.
    pub fn new(sim: &Sim, factory: &ContextFactory) -> Self {
        WeatherWatcher {
            sim: sim.clone(),
            factory: factory.clone(),
            adhoc_patience: SimDuration::from_secs(20),
            max_hops: 3,
        }
    }

    /// Adjusts the ad hoc patience window, builder style.
    pub fn with_patience(mut self, patience: SimDuration) -> Self {
        self.adhoc_patience = patience;
        self
    }

    /// Requests weather (the given fields) for a region. The callback
    /// receives the report: ad hoc observations when boats in the region
    /// answered within the patience window, otherwise whatever the
    /// infrastructure has.
    ///
    /// # Errors
    ///
    /// The callback receives an error only if *both* paths are
    /// unavailable on this device.
    pub fn request(
        &self,
        region: Region,
        fields: &[&str],
        cb: impl FnOnce(Result<WeatherReport, ContoryError>) + 'static,
    ) {
        let items: Rc<RefCell<Vec<CxtItem>>> = Rc::new(RefCell::new(Vec::new()));
        let any_non_adhoc = Rc::new(std::cell::Cell::new(false));
        let client = Rc::new(RequestClient {
            items: items.clone(),
            factory: Some(self.factory.clone()),
            any_non_adhoc: any_non_adhoc.clone(),
        });
        // Phase 1: ad hoc sweep of the region.
        let mut adhoc_ids: Vec<QueryId> = Vec::new();
        let mut adhoc_possible = false;
        for field in fields {
            let q = QueryBuilder::select(*field)
                .from_region(region.center.x, region.center.y, region.radius)
                .freshness(SimDuration::from_mins(10))
                .duration_samples(8)
                .build();
            // Entity/region queries prefer ad hoc WiFi; hop bound applies.
            let mut q = q;
            q.from = Some(contory::query::Source::Region {
                x: region.center.x,
                y: region.center.y,
                radius: region.radius,
            });
            match self.factory.process_cxt_query(q, client.clone()) {
                Ok(id) => {
                    adhoc_possible = true;
                    adhoc_ids.push(id);
                }
                Err(_) => {}
            }
        }
        let _ = self.max_hops;
        let factory = self.factory.clone();
        let fields: Vec<String> = fields.iter().map(|s| s.to_string()).collect();
        let sim = self.sim.clone();
        let patience = if adhoc_possible {
            self.adhoc_patience
        } else {
            SimDuration::ZERO
        };
        self.sim.schedule_in(patience, move || {
            let gathered = items.borrow().clone();
            if !gathered.is_empty() {
                for id in adhoc_ids {
                    let _ = factory.cancel_cxt_query(id);
                }
                cb(Ok(WeatherReport {
                    region,
                    observations: gathered,
                    source: if any_non_adhoc.get() {
                        WeatherSource::Infrastructure
                    } else {
                        WeatherSource::AdHoc
                    },
                }));
                return;
            }
            // Phase 2: the infrastructure. ("…the query is sent to the
            // remote infrastructure. The infrastructure checks if any
            // WeatherWatcher of users currently sailing in that region
            // has recently provided weather information.")
            for id in adhoc_ids {
                let _ = factory.cancel_cxt_query(id);
            }
            let infra_items: Rc<RefCell<Vec<CxtItem>>> = Rc::new(RefCell::new(Vec::new()));
            let infra_client = Rc::new(RequestClient {
                items: infra_items.clone(),
                factory: None,
                any_non_adhoc: Rc::new(std::cell::Cell::new(true)),
            });
            let mut any = false;
            for field in &fields {
                let mut q = QueryBuilder::select(field.clone())
                    .freshness(SimDuration::from_mins(30))
                    .duration_samples(8)
                    .build();
                q.from = Some(contory::query::Source::Region {
                    x: region.center.x,
                    y: region.center.y,
                    radius: region.radius,
                });
                // Force the infrastructure path.
                q.from = Some(contory::query::Source::ExtInfra);
                if factory.process_cxt_query(q, infra_client.clone()).is_ok() {
                    any = true;
                }
            }
            if !any {
                cb(Err(ContoryError::NoMechanism {
                    cxt_type: fields.join(","),
                    reason: "neither ad hoc nor infrastructure available".into(),
                }));
                return;
            }
            sim.schedule_in(SimDuration::from_secs(20), move || {
                cb(Ok(WeatherReport {
                    region,
                    observations: infra_items.borrow().clone(),
                    source: WeatherSource::Infrastructure,
                }));
            });
        });
    }

    /// Starts sharing this boat's own observations: every `every`, the
    /// given fields are sampled from local sensors, published in the ad
    /// hoc network and stored in the remote repository — this is what
    /// makes other boats' WeatherWatchers (and the infrastructure path)
    /// work.
    pub fn start_sharing(&self, fields: &[&str], every: SimDuration) {
        self.factory.register_cxt_server("weather-watcher");
        let factory = self.factory.clone();
        let items: Rc<RefCell<Vec<CxtItem>>> = Rc::new(RefCell::new(Vec::new()));
        let client = Rc::new(RequestClient {
            items: items.clone(),
            factory: None,
            any_non_adhoc: Rc::new(std::cell::Cell::new(false)),
        });
        for field in fields {
            let q = QueryBuilder::select(*field)
                .from_int_sensor()
                .duration(SimDuration::from_hours(24))
                .every(every)
                .build();
            let _ = factory.process_cxt_query(q, client.clone());
        }
        // Republish whatever arrived since the last tick.
        self.sim.schedule_repeating(every, move || {
            let batch: Vec<CxtItem> = items.borrow_mut().drain(..).collect();
            for item in batch {
                let _ = factory.publish_cxt_item(item.clone(), None);
                factory.store_cxt_item(item);
            }
            true
        });
    }
}

impl fmt::Debug for WeatherWatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeatherWatcher")
            .field("patience", &self.adhoc_patience)
            .finish()
    }
}
