//! Ground-truth environment fields.
//!
//! Each field is a deterministic function of position and time built from
//! a seeded sum of sinusoids: smooth enough to look physical, varied
//! enough that "the weather near the guest harbour" genuinely differs
//! from the weather at the marina — the premise of WeatherWatcher.

use radio::Position;
use simkit::{DetRng, SimTime};
use std::fmt;

/// An observable environmental quantity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnvField {
    /// Air temperature in °C.
    TemperatureC,
    /// Wind speed in knots.
    WindKnots,
    /// Wind direction in degrees (0–360).
    WindDirDeg,
    /// Relative humidity in percent.
    HumidityPct,
    /// Atmospheric pressure in hPa.
    PressureHpa,
    /// Illuminance in lux.
    LightLux,
    /// Ambient noise in dB.
    NoiseDb,
}

impl EnvField {
    /// All fields, in a stable order.
    pub const ALL: [EnvField; 7] = [
        EnvField::TemperatureC,
        EnvField::WindKnots,
        EnvField::WindDirDeg,
        EnvField::HumidityPct,
        EnvField::PressureHpa,
        EnvField::LightLux,
        EnvField::NoiseDb,
    ];

    /// The context type name Contory queries use for this field.
    pub fn type_name(self) -> &'static str {
        match self {
            EnvField::TemperatureC => "temperature",
            EnvField::WindKnots => "wind",
            EnvField::WindDirDeg => "windDirection",
            EnvField::HumidityPct => "humidity",
            EnvField::PressureHpa => "pressure",
            EnvField::LightLux => "light",
            EnvField::NoiseDb => "noise",
        }
    }

    /// Unit suffix used in printable values.
    pub fn unit(self) -> &'static str {
        match self {
            EnvField::TemperatureC => "C",
            EnvField::WindKnots => "kn",
            EnvField::WindDirDeg => "deg",
            EnvField::HumidityPct => "%",
            EnvField::PressureHpa => "hPa",
            EnvField::LightLux => "lux",
            EnvField::NoiseDb => "dB",
        }
    }

    fn base_and_amplitude(self) -> (f64, f64) {
        match self {
            EnvField::TemperatureC => (16.0, 6.0),
            EnvField::WindKnots => (8.0, 6.0),
            EnvField::WindDirDeg => (180.0, 160.0),
            EnvField::HumidityPct => (70.0, 20.0),
            EnvField::PressureHpa => (1013.0, 12.0),
            EnvField::LightLux => (5_000.0, 4_800.0),
            EnvField::NoiseDb => (45.0, 20.0),
        }
    }

    fn clamp(self, v: f64) -> f64 {
        match self {
            EnvField::WindKnots | EnvField::LightLux => v.max(0.0),
            EnvField::HumidityPct => v.clamp(0.0, 100.0),
            EnvField::WindDirDeg => v.rem_euclid(360.0),
            _ => v,
        }
    }
}

impl fmt::Display for EnvField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

#[derive(Clone, Debug)]
struct Wave {
    kx: f64,
    ky: f64,
    omega: f64,
    phase: f64,
    weight: f64,
}

/// Deterministic ground-truth fields over space and time.
///
/// ```
/// use sensors::{EnvField, Environment};
/// use radio::Position;
/// use simkit::SimTime;
///
/// let env = Environment::new(2005);
/// let here = env.sample(EnvField::TemperatureC, Position::new(0.0, 0.0), SimTime::ZERO);
/// let same = env.sample(EnvField::TemperatureC, Position::new(0.0, 0.0), SimTime::ZERO);
/// assert_eq!(here, same); // ground truth is a pure function
/// ```
#[derive(Clone, Debug)]
pub struct Environment {
    seed: u64,
    waves: Vec<(EnvField, Vec<Wave>)>,
}

impl Environment {
    /// Number of sinusoid components per field.
    const COMPONENTS: usize = 4;

    /// Creates an environment from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0x5eed_f1e1d);
        let mut waves = Vec::new();
        for field in EnvField::ALL {
            let mut comps = Vec::new();
            for i in 0..Self::COMPONENTS {
                // Wavelengths from ~200 m to ~20 km; periods from ~10 min
                // to ~6 h. Weights decay so large scales dominate.
                let wavelength = rng.range_f64(200.0, 20_000.0);
                let period_s = rng.range_f64(600.0, 21_600.0);
                let dir = rng.range_f64(0.0, std::f64::consts::TAU);
                comps.push(Wave {
                    kx: dir.cos() * std::f64::consts::TAU / wavelength,
                    ky: dir.sin() * std::f64::consts::TAU / wavelength,
                    omega: std::f64::consts::TAU / period_s,
                    phase: rng.range_f64(0.0, std::f64::consts::TAU),
                    weight: 1.0 / (i + 1) as f64,
                });
            }
            waves.push((field, comps));
        }
        Environment { seed, waves }
    }

    /// The seed this environment was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ground-truth value of `field` at a position and time.
    pub fn sample(&self, field: EnvField, pos: Position, t: SimTime) -> f64 {
        let (base, amplitude) = field.base_and_amplitude();
        let comps = &self
            .waves
            .iter()
            .find(|(f, _)| *f == field)
            .expect("every field has waves")
            .1;
        let weight_sum: f64 = comps.iter().map(|w| w.weight).sum();
        let ts = t.as_secs_f64();
        let mut v = 0.0;
        for w in comps {
            v += w.weight * (w.kx * pos.x + w.ky * pos.y + w.omega * ts + w.phase).sin();
        }
        field.clamp(base + amplitude * v / weight_sum)
    }

    /// Printable value with unit, e.g. `"14.3C"`.
    pub fn sample_text(&self, field: EnvField, pos: Position, t: SimTime) -> String {
        format!("{:.1}{}", self.sample(field, pos, t), field.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn deterministic_per_seed() {
        let a = Environment::new(7);
        let b = Environment::new(7);
        let c = Environment::new(8);
        let p = Position::new(123.0, 456.0);
        let t = SimTime::from_secs(100);
        assert_eq!(
            a.sample(EnvField::WindKnots, p, t),
            b.sample(EnvField::WindKnots, p, t)
        );
        assert_ne!(
            a.sample(EnvField::WindKnots, p, t),
            c.sample(EnvField::WindKnots, p, t)
        );
    }

    #[test]
    fn fields_stay_in_physical_ranges() {
        let env = Environment::new(42);
        let mut rng = simkit::DetRng::new(1);
        for _ in 0..500 {
            let p = Position::new(rng.range_f64(-50e3, 50e3), rng.range_f64(-50e3, 50e3));
            let t = SimTime::from_secs(rng.range_u64(0, 86_400));
            let h = env.sample(EnvField::HumidityPct, p, t);
            assert!((0.0..=100.0).contains(&h), "humidity {h}");
            assert!(env.sample(EnvField::WindKnots, p, t) >= 0.0);
            assert!(env.sample(EnvField::LightLux, p, t) >= 0.0);
            let d = env.sample(EnvField::WindDirDeg, p, t);
            assert!((0.0..360.0).contains(&d), "direction {d}");
            let temp = env.sample(EnvField::TemperatureC, p, t);
            assert!((-10.0..40.0).contains(&temp), "temperature {temp}");
        }
    }

    #[test]
    fn varies_over_space_and_time() {
        let env = Environment::new(42);
        let t = SimTime::ZERO;
        let a = env.sample(EnvField::TemperatureC, Position::new(0.0, 0.0), t);
        let b = env.sample(EnvField::TemperatureC, Position::new(15_000.0, 0.0), t);
        assert!((a - b).abs() > 0.01, "space variation {a} vs {b}");
        let later = t + SimDuration::from_hours(3);
        let c = env.sample(EnvField::TemperatureC, Position::new(0.0, 0.0), later);
        assert!((a - c).abs() > 0.01, "time variation {a} vs {c}");
    }

    #[test]
    fn nearby_points_are_similar() {
        // Smoothness: 10 m apart should read almost identically.
        let env = Environment::new(42);
        let t = SimTime::from_secs(1000);
        let a = env.sample(EnvField::PressureHpa, Position::new(500.0, 500.0), t);
        let b = env.sample(EnvField::PressureHpa, Position::new(510.0, 500.0), t);
        assert!((a - b).abs() < 1.0, "{a} vs {b}");
    }

    #[test]
    fn sample_text_formats_unit() {
        let env = Environment::new(1);
        let s = env.sample_text(EnvField::WindKnots, Position::ORIGIN, SimTime::ZERO);
        assert!(s.ends_with("kn"), "{s}");
    }

    #[test]
    fn type_names_match_contory_vocabulary() {
        assert_eq!(EnvField::TemperatureC.type_name(), "temperature");
        assert_eq!(EnvField::WindKnots.type_name(), "wind");
        assert_eq!(EnvField::ALL.len(), 7);
    }
}
