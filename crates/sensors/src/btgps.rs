//! The external Bluetooth GPS puck (InsSirf III class).
//!
//! A small battery device advertising a serial-port GPS service over SDP.
//! Once a phone opens an ACL link, the puck streams NMEA bursts at a
//! configurable rate, each burst sent sentence-by-sentence (the packet
//! segmentation that makes GPS the most expensive periodic BT source in
//! Table 2). Switching the puck off tears the link down — the event that
//! triggers Contory's provisioning failover in Fig. 5.

use crate::gps::GpsReceiver;
use phone::{Phone, PhoneConfig};
use radio::bt::{BtMedium, BtRadio, LinkId, ServiceRecord};
use radio::{NodeId, World};
use simkit::{Sim, SimDuration};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// SDP service UUID the puck advertises (SPP).
pub const GPS_SERVICE_UUID: &str = "00001101-gps-spp";

struct Inner {
    gps: GpsReceiver,
    links: Vec<LinkId>,
    powered: bool,
    bursts_sent: u64,
}

/// A simulated BT-GPS receiver node.
///
/// The puck hosts its own tiny battery/"phone" shell purely for power
/// bookkeeping of its radio; the interesting energy numbers are on the
/// *phone* side of the link.
#[derive(Clone)]
pub struct BtGpsDevice {
    node: NodeId,
    bt: BtRadio,
    inner: Rc<RefCell<Inner>>,
}

impl BtGpsDevice {
    /// Creates a puck mounted on `node` (already registered in `world`,
    /// possibly mobile — a boat), streaming one NMEA burst per
    /// `interval` to every connected phone.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or the node already has a BT radio.
    pub fn new(
        sim: &Sim,
        medium: &BtMedium,
        world: &World,
        node: NodeId,
        interval: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!interval.is_zero(), "NMEA interval must be non-zero");
        let shell = Phone::new(sim, PhoneConfig::default());
        let bt = medium.attach(node, &shell, seed ^ 0xb7);
        let w = world.clone();
        let gps = GpsReceiver::new(
            Rc::new(move || w.position_of(node).unwrap_or_default()),
            5.0,
            seed,
        );
        let device = BtGpsDevice {
            node,
            bt: bt.clone(),
            inner: Rc::new(RefCell::new(Inner {
                gps,
                links: Vec::new(),
                powered: true,
                bursts_sent: 0,
            })),
        };
        device.register_service();
        // Track connections and disconnections.
        {
            let inner = device.inner.clone();
            bt.on_connect(move |link, _from| {
                inner.borrow_mut().links.push(link);
            });
        }
        {
            let inner = device.inner.clone();
            bt.on_disconnect(move |link, _peer| {
                inner.borrow_mut().links.retain(|&l| l != link);
            });
        }
        // Streaming loop. Each tick executes *on the puck*, so it is
        // scheduled with the puck's shard as its ordering tag (re-read
        // every round: partition assignment may happen after creation).
        // With everything on shard 0 this is the classic repeating
        // timer, tick for tick.
        {
            let inner = device.inner.clone();
            let bt = bt.clone();
            let sim2 = sim.clone();
            let world2 = world.clone();
            fn tick(
                sim: Sim,
                world: World,
                node: NodeId,
                interval: SimDuration,
                f: Rc<dyn Fn()>,
            ) {
                let shard = world.shard_of(node);
                let s = sim.clone();
                sim.schedule_in_sharded(shard, interval, move || {
                    f();
                    tick(s, world, node, interval, f);
                });
            }
            let burst_fn: Rc<dyn Fn()> = Rc::new(move || {
                let (burst, links) = {
                    let mut st = inner.borrow_mut();
                    if !st.powered {
                        return; // keep ticking; maybe repowered later
                    }
                    let now = sim2.now();
                    let burst = st.gps.nmea_burst(now);
                    if !burst.is_empty() && !st.links.is_empty() {
                        st.bursts_sent += 1;
                    }
                    (burst, st.links.clone())
                };
                for link in links {
                    // Sentence-by-sentence: this is what triggers BT's
                    // per-send segmentation cost on the phone.
                    for sentence in &burst {
                        let wire = sentence.len() + 2;
                        bt.send(link, wire, Rc::new(sentence.clone()), |_res| {});
                    }
                }
            });
            tick(sim.clone(), world2, node, interval, burst_fn);
        }
        device
    }

    fn register_service(&self) {
        let record = ServiceRecord::new(GPS_SERVICE_UUID, "InsSirf III GPS")
            .with_attribute("type", "gps-nmea")
            .with_attribute("protocol", "rfcomm-spp");
        self.bt.register_service(record, |_res| {});
    }

    /// The world node this puck is mounted on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The puck's radio (tests peek at its SDDB).
    pub fn radio(&self) -> &BtRadio {
        &self.bt
    }

    /// Whether the puck is switched on.
    pub fn is_powered(&self) -> bool {
        self.inner.borrow().powered
    }

    /// NMEA bursts streamed so far (to any link).
    pub fn bursts_sent(&self) -> u64 {
        self.inner.borrow().bursts_sent
    }

    /// Switches the puck on or off. Switching off kills the radio (links
    /// drop, the service vanishes) — the paper's Fig. 5 fault.
    pub fn set_powered(&self, on: bool) {
        {
            let mut st = self.inner.borrow_mut();
            if st.powered == on {
                return;
            }
            st.powered = on;
            st.gps.set_powered(on);
            if !on {
                st.links.clear();
            }
        }
        self.bt.set_power(on);
        if on {
            self.register_service();
        }
    }
}

impl fmt::Debug for BtGpsDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.borrow();
        f.debug_struct("BtGpsDevice")
            .field("node", &self.node)
            .field("powered", &st.powered)
            .field("links", &st.links.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio::bt::BtParams;
    use radio::Position;

    struct Rig {
        sim: Sim,
        world: World,
        medium: BtMedium,
    }

    fn rig() -> Rig {
        let sim = Sim::new();
        let world = World::new(&sim);
        let medium = BtMedium::new(&sim, &world, BtParams::default());
        Rig { sim, world, medium }
    }

    #[test]
    fn advertises_gps_service_and_streams_to_connected_phone() {
        let r = rig();
        let puck_node = r.world.add_node(Position::new(0.0, 0.0));
        let puck = BtGpsDevice::new(
            &r.sim,
            &r.medium,
            &r.world,
            puck_node,
            SimDuration::from_secs(1),
            7,
        );
        let phone_node = r.world.add_node(Position::new(2.0, 0.0));
        let phone = Phone::new(&r.sim, PhoneConfig::default());
        let radio = r.medium.attach(phone_node, &phone, 8);
        r.sim.run_for(SimDuration::from_secs(1));
        // SDP sees the GPS service.
        let recs = Rc::new(RefCell::new(Vec::new()));
        let rc = recs.clone();
        radio.sdp_query(puck_node, move |res| *rc.borrow_mut() = res.unwrap());
        r.sim.run_for(SimDuration::from_secs(2));
        assert_eq!(recs.borrow().len(), 1);
        assert_eq!(recs.borrow()[0].uuid, GPS_SERVICE_UUID);
        // Connect and receive sentences.
        let sentences: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let s = sentences.clone();
        radio.on_receive(move |_l, _f, payload| {
            if let Ok(text) = payload.downcast::<String>() {
                s.borrow_mut().push(text.as_ref().clone());
            }
        });
        radio.connect(puck_node, |res| {
            res.unwrap();
        });
        r.sim.run_for(SimDuration::from_secs(5));
        let got = sentences.borrow();
        assert!(got.len() >= 18, "expected several bursts, got {}", got.len());
        assert!(got.iter().any(|s| s.starts_with("$GPGGA")));
        assert!(puck.bursts_sent() >= 3);
    }

    #[test]
    fn power_off_drops_link_and_stops_stream() {
        let r = rig();
        let puck_node = r.world.add_node(Position::new(0.0, 0.0));
        let puck = BtGpsDevice::new(
            &r.sim,
            &r.medium,
            &r.world,
            puck_node,
            SimDuration::from_secs(1),
            7,
        );
        let phone_node = r.world.add_node(Position::new(2.0, 0.0));
        let phone = Phone::new(&r.sim, PhoneConfig::default());
        let radio = r.medium.attach(phone_node, &phone, 8);
        let dropped = Rc::new(std::cell::Cell::new(false));
        let d = dropped.clone();
        radio.on_disconnect(move |_l, _p| d.set(true));
        radio.connect(puck_node, |res| {
            res.unwrap();
        });
        r.sim.run_for(SimDuration::from_secs(3));
        let before = puck.bursts_sent();
        assert!(before > 0);
        puck.set_powered(false);
        r.sim.run_for(SimDuration::from_secs(5));
        assert!(dropped.get(), "phone must see the BT disconnection");
        assert_eq!(puck.bursts_sent(), before, "no bursts while off");
        // Power back on: the service is re-advertised.
        puck.set_powered(true);
        r.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(puck.radio().local_services().len(), 1);
    }
}
