//! GPS receiver and NMEA 0183 sentence generation.
//!
//! The field trials used a "Bluetooth GPS Receiver InsSirf III"; its data
//! path matters to the energy results because a GPS-NMEA burst is **340
//! bytes** (vs a 53–136-byte context item) and BT's packet segmentation
//! makes larger periodic payloads disproportionately expensive (Table 2:
//! 0.422 J vs 0.099 J per item).

use radio::Position;
use simkit::{DetRng, SimTime};
use std::fmt;
use std::rc::Rc;

/// Fix state of the receiver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GpsFix {
    /// Receiver off or no satellites.
    #[default]
    NoFix,
    /// Position valid.
    Fix3D,
}

/// Reference latitude/longitude of the world origin (Helsinki south
/// harbour — where the DYNAMOS regatta sailed).
const ORIGIN_LAT: f64 = 60.15;
const ORIGIN_LON: f64 = 24.95;
/// Metres per degree of latitude / of longitude at 60°N.
const M_PER_DEG_LAT: f64 = 111_320.0;
const M_PER_DEG_LON: f64 = 55_800.0;

/// Source of the antenna's true position.
pub type PositionSource = Rc<dyn Fn() -> Position>;

/// A GPS receiver producing NMEA bursts.
///
/// ```
/// use sensors::GpsReceiver;
/// use radio::Position;
/// use simkit::SimTime;
/// use std::rc::Rc;
///
/// let mut gps = GpsReceiver::new(Rc::new(|| Position::new(100.0, 50.0)), 5.0, 1);
/// let burst = gps.nmea_burst(SimTime::from_secs(60));
/// assert!(burst.iter().any(|s| s.starts_with("$GPGGA")));
/// ```
pub struct GpsReceiver {
    position: PositionSource,
    accuracy_m: f64,
    powered: bool,
    rng: DetRng,
}

impl GpsReceiver {
    /// Creates a powered receiver with the given 1-σ position accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy_m` is negative.
    pub fn new(position: PositionSource, accuracy_m: f64, seed: u64) -> Self {
        assert!(accuracy_m >= 0.0, "accuracy must be non-negative");
        GpsReceiver {
            position,
            accuracy_m,
            powered: true,
            rng: DetRng::new(seed ^ 0x675),
        }
    }

    /// Powers the receiver on or off (Fig. 5's failure is "manually
    /// switching off the GPS device").
    pub fn set_powered(&mut self, on: bool) {
        self.powered = on;
    }

    /// Whether the receiver is powered.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Current fix state.
    pub fn fix(&self) -> GpsFix {
        if self.powered {
            GpsFix::Fix3D
        } else {
            GpsFix::NoFix
        }
    }

    /// The estimated position (truth + noise), if there is a fix.
    pub fn position_estimate(&mut self) -> Option<Position> {
        if !self.powered {
            return None;
        }
        let p = (self.position)();
        Some(Position::new(
            self.rng.gauss(p.x, self.accuracy_m),
            self.rng.gauss(p.y, self.accuracy_m),
        ))
    }

    /// Generates one NMEA burst (GGA, RMC, GSA, VTG + two GSV sentences —
    /// ≈ 340 bytes, the size the paper reports). Empty when unpowered.
    pub fn nmea_burst(&mut self, now: SimTime) -> Vec<String> {
        let Some(est) = self.position_estimate() else {
            return Vec::new();
        };
        let (lat, lon) = world_to_geo(est);
        let hhmmss = nmea_time(now);
        let speed_kn = self.rng.range_f64(4.0, 7.5);
        let course = self.rng.range_f64(0.0, 359.9);
        let sats = 7 + (self.rng.next_u64() % 3) as u32;
        let hdop = 0.8 + self.rng.unit() * 0.6;
        let mut burst = vec![
            nmea(format!(
                "GPGGA,{hhmmss},{},{},1,{sats:02},{hdop:.1},5.0,M,19.6,M,,",
                nmea_lat(lat),
                nmea_lon(lon)
            )),
            nmea(format!(
                "GPRMC,{hhmmss},A,{},{},{speed_kn:.1},{course:.1},120805,,,A",
                nmea_lat(lat),
                nmea_lon(lon)
            )),
            nmea(format!(
                "GPGSA,A,3,04,05,09,12,24,25,29,,,,,,{:.1},{hdop:.1},1.9",
                hdop + 0.9
            )),
            nmea(format!("GPVTG,{course:.1},T,,M,{speed_kn:.1},N,{:.1},K", speed_kn * 1.852)),
        ];
        for (i, ids) in [["04", "05", "09", "12"], ["24", "25", "29", "31"]]
            .iter()
            .enumerate()
        {
            let mut body = format!("GPGSV,2,{},{:02}", i + 1, sats);
            for id in ids {
                let elev = 10 + (self.rng.next_u64() % 70) as u32;
                let az = (self.rng.next_u64() % 360) as u32;
                let snr = 30 + (self.rng.next_u64() % 20) as u32;
                body.push_str(&format!(",{id},{elev:02},{az:03},{snr}"));
            }
            burst.push(nmea(body));
        }
        burst
    }

    /// Total byte size of a burst including CR/LF per sentence.
    pub fn burst_size(burst: &[String]) -> usize {
        burst.iter().map(|s| s.len() + 2).sum()
    }
}

impl fmt::Debug for GpsReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpsReceiver")
            .field("powered", &self.powered)
            .field("fix", &self.fix())
            .finish()
    }
}

/// Converts simulation metres to geographic coordinates.
pub fn world_to_geo(p: Position) -> (f64, f64) {
    (
        ORIGIN_LAT + p.y / M_PER_DEG_LAT,
        ORIGIN_LON + p.x / M_PER_DEG_LON,
    )
}

/// Converts geographic coordinates back to simulation metres.
pub fn geo_to_world(lat: f64, lon: f64) -> Position {
    Position::new(
        (lon - ORIGIN_LON) * M_PER_DEG_LON,
        (lat - ORIGIN_LAT) * M_PER_DEG_LAT,
    )
}

fn nmea_time(now: SimTime) -> String {
    let s = now.as_secs() % 86_400;
    format!("{:02}{:02}{:02}.00", s / 3600, (s / 60) % 60, s % 60)
}

fn nmea_lat(lat: f64) -> String {
    let hemi = if lat >= 0.0 { 'N' } else { 'S' };
    let lat = lat.abs();
    let deg = lat.floor();
    let min = (lat - deg) * 60.0;
    format!("{:02}{:07.4},{}", deg as u32, min, hemi)
}

fn nmea_lon(lon: f64) -> String {
    let hemi = if lon >= 0.0 { 'E' } else { 'W' };
    let lon = lon.abs();
    let deg = lon.floor();
    let min = (lon - deg) * 60.0;
    format!("{:03}{:07.4},{}", deg as u32, min, hemi)
}

/// Wraps an NMEA body with `$` and its XOR checksum.
fn nmea(body: String) -> String {
    let checksum = body.bytes().fold(0u8, |acc, b| acc ^ b);
    format!("${body}*{checksum:02X}")
}

/// Parses the latitude/longitude out of a GGA sentence (used by the
/// location provider to turn NMEA back into a position).
pub fn parse_gga(sentence: &str) -> Option<Position> {
    if !sentence.starts_with("$GPGGA") {
        return None;
    }
    let body = sentence.strip_prefix('$')?.split('*').next()?;
    let fields: Vec<&str> = body.split(',').collect();
    if fields.len() < 6 {
        return None;
    }
    let lat = parse_coord(fields[2], fields[3], 2)?;
    let lon = parse_coord(fields[4], fields[5], 3)?;
    Some(geo_to_world(lat, lon))
}

fn parse_coord(value: &str, hemi: &str, deg_digits: usize) -> Option<f64> {
    if value.len() < deg_digits + 1 {
        return None;
    }
    let deg: f64 = value[..deg_digits].parse().ok()?;
    let min: f64 = value[deg_digits..].parse().ok()?;
    let v = deg + min / 60.0;
    Some(match hemi {
        "S" | "W" => -v,
        _ => v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gps(acc: f64) -> GpsReceiver {
        GpsReceiver::new(Rc::new(|| Position::new(500.0, 1_000.0)), acc, 3)
    }

    #[test]
    fn burst_is_about_340_bytes() {
        let mut g = gps(5.0);
        let burst = g.nmea_burst(SimTime::from_secs(3_600));
        let size = GpsReceiver::burst_size(&burst);
        assert!(
            (300..=400).contains(&size),
            "burst size {size}, paper says ~340"
        );
        assert_eq!(burst.len(), 6);
    }

    #[test]
    fn checksums_are_valid() {
        let mut g = gps(5.0);
        for s in g.nmea_burst(SimTime::from_secs(60)) {
            let (body, cs) = s.strip_prefix('$').unwrap().split_once('*').unwrap();
            let expect = body.bytes().fold(0u8, |a, b| a ^ b);
            assert_eq!(u8::from_str_radix(cs, 16).unwrap(), expect, "sentence {s}");
        }
    }

    #[test]
    fn gga_round_trips_position() {
        let mut g = gps(0.0);
        let burst = g.nmea_burst(SimTime::from_secs(60));
        let gga = burst.iter().find(|s| s.starts_with("$GPGGA")).unwrap();
        let p = parse_gga(gga).unwrap();
        // Round-trip error bounded by NMEA minute formatting (4 decimals
        // of a minute ≈ 0.2 m lat, ~0.1 m lon at this latitude).
        assert!((p.x - 500.0).abs() < 1.0, "x {}", p.x);
        assert!((p.y - 1_000.0).abs() < 1.0, "y {}", p.y);
    }

    #[test]
    fn unpowered_receiver_produces_nothing() {
        let mut g = gps(5.0);
        g.set_powered(false);
        assert_eq!(g.fix(), GpsFix::NoFix);
        assert!(g.nmea_burst(SimTime::ZERO).is_empty());
        assert!(g.position_estimate().is_none());
        g.set_powered(true);
        assert_eq!(g.fix(), GpsFix::Fix3D);
        assert!(g.position_estimate().is_some());
    }

    #[test]
    fn accuracy_spreads_position_estimates() {
        let mut g = gps(10.0);
        let estimates: Vec<Position> = (0..100).filter_map(|_| g.position_estimate()).collect();
        let mean_x = estimates.iter().map(|p| p.x).sum::<f64>() / 100.0;
        let spread = estimates
            .iter()
            .map(|p| (p.x - mean_x).powi(2))
            .sum::<f64>()
            / 100.0;
        assert!((mean_x - 500.0).abs() < 5.0);
        assert!(spread.sqrt() > 5.0, "std {}", spread.sqrt());
    }

    #[test]
    fn geo_conversion_round_trips() {
        let p = Position::new(-1234.0, 5678.0);
        let (lat, lon) = world_to_geo(p);
        let back = geo_to_world(lat, lon);
        assert!((back.x - p.x).abs() < 1e-6);
        assert!((back.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn parse_gga_rejects_other_sentences() {
        assert!(parse_gga("$GPRMC,whatever*00").is_none());
        assert!(parse_gga("garbage").is_none());
    }
}
