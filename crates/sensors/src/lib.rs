//! # contory-sensors
//!
//! Synthetic context sources for the Contory reproduction.
//!
//! The paper's field trials had real sailboats on the Baltic with BT-GPS
//! pucks and weather observations; none of that exists in simulation, so
//! this crate provides ground truth and sensors over it:
//!
//! - [`Environment`]: smooth, deterministic space-time fields
//!   (temperature, wind, humidity, pressure, light, noise) that every
//!   sensor samples, so readings from different boats are *consistent* —
//!   which is what makes multi-source aggregation meaningful.
//! - [`EnvSensor`]: a noisy sensor bound to a field and a (possibly
//!   moving) position, with an accuracy model.
//! - [`GpsReceiver`]: fix acquisition, position noise, and NMEA 0183
//!   sentence generation with checksums — a burst per fix is ~340 bytes,
//!   matching the GPS-NMEA size the paper reports for the BT link.
//! - [`BtGpsDevice`]: the external Bluetooth GPS puck: an SDP-visible
//!   service streaming NMEA bursts over an ACL link, with a power switch
//!   used to script the paper's Fig. 5 failover experiment.
//! - [`WeatherStation`]: a fixed "official" observation source for the
//!   infrastructure side of WeatherWatcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btgps;
mod env;
pub mod gps;
mod sensor;

pub use btgps::BtGpsDevice;
pub use env::{EnvField, Environment};
pub use gps::{GpsFix, GpsReceiver};
pub use sensor::{EnvSensor, Reading, WeatherStation};
