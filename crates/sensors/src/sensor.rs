//! Noisy sensors over the ground-truth environment.

use crate::env::{EnvField, Environment};
use radio::Position;
use simkit::{DetRng, SimTime};
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// One sensor observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Reading {
    /// Context type name (`"temperature"`, `"wind"`, …).
    pub quantity: String,
    /// Measured value.
    pub value: f64,
    /// Unit suffix.
    pub unit: &'static str,
    /// Observation time.
    pub timestamp: SimTime,
    /// 1-σ accuracy of the measurement in the value's unit.
    pub accuracy: f64,
    /// Where the observation was made, if georeferenced.
    pub position: Option<Position>,
}

impl Reading {
    /// Printable value, e.g. `"14.3C"`.
    pub fn value_text(&self) -> String {
        format!("{:.1}{}", self.value, self.unit)
    }
}

impl fmt::Display for Reading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={} (±{:.2}) @ {}",
            self.quantity,
            self.value_text(),
            self.accuracy,
            self.timestamp
        )
    }
}

/// Source of the sensor's current position (boats move).
pub type PositionSource = Rc<dyn Fn() -> Position>;

/// A sensor measuring one environment field with Gaussian noise.
///
/// ```
/// use sensors::{EnvField, EnvSensor, Environment};
/// use radio::Position;
/// use simkit::SimTime;
/// use std::rc::Rc;
///
/// let env = Environment::new(1);
/// let mut s = EnvSensor::fixed(&env, EnvField::TemperatureC, Position::ORIGIN, 0.2, 7);
/// let r = s.sample(SimTime::ZERO);
/// assert_eq!(r.quantity, "temperature");
/// assert_eq!(r.accuracy, 0.2);
/// ```
pub struct EnvSensor {
    env: Environment,
    field: EnvField,
    position: PositionSource,
    accuracy: f64,
    rng: DetRng,
    /// Shared dropout switch (fault injection): when `false`, the sensor
    /// is dead and [`EnvSensor::try_sample`] yields nothing.
    online: Rc<Cell<bool>>,
}

impl EnvSensor {
    /// Creates a sensor whose position is supplied by a closure.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is negative.
    pub fn new(
        env: &Environment,
        field: EnvField,
        position: PositionSource,
        accuracy: f64,
        seed: u64,
    ) -> Self {
        assert!(accuracy >= 0.0, "accuracy must be non-negative");
        EnvSensor {
            env: env.clone(),
            field,
            position,
            accuracy,
            rng: DetRng::new(seed ^ 0x5e45),
            online: Rc::new(Cell::new(true)),
        }
    }

    /// Creates a stationary sensor.
    pub fn fixed(
        env: &Environment,
        field: EnvField,
        position: Position,
        accuracy: f64,
        seed: u64,
    ) -> Self {
        EnvSensor::new(env, field, Rc::new(move || position), accuracy, seed)
    }

    /// The measured field.
    pub fn field(&self) -> EnvField {
        self.field
    }

    /// Whether the sensor is currently delivering readings.
    pub fn is_online(&self) -> bool {
        self.online.get()
    }

    /// Flips the dropout switch (fault injection). An offline sensor
    /// keeps its state and noise stream; only delivery stops.
    pub fn set_online(&self, up: bool) {
        self.online.set(up);
    }

    /// The shared dropout switch, for wiring into a fault injector while
    /// the sensor itself is owned elsewhere.
    pub fn online_switch(&self) -> Rc<Cell<bool>> {
        self.online.clone()
    }

    /// Fault-aware sampling: `None` while the sensor is offline.
    ///
    /// The underlying noise stream does *not* advance while offline, so
    /// an outage window shifts — but never reshapes — the reading
    /// sequence, keeping scenarios deterministic.
    pub fn try_sample(&mut self, now: SimTime) -> Option<Reading> {
        if self.online.get() {
            Some(self.sample(now))
        } else {
            None
        }
    }

    /// Takes a reading at `now`: ground truth plus Gaussian noise at the
    /// sensor's accuracy.
    pub fn sample(&mut self, now: SimTime) -> Reading {
        let pos = (self.position)();
        let truth = self.env.sample(self.field, pos, now);
        let noisy = self.rng.gauss(truth, self.accuracy);
        let value = self.field_clamp(noisy);
        Reading {
            quantity: self.field.type_name().to_owned(),
            value,
            unit: self.field.unit(),
            timestamp: now,
            accuracy: self.accuracy,
            position: Some(pos),
        }
    }

    fn field_clamp(&self, v: f64) -> f64 {
        match self.field {
            EnvField::WindKnots | EnvField::LightLux => v.max(0.0),
            EnvField::HumidityPct => v.clamp(0.0, 100.0),
            EnvField::WindDirDeg => v.rem_euclid(360.0),
            _ => v,
        }
    }
}

impl fmt::Debug for EnvSensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnvSensor")
            .field("field", &self.field)
            .field("accuracy", &self.accuracy)
            .finish()
    }
}

/// An "official" weather station: a fixed multi-field observer whose
/// readings the infrastructure republishes (the less-fresh source
/// WeatherWatcher compares against live boats).
pub struct WeatherStation {
    /// Station identity (e.g. `"fmi-harmaja"`).
    pub name: String,
    sensors: Vec<EnvSensor>,
    position: Position,
}

impl WeatherStation {
    /// Creates a station at a fixed position observing the given fields
    /// with professional-grade accuracy.
    pub fn new(
        name: impl Into<String>,
        env: &Environment,
        position: Position,
        fields: &[EnvField],
        seed: u64,
    ) -> Self {
        let sensors = fields
            .iter()
            .enumerate()
            .map(|(i, &f)| EnvSensor::fixed(env, f, position, station_accuracy(f), seed + i as u64))
            .collect();
        WeatherStation {
            name: name.into(),
            sensors,
            position,
        }
    }

    /// Station position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Takes one reading per configured *online* field (offline sensors
    /// are skipped — see [`WeatherStation::set_field_online`]).
    pub fn observe(&mut self, now: SimTime) -> Vec<Reading> {
        self.sensors
            .iter_mut()
            .filter_map(|s| s.try_sample(now))
            .collect()
    }

    /// Flips the dropout switch of one field's sensor (fault injection).
    /// Unknown fields are a no-op.
    pub fn set_field_online(&self, field: EnvField, up: bool) {
        for s in &self.sensors {
            if s.field() == field {
                s.set_online(up);
            }
        }
    }

    /// Flips the dropout switch of *every* sensor at once (a station
    /// power failure).
    pub fn set_online(&self, up: bool) {
        for s in &self.sensors {
            s.set_online(up);
        }
    }
}

impl fmt::Debug for WeatherStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeatherStation")
            .field("name", &self.name)
            .field("fields", &self.sensors.len())
            .finish()
    }
}

fn station_accuracy(field: EnvField) -> f64 {
    match field {
        EnvField::TemperatureC => 0.1,
        EnvField::WindKnots => 0.5,
        EnvField::WindDirDeg => 5.0,
        EnvField::HumidityPct => 2.0,
        EnvField::PressureHpa => 0.3,
        EnvField::LightLux => 50.0,
        EnvField::NoiseDb => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_track_ground_truth() {
        let env = Environment::new(11);
        let mut s = EnvSensor::fixed(&env, EnvField::TemperatureC, Position::ORIGIN, 0.2, 3);
        let t = SimTime::from_secs(500);
        let truth = env.sample(EnvField::TemperatureC, Position::ORIGIN, t);
        let mean: f64 = (0..200).map(|_| s.sample(t).value).sum::<f64>() / 200.0;
        assert!((mean - truth).abs() < 0.1, "mean {mean} truth {truth}");
    }

    #[test]
    fn moving_sensor_follows_position_source() {
        use std::cell::Cell;
        let env = Environment::new(11);
        let pos = Rc::new(Cell::new(Position::new(0.0, 0.0)));
        let p = pos.clone();
        let mut s = EnvSensor::new(
            &env,
            EnvField::NoiseDb,
            Rc::new(move || p.get()),
            0.0,
            3,
        );
        let a = s.sample(SimTime::ZERO);
        pos.set(Position::new(18_000.0, -9_000.0));
        let b = s.sample(SimTime::ZERO);
        assert_eq!(a.position.unwrap(), Position::new(0.0, 0.0));
        assert_eq!(b.position.unwrap(), Position::new(18_000.0, -9_000.0));
        assert_ne!(a.value, b.value);
    }

    #[test]
    fn zero_accuracy_is_exact() {
        let env = Environment::new(11);
        let mut s = EnvSensor::fixed(&env, EnvField::PressureHpa, Position::ORIGIN, 0.0, 3);
        let t = SimTime::from_secs(42);
        assert_eq!(
            s.sample(t).value,
            env.sample(EnvField::PressureHpa, Position::ORIGIN, t)
        );
    }

    #[test]
    fn reading_display_and_text() {
        let r = Reading {
            quantity: "temperature".into(),
            value: 14.04,
            unit: "C",
            timestamp: SimTime::ZERO,
            accuracy: 0.2,
            position: None,
        };
        assert_eq!(r.value_text(), "14.0C");
        assert!(r.to_string().contains("temperature=14.0C"));
    }

    #[test]
    fn station_observes_all_fields() {
        let env = Environment::new(11);
        let mut st = WeatherStation::new(
            "fmi-harmaja",
            &env,
            Position::new(1_000.0, 2_000.0),
            &[EnvField::TemperatureC, EnvField::WindKnots, EnvField::PressureHpa],
            9,
        );
        let obs = st.observe(SimTime::from_secs(60));
        assert_eq!(obs.len(), 3);
        assert!(obs.iter().all(|r| r.position == Some(st.position())));
        let quantities: Vec<&str> = obs.iter().map(|r| r.quantity.as_str()).collect();
        assert_eq!(quantities, vec!["temperature", "wind", "pressure"]);
    }

    #[test]
    fn dropout_stops_and_resumes_delivery() {
        let env = Environment::new(11);
        let mut s = EnvSensor::fixed(&env, EnvField::TemperatureC, Position::ORIGIN, 0.2, 3);
        let t = SimTime::from_secs(10);
        assert!(s.is_online());
        assert!(s.try_sample(t).is_some());
        let switch = s.online_switch();
        switch.set(false);
        assert!(!s.is_online());
        assert!(s.try_sample(t).is_none());
        // The noise stream did not advance while offline: the next
        // reading equals what a never-offline twin would produce.
        let mut twin = EnvSensor::fixed(&env, EnvField::TemperatureC, Position::ORIGIN, 0.2, 3);
        let _ = twin.sample(t); // mirror the one pre-outage sample
        switch.set(true);
        assert_eq!(s.try_sample(t).unwrap().value, twin.sample(t).value);
    }

    #[test]
    fn station_dropout_skips_fields() {
        let env = Environment::new(11);
        let mut st = WeatherStation::new(
            "fmi-harmaja",
            &env,
            Position::ORIGIN,
            &[EnvField::TemperatureC, EnvField::WindKnots],
            9,
        );
        st.set_field_online(EnvField::WindKnots, false);
        let obs = st.observe(SimTime::from_secs(60));
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].quantity, "temperature");
        st.set_online(false);
        assert!(st.observe(SimTime::from_secs(61)).is_empty());
        st.set_online(true);
        assert_eq!(st.observe(SimTime::from_secs(62)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_accuracy_panics() {
        let env = Environment::new(1);
        let _ = EnvSensor::fixed(&env, EnvField::NoiseDb, Position::ORIGIN, -1.0, 1);
    }
}
