//! obskit — deterministic sim-time observability for the Contory
//! reproduction.
//!
//! The paper's evaluation is an attribution exercise: the SM latency
//! break-up (connection 4–5 %, serialization 26–33 %, thread switch
//! 12–14 %, transfer 51–54 %), per-mechanism energy costs, and the
//! Fig. 5 failover timeline. This crate is the measurement substrate
//! that lets the reproduction make the same attributions:
//!
//! * [`Registry`] — counters, gauges and log2-bucketed [`Histogram`]s,
//!   BTree-ordered with exact merge and quantile support;
//! * [`SpanLog`] — spans keyed on [`SimTime`] with parent/child ids and
//!   typed [`Phase`] labels;
//! * exporters — JSONL span stream ([`SpanLog::export_jsonl`]),
//!   Prometheus-style text snapshot ([`Registry::snapshot`]) and the
//!   per-query latency [`Breakup`] table.
//!
//! # Determinism rules
//!
//! Everything is sim-clock-only: the only time type is [`SimTime`], all
//! maps are `BTreeMap`s, span ids come from a monotone creation-order
//! counter, and exporters render in key/id order. Two runs that perform
//! the same recording sequence produce byte-identical exports — the
//! property `tests/determinism.rs` and the obskit test-suite pin down.
//!
//! # Scoped collection
//!
//! Instrumented crates never hold an `Obs` handle. They call the free
//! functions ([`count`], [`gauge`], [`observe`], [`start`], [`end`],
//! [`event`]), which record into the innermost [`install`]ed collector
//! — and no-op when none is installed, so uninstrumented runs are
//! byte-for-byte unchanged. The simulation is single-threaded, so a
//! thread-local stack is both safe and deterministic.
//!
//! ```
//! use obskit::{Obs, Phase};
//! use simkit::SimTime;
//!
//! let obs = Obs::new();
//! {
//!     let _guard = obskit::install(&obs);
//!     obskit::count("queries_submitted", 1);
//!     let root = obskit::start(Phase::Migrate, "sm:1", None, SimTime::ZERO);
//!     let hop = obskit::start(Phase::Transfer, "a->b", root, SimTime::ZERO);
//!     obskit::end(hop, SimTime::from_millis(175));
//!     obskit::end(root, SimTime::from_millis(200));
//! }
//! assert_eq!(obs.counter("queries_submitted"), 1);
//! assert_eq!(obs.span_count(), 2);
//! println!("{}", obs.breakup().table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod metrics;
mod span;

pub use hist::Histogram;
pub use metrics::Registry;
pub use span::{Breakup, Phase, Span, SpanId, SpanLog};

use simkit::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Inner {
    registry: Registry,
    spans: SpanLog,
}

/// A collector: one metrics registry plus one span log, cheap to clone
/// (shared interior). Create one per run/scenario, [`install`] it for
/// the duration of the run, then pull exports from it.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Rc<RefCell<Inner>>,
}

impl Obs {
    /// Creates an empty collector.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Installs this collector as the current recording target; see
    /// the free [`install`] function.
    pub fn install(&self) -> Guard {
        install(self)
    }

    // --- recording (usable directly, or via the free functions) ---

    /// Adds `by` to counter `name`.
    pub fn counter_add(&self, name: &str, by: u64) {
        self.inner.borrow_mut().registry.counter_add(name, by);
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.inner.borrow_mut().registry.gauge_set(name, v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.inner.borrow_mut().registry.observe(name, v);
    }

    /// Opens a span.
    pub fn span_start(
        &self,
        phase: Phase,
        label: &str,
        parent: Option<SpanId>,
        now: SimTime,
    ) -> SpanId {
        self.inner.borrow_mut().spans.start(phase, label, parent, now)
    }

    /// Closes a span (no-op for unknown/closed ids).
    pub fn span_end(&self, id: SpanId, now: SimTime) {
        self.inner.borrow_mut().spans.end(id, now);
    }

    /// Records a zero-width event span.
    pub fn span_event(
        &self,
        phase: Phase,
        label: &str,
        parent: Option<SpanId>,
        now: SimTime,
    ) -> SpanId {
        self.inner.borrow_mut().spans.event(phase, label, parent, now)
    }

    // --- inspection ---

    /// Counter value (0 if untouched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().registry.counter(name)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().registry.gauge(name)
    }

    /// Clone of a named histogram, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().registry.histogram(name).cloned()
    }

    /// Number of spans recorded.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Clone of all spans in id order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.borrow().spans.spans().to_vec()
    }

    // --- exporters ---

    /// Prometheus-style metrics snapshot (byte-deterministic).
    pub fn metrics_snapshot(&self) -> String {
        self.inner.borrow().registry.snapshot()
    }

    /// Deterministic JSON metrics snapshot (counters, gauges, histogram
    /// p50/p90/p99); see [`Registry::snapshot_json`].
    pub fn metrics_json(&self) -> String {
        self.inner.borrow().registry.snapshot_json()
    }

    /// Sum of closed-span durations for one phase across the whole log.
    pub fn phase_total(&self, phase: Phase) -> simkit::SimDuration {
        self.inner.borrow().spans.phase_total(phase)
    }

    /// JSONL span stream (byte-deterministic).
    pub fn spans_jsonl(&self) -> String {
        self.inner.borrow().spans.export_jsonl()
    }

    /// Latency break-up over all spans.
    pub fn breakup(&self) -> Breakup {
        self.inner.borrow().spans.breakup()
    }

    /// Latency break-up restricted to descendants of `root`.
    pub fn breakup_under(&self, root: SpanId) -> Breakup {
        self.inner.borrow().spans.breakup_under(root)
    }

    /// Merges another collector's registry into this one (span logs
    /// are per-run and intentionally not merged: ids would collide).
    pub fn merge_registry(&self, other: &Obs) {
        let other_reg = other.inner.borrow().registry.clone();
        self.inner.borrow_mut().registry.merge(&other_reg);
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Obs>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`install`]; uninstalls on drop.
#[must_use = "the collector is uninstalled when the guard drops"]
#[derive(Debug)]
pub struct Guard {
    _private: (),
}

impl Drop for Guard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Installs `obs` as the innermost current collector for this thread;
/// all free-function recordings land in it until the guard drops.
/// Installations nest (a scoped inner collector shadows the outer one).
pub fn install(obs: &Obs) -> Guard {
    CURRENT.with(|c| c.borrow_mut().push(obs.clone()));
    Guard { _private: () }
}

/// True if a collector is currently installed.
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

fn with_current<R>(f: impl FnOnce(&Obs) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let obs = c.borrow().last().cloned();
        obs.map(|o| f(&o))
    })
}

/// Adds `by` to counter `name` on the current collector (no-op when
/// none is installed).
pub fn count(name: &str, by: u64) {
    let _ = with_current(|o| o.counter_add(name, by));
}

/// Sets gauge `name` on the current collector (no-op when none).
pub fn gauge(name: &str, v: f64) {
    let _ = with_current(|o| o.gauge_set(name, v));
}

/// Records `v` into histogram `name` on the current collector (no-op
/// when none).
pub fn observe(name: &str, v: u64) {
    let _ = with_current(|o| o.observe(name, v));
}

/// Opens a span on the current collector; `None` when none installed.
pub fn start(phase: Phase, label: &str, parent: Option<SpanId>, now: SimTime) -> Option<SpanId> {
    with_current(|o| o.span_start(phase, label, parent, now))
}

/// Closes a span opened by [`start`]. Accepts the `Option` that
/// [`start`] returned, so call sites need no branching.
pub fn end(id: Option<SpanId>, now: SimTime) {
    if let Some(id) = id {
        let _ = with_current(|o| o.span_end(id, now));
    }
}

/// Records a zero-width event span; `None` when none installed.
pub fn event(phase: Phase, label: &str, parent: Option<SpanId>, now: SimTime) -> Option<SpanId> {
    with_current(|o| o.span_event(phase, label, parent, now))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fns_noop_when_uninstalled() {
        assert!(!enabled());
        count("x", 1);
        gauge("g", 1.0);
        observe("h", 1);
        let s = start(Phase::Connect, "c", None, SimTime::ZERO);
        assert!(s.is_none());
        end(s, SimTime::ZERO);
        assert!(event(Phase::Retry, "r", None, SimTime::ZERO).is_none());
    }

    #[test]
    fn install_scopes_and_nests() {
        let outer = Obs::new();
        let inner = Obs::new();
        {
            let _g1 = install(&outer);
            count("hits", 1);
            {
                let _g2 = install(&inner);
                count("hits", 10);
            }
            count("hits", 1);
        }
        count("hits", 100); // uninstalled: dropped
        assert_eq!(outer.counter("hits"), 2);
        assert_eq!(inner.counter("hits"), 10);
    }

    #[test]
    fn spans_flow_through_free_fns() {
        let obs = Obs::new();
        let _g = obs.install();
        let root = start(Phase::Migrate, "root", None, SimTime::ZERO);
        let hop = start(Phase::Transfer, "hop", root, SimTime::from_millis(1));
        end(hop, SimTime::from_millis(5));
        end(root, SimTime::from_millis(6));
        drop(_g);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(obs.breakup().transfer.as_millis(), 4);
    }

    #[test]
    fn exports_are_reproducible() {
        let run = || {
            let obs = Obs::new();
            let _g = obs.install();
            count("a", 2);
            observe("lat_us", 1234);
            let s = start(Phase::Serialize, "ser", None, SimTime::from_millis(2));
            end(s, SimTime::from_millis(8));
            (obs.metrics_snapshot(), obs.spans_jsonl())
        };
        assert_eq!(run(), run());
    }
}
