//! Span-based structured tracing keyed on [`SimTime`].
//!
//! A [`Span`] is an interval of virtual time attributed to a typed
//! [`Phase`] (the paper's latency-break-up vocabulary: connection,
//! serialization, thread switch, transfer, …) with an optional parent,
//! so per-hop costs nest under their migration and per-query events nest
//! under their query. Ids are assigned from a monotone counter in
//! creation order; because the simulation is single-threaded and
//! event-ordered, the id sequence — and hence the JSONL export — is
//! byte-deterministic per seed.

use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Typed phase labels for spans; the first four are the paper's SM
/// latency break-up vocabulary (Sec. 6.2), the rest cover discovery,
/// migration, brokering and the failover lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Phase {
    Connect,
    Serialize,
    ThreadSwitch,
    Transfer,
    Discovery,
    Sdp,
    Migrate,
    Broker,
    Dispatch,
    Admission,
    Failover,
    Suspend,
    Revive,
    Switch,
    Retry,
    Rrc,
    Publish,
    Deliver,
}

impl Phase {
    /// Every phase, in declaration order — the closed taxonomy exporters
    /// iterate over (e.g. benchkit's per-phase break-up capture).
    pub const ALL: [Phase; 18] = [
        Phase::Connect,
        Phase::Serialize,
        Phase::ThreadSwitch,
        Phase::Transfer,
        Phase::Discovery,
        Phase::Sdp,
        Phase::Migrate,
        Phase::Broker,
        Phase::Dispatch,
        Phase::Admission,
        Phase::Failover,
        Phase::Suspend,
        Phase::Revive,
        Phase::Switch,
        Phase::Retry,
        Phase::Rrc,
        Phase::Publish,
        Phase::Deliver,
    ];

    /// Stable snake_case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Connect => "connect",
            Phase::Serialize => "serialize",
            Phase::ThreadSwitch => "thread_switch",
            Phase::Transfer => "transfer",
            Phase::Discovery => "discovery",
            Phase::Sdp => "sdp",
            Phase::Migrate => "migrate",
            Phase::Broker => "broker",
            Phase::Dispatch => "dispatch",
            Phase::Admission => "admission",
            Phase::Failover => "failover",
            Phase::Suspend => "suspend",
            Phase::Revive => "revive",
            Phase::Switch => "switch",
            Phase::Retry => "retry",
            Phase::Rrc => "rrc",
            Phase::Publish => "publish",
            Phase::Deliver => "deliver",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identifier of a span; assigned 1, 2, 3, … in creation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One recorded span: a phase-typed interval of virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Deterministic creation-order id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Typed phase label.
    pub phase: Phase,
    /// Free-form label (query id, hop endpoints, mechanism name, …).
    pub label: String,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed; `None` while still open.
    pub end: Option<SimTime>,
}

impl Span {
    /// Duration of a closed span; zero-width events return
    /// `SimDuration::ZERO`, open spans return `None`.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}

/// Append-only log of spans with deterministic id assignment.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
    index: BTreeMap<SpanId, usize>,
    next_id: u64,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// Opens a span and returns its id.
    pub fn start(
        &mut self,
        phase: Phase,
        label: &str,
        parent: Option<SpanId>,
        now: SimTime,
    ) -> SpanId {
        self.next_id += 1;
        let id = SpanId(self.next_id);
        self.index.insert(id, self.spans.len());
        self.spans.push(Span {
            id,
            parent,
            phase,
            label: label.to_owned(),
            start: now,
            end: None,
        });
        id
    }

    /// Closes a span. Closing an unknown or already-closed span is a
    /// no-op (instrumentation must never panic the middleware).
    pub fn end(&mut self, id: SpanId, now: SimTime) {
        if let Some(&i) = self.index.get(&id) {
            if let Some(span) = self.spans.get_mut(i) {
                if span.end.is_none() {
                    span.end = Some(now.max(span.start));
                }
            }
        }
    }

    /// Records a zero-width event span (`start == end`).
    pub fn event(
        &mut self,
        phase: Phase,
        label: &str,
        parent: Option<SpanId>,
        now: SimTime,
    ) -> SpanId {
        let id = self.start(phase, label, parent, now);
        self.end(id, now);
        id
    }

    /// All spans in id (creation) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Sum of closed-span durations for one phase.
    pub fn phase_total(&self, phase: Phase) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .filter_map(Span::duration)
            .sum()
    }

    /// True if `span` is `root` or transitively parented under it.
    fn is_under(&self, span: &Span, root: SpanId) -> bool {
        let mut cur = Some(span.id);
        let mut hops = 0usize;
        while let Some(id) = cur {
            if id == root {
                return true;
            }
            hops += 1;
            if hops > self.spans.len() {
                return false; // defensive: malformed parent cycle
            }
            cur = self
                .index
                .get(&id)
                .and_then(|&i| self.spans.get(i))
                .and_then(|s| s.parent);
        }
        false
    }

    /// Latency break-up over the whole log.
    pub fn breakup(&self) -> Breakup {
        self.breakup_filtered(|_| true)
    }

    /// Latency break-up restricted to descendants of `root` (the
    /// per-query view: pass the query's or migration's root span).
    pub fn breakup_under(&self, root: SpanId) -> Breakup {
        self.breakup_filtered(|s| self.is_under(s, root))
    }

    fn breakup_filtered(&self, keep: impl Fn(&Span) -> bool) -> Breakup {
        let mut b = Breakup::default();
        for s in self.spans.iter().filter(|s| keep(s)) {
            let Some(d) = s.duration() else { continue };
            match s.phase {
                Phase::Connect => b.connect += d,
                Phase::Serialize => b.serialize += d,
                Phase::ThreadSwitch => b.thread_switch += d,
                Phase::Transfer => b.transfer += d,
                _ => {}
            }
        }
        b
    }

    /// Serializes the log as one JSON object per line, in id order.
    ///
    /// Schema: `{"id":1,"parent":null,"phase":"connect","label":"…",
    /// "start_us":0,"end_us":15000}` with `end_us` null for open spans.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(out, "{{\"id\":{}", s.id.0);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, ",\"parent\":{}", p.0);
                }
                None => out.push_str(",\"parent\":null"),
            }
            let _ = write!(out, ",\"phase\":\"{}\"", s.phase.as_str());
            out.push_str(",\"label\":\"");
            escape_json_into(&s.label, &mut out);
            out.push('"');
            let _ = write!(out, ",\"start_us\":{}", s.start.as_micros());
            match s.end {
                Some(e) => {
                    let _ = write!(out, ",\"end_us\":{}", e.as_micros());
                }
                None => out.push_str(",\"end_us\":null"),
            }
            out.push_str("}\n");
        }
        out
    }
}

/// JSON string-escapes `s` into `out`.
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The paper's four-way latency break-up: connection, serialization,
/// thread switch, transfer (Sec. 6.2 attributes 4–5 %, 26–33 %,
/// 12–14 % and 51–54 % of SM round-trip latency to these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakup {
    /// Time in [`Phase::Connect`] spans.
    pub connect: SimDuration,
    /// Time in [`Phase::Serialize`] spans.
    pub serialize: SimDuration,
    /// Time in [`Phase::ThreadSwitch`] spans.
    pub thread_switch: SimDuration,
    /// Time in [`Phase::Transfer`] spans.
    pub transfer: SimDuration,
}

impl Breakup {
    /// Sum of the four phase totals.
    pub fn total(&self) -> SimDuration {
        self.connect + self.serialize + self.thread_switch + self.transfer
    }

    /// Share of `phase` in percent (0.0 when the total is zero or the
    /// phase is not one of the four break-up phases).
    pub fn share_pct(&self, phase: Phase) -> f64 {
        let total = self.total().as_micros();
        if total == 0 {
            return 0.0;
        }
        let part = match phase {
            Phase::Connect => self.connect,
            Phase::Serialize => self.serialize,
            Phase::ThreadSwitch => self.thread_switch,
            Phase::Transfer => self.transfer,
            _ => SimDuration::ZERO,
        };
        part.as_micros() as f64 * 100.0 / total as f64
    }

    /// Renders the break-up as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<14} {:>12} {:>8}", "phase", "time", "share");
        for phase in [
            Phase::Connect,
            Phase::Serialize,
            Phase::ThreadSwitch,
            Phase::Transfer,
        ] {
            let d = match phase {
                Phase::Connect => self.connect,
                Phase::Serialize => self.serialize,
                Phase::ThreadSwitch => self.thread_switch,
                _ => self.transfer,
            };
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>7.1}%",
                phase.as_str(),
                d.to_string(),
                self.share_pct(phase)
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>7.1}%",
            "total",
            self.total().to_string(),
            if self.total().is_zero() { 0.0 } else { 100.0 }
        );
        out
    }
}

impl fmt::Display for Breakup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ids_are_sequential_and_stable() {
        let mut log = SpanLog::new();
        let a = log.start(Phase::Connect, "a", None, t(0));
        let b = log.start(Phase::Transfer, "b", Some(a), t(1));
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        log.end(b, t(5));
        log.end(a, t(9));
        assert_eq!(log.spans()[1].duration(), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn double_end_and_unknown_end_are_noops() {
        let mut log = SpanLog::new();
        let a = log.start(Phase::Connect, "a", None, t(0));
        log.end(a, t(3));
        log.end(a, t(99));
        log.end(SpanId(42), t(1));
        assert_eq!(log.spans()[0].end, Some(t(3)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn jsonl_escapes_and_serializes() {
        let mut log = SpanLog::new();
        let a = log.start(Phase::Serialize, "say \"hi\"\n", None, t(1));
        log.end(a, t(2));
        log.start(Phase::Migrate, "open", Some(a), t(3));
        let j = log.export_jsonl();
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"id\":1,\"parent\":null,\"phase\":\"serialize\",\
             \"label\":\"say \\\"hi\\\"\\n\",\"start_us\":1000,\"end_us\":2000}"
        );
        assert!(lines[1].ends_with("\"end_us\":null}"));
        assert!(lines[1].contains("\"parent\":1"));
    }

    #[test]
    fn breakup_sums_only_leaf_phases() {
        let mut log = SpanLog::new();
        let root = log.start(Phase::Migrate, "root", None, t(0));
        let c = log.start(Phase::Connect, "c", Some(root), t(0));
        log.end(c, t(10));
        let x = log.start(Phase::Transfer, "x", Some(root), t(10));
        log.end(x, t(40));
        log.end(root, t(40));
        // A stray span outside the root.
        let s = log.start(Phase::Serialize, "stray", None, t(0));
        log.end(s, t(50));

        let all = log.breakup();
        assert_eq!(all.connect, SimDuration::from_millis(10));
        assert_eq!(all.serialize, SimDuration::from_millis(50));
        let under = log.breakup_under(root);
        assert_eq!(under.serialize, SimDuration::ZERO);
        assert_eq!(under.total(), SimDuration::from_millis(40));
        assert!((under.share_pct(Phase::Transfer) - 75.0).abs() < 1e-9);
        let table = under.table();
        assert!(table.contains("transfer"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
    }
}
