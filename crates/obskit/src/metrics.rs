//! The metrics registry: counters, gauges, histograms.
//!
//! A [`Registry`] maps metric names to values through [`BTreeMap`]s, so
//! the Prometheus-style [`Registry::snapshot`] is byte-deterministic for
//! the same recording sequence — no ordering comes from hashers or
//! insertion history. Merging registries (for roll-ups across phones or
//! runs) is supported for all three kinds.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deterministic, name-keyed metrics store.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, by: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Records `v` into the histogram `name` (creating it if absent).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_owned()).or_default().record(v);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if anything was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into this registry: counters add, gauges take
    /// `other`'s value (last-writer-wins), histograms merge exactly.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            let c = self.counters.entry(name.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a Prometheus-style text snapshot.
    ///
    /// Counters and gauges print as `name value`; histograms print
    /// cumulative `name_bucket{le="..."}` lines plus `_sum`/`_count`.
    /// Output order is the `BTreeMap` order of names, so two identical
    /// recording sequences produce byte-identical snapshots.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (upper, n) in h.buckets() {
                cum += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 0.5);
        r.gauge_set("g", 0.25);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(0.25));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.counter_add("z_total", 1);
        r.counter_add("a_total", 1);
        r.observe("lat_us", 100);
        r.observe("lat_us", 5);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        let a = s1.find("a_total").unwrap();
        let z = s1.find("z_total").unwrap();
        assert!(a < z, "names must render in sorted order:\n{s1}");
        assert!(s1.contains("lat_us_count 2"));
        assert!(s1.contains("lat_us_sum 105"));
        assert!(s1.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        b.gauge_set("g", 9.0);
        a.observe("h", 4);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 12);
    }
}
