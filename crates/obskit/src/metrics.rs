//! The metrics registry: counters, gauges, histograms.
//!
//! A [`Registry`] maps metric names to values through [`BTreeMap`]s, so
//! the Prometheus-style [`Registry::snapshot`] is byte-deterministic for
//! the same recording sequence — no ordering comes from hashers or
//! insertion history. Merging registries (for roll-ups across phones or
//! runs) is supported for all three kinds.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deterministic, name-keyed metrics store.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, by: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Records `v` into the histogram `name` (creating it if absent).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_owned()).or_default().record(v);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if anything was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into this registry: counters add, gauges take
    /// `other`'s value (last-writer-wins), histograms merge exactly.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            let c = self.counters.entry(name.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a deterministic JSON snapshot of the registry.
    ///
    /// Schema (`obskit-metrics/1`):
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 3},
    ///   "gauges": {"name": 0.5},
    ///   "histograms": {
    ///     "name": {"count": 2, "sum": 105, "min": 5, "max": 100,
    ///              "mean": 52.5, "p50": 7, "p90": 127, "p99": 127}
    ///   }
    /// }
    /// ```
    ///
    /// All three maps render in `BTreeMap` (name) order and quantiles
    /// come from [`Histogram::quantile`], which is monotone in `q` — so
    /// `p50 <= p90 <= p99` always holds and two identical recording
    /// sequences produce byte-identical JSON (the property the same-seed
    /// identity test pins down).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_json(name), fmt_f64_json(*v));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                fmt_f64_json(h.mean()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders a Prometheus-style text snapshot.
    ///
    /// Counters and gauges print as `name value`; histograms print
    /// cumulative `name_bucket{le="..."}` lines plus `_sum`/`_count`.
    /// Output order is the `BTreeMap` order of names, so two identical
    /// recording sequences produce byte-identical snapshots.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (upper, n) in h.buckets() {
                cum += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// JSON-escapes a metric name (names are plain identifiers in practice,
/// but the exporter must never emit malformed JSON).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number: shortest round-trip representation
/// (deterministic in Rust), with non-finite values mapped to `null`.
fn fmt_f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 0.5);
        r.gauge_set("g", 0.25);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(0.25));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.counter_add("z_total", 1);
        r.counter_add("a_total", 1);
        r.observe("lat_us", 100);
        r.observe("lat_us", 5);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        let a = s1.find("a_total").unwrap();
        let z = s1.find("z_total").unwrap();
        assert!(a < z, "names must render in sorted order:\n{s1}");
        assert!(s1.contains("lat_us_count 2"));
        assert!(s1.contains("lat_us_sum 105"));
        assert!(s1.contains("le=\"+Inf\"} 2"));
    }

    /// Satellite of the benchkit PR: the JSON exporter is deterministic —
    /// two identical recording sequences (the same "seed") produce
    /// byte-identical JSON, and quantile keys are monotone.
    #[test]
    fn json_snapshot_same_seed_byte_identity() {
        let record = || {
            let mut r = Registry::new();
            r.counter_add("requests_total", 7);
            r.counter_add("errors_total", 1);
            r.gauge_set("battery_pct", 81.25);
            r.gauge_set("rssi_dbm", -63.5);
            for v in [100u64, 5, 0, 90_000, 17, 17, 2_000_000] {
                r.observe("lat_us", v);
            }
            r.snapshot_json()
        };
        let a = record();
        let b = record();
        assert_eq!(a, b, "same recording sequence must export identical bytes");
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"requests_total\":7"));
        assert!(a.contains("\"battery_pct\":81.25"));
        assert!(a.contains("\"lat_us\":{\"count\":7"));
    }

    #[test]
    fn json_snapshot_quantiles_monotone() {
        let mut r = Registry::new();
        for v in [1u64, 2, 4, 8, 1024, 1 << 20] {
            r.observe("h", v);
        }
        let h = r.histogram("h").unwrap();
        assert!(h.quantile(0.50) <= h.quantile(0.90));
        assert!(h.quantile(0.90) <= h.quantile(0.99));
        let json = r.snapshot_json();
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn json_snapshot_empty_registry() {
        assert_eq!(
            Registry::new().snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        b.gauge_set("g", 9.0);
        a.observe("h", 4);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 12);
    }
}
