//! Log2-bucketed histograms.
//!
//! A [`Histogram`] summarizes a stream of `u64` observations (typically
//! microseconds or bytes) into power-of-two buckets held in a
//! [`BTreeMap`], so iteration order — and therefore every exporter that
//! renders one — is deterministic. Buckets are cheap (at most 65) and
//! merging two histograms is exact: merging is equivalent to having
//! recorded both observation streams into one histogram.
//!
//! Quantiles are resolved to the *upper bound* of the bucket containing
//! the requested rank, which makes `quantile(q)` monotonically
//! non-decreasing in `q` — a property the proptest suite pins down.

use std::collections::BTreeMap;

/// Bucket index for a value: `0` maps to bucket 0, otherwise
/// `64 - leading_zeros(v)`, i.e. bucket `b` covers `[2^(b-1), 2^b - 1]`.
fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Inclusive upper bound of bucket `b`.
fn bucket_upper(b: u32) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A deterministic log2-bucketed histogram over `u64` observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Folds another histogram into this one. Exact: the result is
    /// indistinguishable from having recorded both streams here.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += n;
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// observation of rank `ceil(q * count)` (clamped to `[1, count]`).
    ///
    /// Returns 0 when the histogram is empty. `q` is clamped to
    /// `[0.0, 1.0]`; the result is monotonically non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(*b);
            }
        }
        bucket_upper(64)
    }

    /// Ordered `(bucket_upper_bound, count)` pairs for exporters.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(b, n)| (bucket_upper(*b), *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_tracks_stats() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(100);
        h.record(7);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_joint_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut joint = Histogram::new();
        for v in [1u64, 5, 9, 1000] {
            a.record(v);
            joint.record(v);
        }
        for v in [0u64, 42, 1 << 40] {
            b.record(v);
            joint.record(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn quantile_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [2u64, 2, 8, 120, 4096] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
        assert!(h.quantile(1.0) >= h.max());
    }
}
