//! Property tests for the obskit histogram and a same-seed determinism
//! check over the exporters.
//!
//! The histogram properties pin down the invariants the break-up and
//! snapshot reports rely on: recording never loses mass, merging two
//! histograms equals recording the concatenation, and quantiles are
//! monotone in `q`. The determinism test drives two identical workloads
//! through two collectors and asserts the JSONL span stream and the
//! Prometheus-style snapshot are byte-identical.

use obskit::{Histogram, Obs, Phase};
use proptest::collection;
use proptest::prelude::*;
use simkit::{DetRng, SimDuration, SimTime};

proptest! {
    #[test]
    fn record_preserves_count_sum_min_max(
        values in collection::vec(0u64..1_000_000_000u64, 0..64),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        if !values.is_empty() {
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
            // Every recorded value is <= the q=1.0 bucket upper bound.
            prop_assert!(h.quantile(1.0) >= h.max());
        }
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in collection::vec(0u64..1_000_000_000u64, 0..48),
        b in collection::vec(0u64..1_000_000_000u64, 0..48),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut direct = Histogram::new();
        for &v in a.iter().chain(b.iter()) {
            direct.record(v);
        }
        prop_assert_eq!(merged, direct);
        // Merging is commutative.
        let mut flipped = hb.clone();
        flipped.merge(&ha);
        let mut merged2 = ha.clone();
        merged2.merge(&hb);
        prop_assert_eq!(flipped, merged2);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in collection::vec(0u64..1_000_000_000u64, 1..64),
        qa in 0.0f64..1.0f64,
        qb in 0.0f64..1.0f64,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.quantile(lo) <= h.quantile(hi),
            "quantile({}) = {} > quantile({}) = {}",
            lo, h.quantile(lo), hi, h.quantile(hi)
        );
    }
}

/// Drives one deterministic workload into a collector: counters, gauges,
/// histogram observations and a small span tree, all derived from a
/// seeded [`DetRng`].
fn workload(seed: u64) -> Obs {
    let obs = Obs::new();
    let _guard = obs.install();
    let mut rng = DetRng::new(seed);
    let mut now = SimTime::ZERO;
    let phases = [
        Phase::Connect,
        Phase::Serialize,
        Phase::ThreadSwitch,
        Phase::Transfer,
        Phase::Discovery,
    ];
    let mut open = Vec::new();
    for i in 0..200u64 {
        let step = SimDuration::from_micros(1 + rng.range_u64(0, 5_000));
        now = now + step;
        let phase = phases[(rng.range_u64(0, phases.len() as u64 - 1)) as usize];
        obskit::count("ops", 1);
        obskit::count(&format!("ops_{}", phase.as_str()), 1);
        obskit::gauge("depth", open.len() as f64);
        obskit::observe("step_us", step.as_micros());
        let parent = open.last().copied();
        if let Some(span) = obskit::start(phase, &format!("op:{i}"), parent, now) {
            open.push(span);
        }
        if rng.range_u64(0, 2) == 0 {
            if let Some(span) = open.pop() {
                now = now + SimDuration::from_micros(rng.range_u64(0, 2_000));
                obskit::end(Some(span), now);
            }
        }
    }
    while let Some(span) = open.pop() {
        now = now + SimDuration::from_micros(17);
        obskit::end(Some(span), now);
    }
    obs
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let a = workload(0xC0FFEE);
    let b = workload(0xC0FFEE);
    assert_eq!(a.spans_jsonl(), b.spans_jsonl());
    assert_eq!(a.metrics_snapshot(), b.metrics_snapshot());
    assert!(!a.spans_jsonl().is_empty());
    assert!(a.metrics_snapshot().contains("# TYPE ops counter"));
}

#[test]
fn different_seeds_diverge() {
    let a = workload(1);
    let b = workload(2);
    assert_ne!(a.spans_jsonl(), b.spans_jsonl());
}
