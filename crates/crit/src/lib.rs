//! Hermetic benchmarking shim.
//!
//! Implements the subset of the `criterion` crate's API that this
//! workspace's benches use, so `cargo bench` (and `cargo test`, which
//! compiles benches) works fully offline. Wired in through a Cargo
//! dependency rename — `criterion = { path = …, package =
//! "contory-criterion" }` — so bench sources keep idiomatic
//! `use criterion::{criterion_group, criterion_main, Criterion};`
//! imports and would compile unchanged against the real crate.
//!
//! Scope: wall-clock median/mean over a fixed number of timed samples
//! after a short warm-up — no outlier analysis, plots, or HTML reports.
//! Sample counts honor `sample_size` but are clamped by the
//! `CRITERION_QUICK` env var (any value ⇒ 10 samples) so CI smoke runs
//! stay fast.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; only a hint in this shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; one setup per routine call.
    SmallInput,
    /// Larger inputs (treated identically here).
    LargeInput,
    /// Per-iteration setup (treated identically here).
    PerIteration,
}

/// Times closures; handed to `bench_function` callbacks.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` over `sample_count` samples (after one untimed
    /// warm-up call), auto-scaling iterations per sample so very fast
    /// routines still get a measurable window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine(); // warm-up
        // Calibrate: aim for ≥ ~1ms per sample, capped for slow routines.
        let probe = Instant::now();
        let _ = routine();
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = routine();
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup()); // warm-up
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            // lint:allow(no-print-in-lib) the criterion shim reports to stdout by design
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let lo = sorted.first().copied().unwrap_or_default();
        let hi = sorted.last().copied().unwrap_or_default();
        // lint:allow(no-print-in-lib) the criterion shim reports to stdout by design
        println!(
            "{name:<40} median {median:>12?}  mean {mean:>12?}  range [{lo:?} .. {hi:?}]  ({} samples)",
            sorted.len()
        );
    }
}

/// Times one call of `f` on the wall clock, returning its output and the
/// elapsed real time.
///
/// This is the sanctioned stopwatch for throughput scenarios (events/sec
/// at scale): keeping `Instant` inside this shim keeps the
/// `wallclock-ban` lint meaningful everywhere else. Wall readings are
/// host-dependent by nature — callers must keep them out of any
/// byte-identity transcript and give them wide regression bands.
pub fn time_once<O>(f: impl FnOnce() -> O) -> (O, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn env_sample_cap() -> Option<usize> {
    std::env::var_os("CRITERION_QUICK").map(|_| 10)
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 30,
        }
    }
}

impl Criterion {
    fn effective(&self, samples: usize) -> usize {
        match env_sample_cap() {
            Some(cap) => samples.min(cap),
            None => samples,
        }
        .max(1)
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective(self.default_samples));
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:"); // lint:allow(no-print-in-lib) criterion shim reports to stdout
        BenchmarkGroup {
            parent: self,
            samples: None,
        }
    }

    /// Prints the closing summary (no-op placeholder).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        let mut b = Bencher::new(self.parent.effective(samples));
        f(&mut b);
        b.report(&format!("  {name}"));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_honors_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(setups >= 10, "setups {setups}");
    }

    criterion_group!(benches, sample_target);
    criterion_main!(main_like);

    fn sample_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    fn main_like() {
        benches();
    }

    #[test]
    fn macros_compose() {
        main();
    }

    #[test]
    fn time_once_returns_output_and_elapsed() {
        let (out, dur) = time_once(|| {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert_eq!(out, 499_500);
        assert!(dur.as_nanos() > 0);
    }
}
