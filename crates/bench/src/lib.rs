//! Shared support for the benchmark binaries that regenerate the
//! paper's tables and figures (see DESIGN.md's experiment index).
//!
//! Every §6 regenerator is a [`benchkit::Scenario`] registered in
//! [`scenarios::all`]. The per-scenario bins (`table1_latency`,
//! `fig5_failover`, …) are thin wrappers that run exactly one scenario
//! through [`benchkit::run_and_render`]; the `bench_all` bin runs the
//! whole suite, writes the human tables to `results/*.txt` and the
//! machine-readable `BENCH_contory.json`, and (with `--check`) diffs
//! the run against the checked-in `results/baseline.json` tolerance
//! bands.
//!
//! Rendering lives in benchkit's report writer, which returns strings —
//! the bins own stdout, this library prints nothing.

#![forbid(unsafe_code)]

pub mod scenarios;

pub use benchkit::{run_and_render, run_scenario, Measurement, Scenario, Unit};
