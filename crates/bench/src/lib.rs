//! Shared support for the benchmark binaries that regenerate the paper's
//! tables and figures (see DESIGN.md's experiment index).
//!
//! Each binary prints a table comparing the *paper's* reported value with
//! the value *measured* on the simulated testbed, plus a shape verdict.
//! Absolute agreement is expected only where the simulator was calibrated
//! against the paper's own numbers; what must hold everywhere is the
//! ordering and the rough factors (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use simkit::stats::Summary;

/// One row of a comparison table.
pub struct Row {
    /// Operation / condition label.
    pub label: String,
    /// Value measured on the simulated testbed.
    pub measured: String,
    /// Value the paper reports.
    pub paper: String,
    /// Short note (topology, caveats).
    pub note: String,
}

impl Row {
    /// Builds a row.
    pub fn new(
        label: impl Into<String>,
        measured: impl Into<String>,
        paper: impl Into<String>,
        note: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            measured: measured.into(),
            paper: paper.into(),
            note: note.into(),
        }
    }
}

/// Prints a comparison table.
pub fn print_table(title: &str, unit: &str, rows: &[Row]) {
    let w_label = rows
        .iter()
        .map(|r| r.label.len())
        .chain([9])
        .max()
        .unwrap_or(9);
    let head_meas = format!("measured {unit}");
    let head_paper = format!("paper {unit}");
    let w_meas = rows
        .iter()
        .map(|r| r.measured.len())
        .chain([head_meas.len()])
        .max()
        .unwrap_or(12);
    let w_paper = rows
        .iter()
        .map(|r| r.paper.len())
        .chain([head_paper.len()])
        .max()
        .unwrap_or(12);
    // The comparison-table renderer *is* the bench output channel.
    println!("\n=== {title} ==="); // lint:allow(no-print-in-lib) bench table renderer
    // lint:allow(no-print-in-lib) bench table renderer
    println!("{:<w_label$}  {:>w_meas$}  {:>w_paper$}  note", "operation", head_meas, head_paper);
    println!("{}", "-".repeat(w_label + w_meas + w_paper + 24)); // lint:allow(no-print-in-lib) bench table renderer
    for r in rows {
        // lint:allow(no-print-in-lib) bench table renderer
        println!(
            "{:<w_label$}  {:>w_meas$}  {:>w_paper$}  {}",
            r.label, r.measured, r.paper, r.note
        );
    }
}

/// Formats a latency summary the way the paper prints Table 1 cells:
/// `avg [90 % CI half-width]`.
pub fn fmt_ms(s: &Summary) -> String {
    format!("{:.3} [{:.3}]", s.mean(), s.ci90_half())
}

/// Formats an energy summary in joules (Table 2 cells).
pub fn fmt_joules(s: &Summary) -> String {
    format!("{:.3} [{:.3}]", s.mean(), s.ci90_half())
}

/// Checks a measured mean against the paper's value within a relative
/// tolerance, returning a PASS/WARN verdict string.
pub fn verdict(measured: f64, paper: f64, rel_tol: f64) -> String {
    let rel = ((measured - paper) / paper).abs();
    if rel <= rel_tol {
        format!("PASS ({:+.1}%)", 100.0 * (measured - paper) / paper)
    } else {
        format!("WARN ({:+.1}%)", 100.0 * (measured - paper) / paper)
    }
}
