//! `scale_city` — the partitioned-engine scale scenario (beyond-paper).
//!
//! The paper's testbed tops out at a handful of phones; this scenario
//! asks what the same provisioning traffic shape looks like at *city*
//! scale: 100 000 devices, each waking on its own deterministic period
//! and gossiping small context items to derived neighbors, driven by the
//! partitioned [`simkit::ShardSim`] engine (per-shard queues merged on
//! the `(time, actor, seq)` total order — see DESIGN.md §5f).
//!
//! Two kinds of rows are exported:
//!
//! * **Deterministic rows** (event totals, deliveries, events per sim
//!   second, the folded state checksum): pure functions of the seed,
//!   identical for every shard/thread count, pinned near-exactly in
//!   `results/baseline.json`.
//! * **Wall-clock rows** (elapsed seconds, wall seconds per sim second,
//!   events per wall second): measured through [`criterion::time_once`], the
//!   one sanctioned stopwatch. These are host-dependent by nature, so
//!   their baseline bands are order-of-magnitude wide — the gate only
//!   trips on a catastrophic (≈10×) slowdown, not on machine jitter.
//!
//! The scenario also cross-checks the partition-invariance contract on a
//! small city: 1 shard × 1 thread and 16 shards × max threads must
//! produce bit-identical outcomes.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use simkit::shard::EngineProfile;
use simkit::{ActorId, EventCtx, ShardConfig, ShardSim, SimDuration, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};

/// Shard count `bench_all --shards N` overrides (0 ⇒ default 16).
static SHARDS: AtomicU32 = AtomicU32::new(0);

/// Overrides the shard count the 100k-device run partitions into
/// (`bench_all --shards N`). Outputs are shard-count-invariant; only the
/// wall-clock rows move.
pub fn set_shards(n: u32) {
    SHARDS.store(n.max(1), Ordering::SeqCst);
}

fn shards() -> u32 {
    match SHARDS.load(Ordering::SeqCst) {
        0 => 16,
        n => n,
    }
}

/// One city run's knobs.
#[derive(Clone, Copy, Debug)]
pub struct CityConfig {
    /// Device (actor) population.
    pub devices: u64,
    /// Physical shard count.
    pub shards: u32,
    /// Worker threads (degrades to 1 without the `parallel` feature).
    pub threads: u32,
    /// Master seed.
    pub seed: u64,
    /// Virtual horizon.
    pub horizon: SimDuration,
}

/// Deterministic outcome of a city run — every field is a pure function
/// of `(seed, devices, horizon)`, independent of `shards`/`threads`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CityOutcome {
    /// Events executed (ticks + gossip deliveries).
    pub events: u64,
    /// Cross-actor gossip messages delivered.
    pub delivered: u64,
    /// Messages that targeted no actor (always 0 here).
    pub dead_letters: u64,
    /// Folded per-device state checksum.
    pub checksum: u64,
}

#[derive(Clone)]
enum Ev {
    /// Periodic wake-up; reschedules itself.
    Tick,
    /// A gossiped context item with a remaining forward budget.
    Gossip { hops: u32 },
}

struct Device {
    /// Wake period, drawn once from the device's own stream.
    period: Option<SimDuration>,
    ticks: u64,
    received: u64,
    /// Running event-order-sensitive accumulator.
    acc: u64,
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 100 ms grid: every tick period, start offset and gossip delay is a
/// multiple of this, so the engine's merge rounds stay coarse (hundreds
/// of rounds per run instead of one per microsecond-distinct event).
const GRID_MS: u64 = 100;

fn on_event(dev: &mut Device, ctx: &mut EventCtx<'_, Ev>, ev: Ev, devices: u64) {
    match ev {
        Ev::Tick => {
            let period = *dev.period.get_or_insert_with(|| {
                // 1.0 s – 3.0 s on the 100 ms grid.
                SimDuration::from_millis(1000 + GRID_MS * (ctx.rng().next_u64() % 21))
            });
            dev.ticks += 1;
            dev.acc = mix(dev.acc ^ ctx.now().as_micros());
            // Gossip one context item to a derived neighbor.
            let jump = 1 + ctx.rng().next_u64() % (devices - 1);
            let dest = ActorId((ctx.actor().0 + jump) % devices);
            let delay = SimDuration::from_millis(GRID_MS * (1 + ctx.rng().next_u64() % 5));
            ctx.send(dest, delay, Ev::Gossip { hops: 1 });
            ctx.schedule_self(period, Ev::Tick);
        }
        Ev::Gossip { hops } => {
            dev.received += 1;
            dev.acc = mix(dev.acc ^ ctx.now().as_micros().rotate_left(13));
            if hops > 0 {
                let jump = 1 + ctx.rng().next_u64() % (devices - 1);
                let dest = ActorId((ctx.actor().0 + jump) % devices);
                let delay = SimDuration::from_millis(GRID_MS * (1 + ctx.rng().next_u64() % 5));
                ctx.send(dest, delay, Ev::Gossip { hops: hops - 1 });
            }
        }
    }
}

/// Runs one deterministic city. Public so the root `shard_determinism`
/// test can replay small cities across shard/thread matrices and compare
/// outcomes bit-for-bit.
pub fn run_city(cfg: CityConfig) -> CityOutcome {
    run_city_profiled(cfg).0
}

/// [`run_city`] plus the engine's execution profile (per-shard event
/// counts, queue peaks, merge-barrier imbalance). The outcome is
/// partition-invariant; the profile describes the partition layout and
/// therefore is not.
pub fn run_city_profiled(cfg: CityConfig) -> (CityOutcome, EngineProfile) {
    assert!(cfg.devices >= 2, "gossip needs at least two devices");
    let devices = cfg.devices;
    let mut sim = ShardSim::new(
        ShardConfig {
            seed: cfg.seed,
            shards: cfg.shards,
            threads: cfg.threads,
            record_transcript: false,
        },
        move |dev: &mut Device, ctx: &mut EventCtx<'_, Ev>, ev| {
            on_event(dev, ctx, ev, devices);
        },
    );
    // Stagger first wake-ups across the first second of the grid with a
    // stream *separate* from each actor's in-engine stream (same salt
    // would double-draw).
    let mut offsets = simkit::DetRng::derive(cfg.seed, 0x0c17_15ca_1ec1_7100);
    for i in 0..devices {
        let added = sim.add_actor(
            ActorId(i),
            Device {
                period: None,
                ticks: 0,
                received: 0,
                acc: mix(i),
            },
        );
        debug_assert!(added, "duplicate device id");
        let at = SimTime::from_millis(GRID_MS * (1 + offsets.next_u64() % 10));
        let scheduled = sim.schedule(ActorId(i), at, Ev::Tick);
        debug_assert!(scheduled.is_ok(), "tick for unknown device");
    }
    sim.run_until(SimTime::ZERO + cfg.horizon);
    let mut checksum = 0u64;
    for i in 0..devices {
        if let Some(dev) = sim.actor_state(ActorId(i)) {
            checksum = mix(checksum ^ dev.acc ^ (dev.ticks << 17) ^ dev.received);
        }
    }
    let out = CityOutcome {
        events: sim.events_processed(),
        delivered: sim.messages_delivered(),
        dead_letters: sim.dead_letters(),
        checksum,
    };
    (out, sim.profile().clone())
}

/// The 100k-device partitioned-engine scale scenario.
pub struct ScaleCity;

/// The big run's population.
pub const CITY_DEVICES: u64 = 100_000;
/// The big run's virtual horizon.
pub const CITY_HORIZON_SECS: u64 = 30;

impl Scenario for ScaleCity {
    fn name(&self) -> &'static str {
        "scale_city"
    }
    fn title(&self) -> &'static str {
        "City-scale gossip on the partitioned engine (100k devices)"
    }
    fn paper_ref(&self) -> &'static str {
        "beyond-paper scale"
    }
    fn seed(&self) -> u64 {
        700
    }

    fn run(&self, ctx: &mut RunCtx) {
        let shard_count = shards();
        let cfg = CityConfig {
            devices: CITY_DEVICES,
            shards: shard_count,
            threads: ShardConfig::max_threads(),
            seed: self.seed(),
            horizon: SimDuration::from_secs(CITY_HORIZON_SECS),
        };
        let ((out, profile), wall) = criterion::time_once(|| run_city_profiled(cfg));
        let horizon = CITY_HORIZON_SECS as f64;
        ctx.tally_events(out.events, SimTime::from_secs(CITY_HORIZON_SECS));
        obskit::count("scale_city_events", out.events);
        obskit::count("scale_city_delivered", out.delivered);
        obskit::gauge("scale_city_queue_peak_max", profile.max_queue_peak() as f64);
        obskit::gauge("scale_city_merge_rounds", profile.rounds as f64);
        for (shard, events) in profile.events_per_shard.iter().enumerate() {
            obskit::gauge(&format!("scale_city_shard{shard}_events"), *events as f64);
        }

        ctx.note(format!(
            "population {CITY_DEVICES}, horizon {horizon} sim-s, {} shards x {} threads \
             (override with `bench_all --shards N`; outputs are shard-invariant)",
            cfg.shards, cfg.threads,
        ));

        // Deterministic rows: pinned (near-)exactly. `abs_tol 0.4` keeps
        // the band non-degenerate for the schema test while still failing
        // on any integer drift.
        ctx.push(
            Measurement::scalar("devices", "device population", Unit::Count, CITY_DEVICES as f64)
                .with_gate_rel_tol(0.0)
                .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "events_total",
                "events executed (ticks + deliveries)",
                Unit::Count,
                out.events as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("seed-determined; shard/thread-invariant"),
        );
        ctx.push(
            Measurement::scalar(
                "messages_delivered",
                "cross-actor gossip deliveries",
                Unit::Count,
                out.delivered as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "events_per_sim_sec",
                "event throughput per simulated second",
                Unit::PerSec,
                out.events as f64 / horizon,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.5),
        );
        ctx.push(
            Measurement::scalar(
                "state_checksum32",
                "folded device-state checksum (low 32 bits)",
                Unit::Count,
                (out.checksum & 0xffff_ffff) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("byte-identity witness across shard/thread counts"),
        );
        ctx.check_true(
            "no_dead_letters",
            "every gossip message found its device",
            out.dead_letters == 0,
        );

        // Wall-clock rows: host-dependent by design (see module docs).
        // Bands are ~an order of magnitude wide so only catastrophic
        // slowdowns trip the gate.
        let wall_s = wall.as_secs_f64().max(1e-9);
        ctx.push(
            Measurement::scalar("wall_secs", "elapsed wall-clock time", Unit::Secs, wall_s)
                .with_gate_rel_tol(9.0)
                .with_gate_abs_tol(60.0)
                .with_note("host-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "wall_per_sim_sec",
                "wall seconds per simulated second",
                Unit::Ratio,
                wall_s / horizon,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(2.0)
            .with_note("host-dependent; gate trips only on ~10x slowdown"),
        );
        ctx.push(
            Measurement::scalar(
                "events_per_wall_sec",
                "event throughput per wall second",
                Unit::PerSec,
                out.events as f64 / wall_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e7)
            .with_note("host-dependent; wide band"),
        );

        // Engine-profile rows: deterministic for a fixed partition, but
        // they describe the partition layout itself (`--shards N` moves
        // them), so they wear wall-style wide bands.
        let shard_n = profile.events_per_shard.len().max(1) as f64;
        ctx.push(
            Measurement::scalar(
                "merge_rounds",
                "engine merge-barrier rounds",
                Unit::Count,
                profile.rounds as f64,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1000.0)
            .with_note("partition-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "events_per_shard_mean",
                "events executed per shard (mean)",
                Unit::Count,
                profile.total_events() as f64 / shard_n,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e6)
            .with_note("partition-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "queue_peak_max",
                "worst per-shard ready-queue depth",
                Unit::Count,
                profile.max_queue_peak() as f64,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e6)
            .with_note("partition-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "barrier_imbalance_mean",
                "mean per-round max-min shard batch gap",
                Unit::Count,
                profile.barrier_imbalance.mean() as f64,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e5)
            .with_note("partition-dependent; wide band"),
        );
        ctx.check_true(
            "profile_accounts_all_events",
            "per-shard profile counts sum to the engine event total",
            profile.total_events() == out.events,
        );
        ctx.artifact("engine profile (per-shard)", profile.table());

        // Partition-invariance cross-check on a small city: sequential
        // 1x1 vs 16 shards on all cores must agree bit-for-bit.
        let small = CityConfig {
            devices: 2_000,
            shards: 1,
            threads: 1,
            seed: self.seed() ^ 0x5ca1e,
            horizon: SimDuration::from_secs(10),
        };
        let seq = run_city(small);
        let par = run_city(CityConfig {
            shards: 16,
            threads: ShardConfig::max_threads(),
            ..small
        });
        ctx.check_true(
            "shard_invariance_small_city",
            "2k-device city: 1 shard x 1 thread == 16 shards x max threads",
            seq == par,
        );
        ctx.tally_events(seq.events + par.events, SimTime::from_secs(2 * 10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: u32, threads: u32) -> CityOutcome {
        run_city(CityConfig {
            devices: 64,
            shards,
            threads,
            seed: 9,
            horizon: SimDuration::from_secs(6),
        })
    }

    #[test]
    fn tiny_city_runs_and_gossips() {
        let out = tiny(1, 1);
        assert!(out.events > 64, "no ticks executed");
        assert!(out.delivered > 0, "no gossip delivered");
        assert_eq!(out.dead_letters, 0);
    }

    #[test]
    fn outcome_is_partition_invariant() {
        let reference = tiny(1, 1);
        for (shards, threads) in [(2, 1), (4, 2), (16, 4), (64, ShardConfig::max_threads())] {
            assert_eq!(tiny(shards, threads), reference, "{shards}x{threads} diverged");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_city(CityConfig {
            devices: 64,
            shards: 4,
            threads: 2,
            seed: 1,
            horizon: SimDuration::from_secs(6),
        });
        let b = run_city(CityConfig {
            devices: 64,
            shards: 4,
            threads: 2,
            seed: 2,
            horizon: SimDuration::from_secs(6),
        });
        assert_ne!(a.checksum, b.checksum);
    }
}
