//! Ablation: **peer/discovery caching** (DESIGN.md §5).
//!
//! The paper notes that BT on-demand cost is dominated by the ~13 s
//! device-discovery phase, and that "in some cases a list of pre-known
//! devices is used". This ablation quantifies what the cached
//! neighbourhood buys: latency and energy of an ad hoc BT round with a
//! cold cache (full inquiry + SDP each time) versus a warm cache.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::refs::{AdHocSpec, BtReference};
use contory::{CxtItem, CxtValue};
use radio::Position;
use simkit::stats::Summary;
use simkit::SimDuration;
use std::cell::Cell;
use std::rc::Rc;
use testbed::{EnergyProbe, PhoneSetup, Testbed};

/// BT discovery-cache ablation scenario.
pub struct AblationDiscoveryCache;

impl Scenario for AblationDiscoveryCache {
    fn name(&self) -> &'static str {
        "ablation_discovery_cache"
    }
    fn title(&self) -> &'static str {
        "Ablation: BT discovery cache (pre-known devices)"
    }
    fn paper_ref(&self) -> &'static str {
        "ablation"
    }
    fn seed(&self) -> u64 {
        801
    }

    fn run(&self, ctx: &mut RunCtx) {
        let tb = Testbed::with_seed(801);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("bench");
        provider
            .factory()
            .publish_cxt_item(
                CxtItem::new("temperature", CxtValue::quantity(14.0, "C"), tb.sim.now())
                    .with_accuracy(0.2),
                None,
            )
            .expect("published");
        tb.sim.run_for(SimDuration::from_secs(1));
        let bt = requester.bt_reference();

        let run = |cold: bool| -> (Summary, Summary) {
            let mut lat = Summary::new();
            let mut energy = Summary::new();
            for _ in 0..8 {
                if cold {
                    bt.forget_peers();
                    tb.sim.run_for(SimDuration::from_secs(5));
                }
                let probe = EnergyProbe::start(&tb.sim, requester.phone());
                let t0 = tb.sim.now();
                let done = Rc::new(Cell::new(false));
                let d = done.clone();
                bt.adhoc_round(&AdHocSpec::one_hop("temperature"), Box::new(move |res| {
                    assert!(!res.expect("round ok").is_empty());
                    d.set(true);
                }));
                testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
                lat.push((tb.sim.now() - t0).as_millis_f64());
                tb.sim.run_for(SimDuration::from_secs(5));
                energy.push(
                    probe
                        .above_baseline(phone::Milliwatts(5.75 + 2.72 + 1.64 + 6.0))
                        .as_joules(),
                );
            }
            (lat, energy)
        };

        let (cold_lat, cold_energy) = run(true);
        // Warm once, then measure.
        {
            let done = Rc::new(Cell::new(false));
            let d = done.clone();
            bt.adhoc_round(
                &AdHocSpec::one_hop("temperature"),
                Box::new(move |_res| d.set(true)),
            );
            testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
        }
        let (warm_lat, warm_energy) = run(false);
        ctx.tally_sim(&tb.sim);

        ctx.push(Measurement::from_summary(
            "cold_latency_ms",
            "cold cache: round latency (full inquiry + SDP)",
            Unit::Millis,
            &cold_lat,
        ));
        ctx.push(Measurement::from_summary(
            "warm_latency_ms",
            "warm cache: round latency",
            Unit::Millis,
            &warm_lat,
        ));
        ctx.push(Measurement::from_summary(
            "cold_energy_j",
            "cold cache: energy per round",
            Unit::Joules,
            &cold_energy,
        ));
        ctx.push(Measurement::from_summary(
            "warm_energy_j",
            "warm cache: energy per round",
            Unit::Joules,
            &warm_energy,
        ));
        ctx.push(
            Measurement::scalar(
                "cache_speedup_latency",
                "cache speedup: latency",
                Unit::Ratio,
                cold_lat.mean() / warm_lat.mean(),
            )
            .with_note("cold / warm"),
        );
        ctx.push(
            Measurement::scalar(
                "cache_speedup_energy",
                "cache speedup: energy",
                Unit::Ratio,
                cold_energy.mean() / warm_energy.mean(),
            )
            .with_note("cold / warm"),
        );
        ctx.note(
            "the paper's Table 2 shows the same split: 5.27 J with discovery vs 0.099 J without"
                .to_string(),
        );

        // Formerly inline asserts, now shared tolerance bands.
        ctx.check_band(
            "cold_pays_inquiry",
            "cold rounds pay the ~13 s inquiry",
            cold_lat.mean(),
            Some(10_000.0),
            None,
            Unit::Millis,
        );
        ctx.check_band(
            "warm_is_fast",
            "warm rounds are two orders faster",
            warm_lat.mean(),
            None,
            Some(100.0),
            Unit::Millis,
        );
    }
}
