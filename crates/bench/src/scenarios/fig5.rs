//! Regenerates **Fig. 5** of the paper: Contory's behaviour in the
//! presence of a BT-GPS failure.
//!
//! Timeline per the paper: the phone retrieves location from a BT-GPS;
//! "after 155 sec, we caused a GPS failure by manually switching off the
//! GPS device. As a reaction, Contory switches from sensor-based
//! provisioning to ad hoc provisioning and starts collecting location
//! data from a neighboring device. Later on, the GPS device becomes
//! available again … Contory switches back to sensor-based provisioning.
//! The cost in terms of power consumption of the switches is due mostly
//! to the BT device discovery."
//!
//! The recovery SLOs that previously lived in inline `assert!`s are now
//! tolerance-band checks, so the obs gate and the bench gate share one
//! mechanism.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::{CollectingClient, CxtItem, CxtValue, Mechanism, Trust};
use radio::Position;
use simkit::{FaultPlan, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use testbed::{PhoneSetup, Testbed};

/// Fig. 5 scenario.
pub struct Fig5Failover;

impl Scenario for Fig5Failover {
    fn name(&self) -> &'static str {
        "fig5_failover"
    }
    fn title(&self) -> &'static str {
        "Fig. 5: Contory behaviour under a BT-GPS failure"
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 5"
    }
    fn seed(&self) -> u64 {
        501
    }

    fn run(&self, ctx: &mut RunCtx) {
        let tb = Testbed::with_seed(501);
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
        });
        let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
        let neighbor = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("neighbor", Position::new(6.0, 0.0))
        });
        neighbor.factory().register_cxt_server("app");
        {
            let factory = neighbor.factory().clone();
            let world = tb.world.clone();
            let node = neighbor.node();
            let sim = tb.sim.clone();
            tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
                let p = world.position_of(node).expect("node placed");
                let _ = factory.publish_cxt_item(
                    CxtItem::new("location", CxtValue::Position { x: p.x, y: p.y }, sim.now())
                        .with_accuracy(30.0)
                        .with_trust(Trust::Community),
                    None,
                );
                true
            });
        }

        // Resource gauges sampled on sim ticks for the metrics snapshot.
        phone
            .factory()
            .monitor()
            .start_sampling(&tb.sim, SimDuration::from_secs(10));

        let client = Rc::new(CollectingClient::new());
        let id = phone
            .submit(
                "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
                client.clone(),
            )
            .expect("query accepted");

        // Record the mechanism timeline while the scenario plays out.
        let timeline: Rc<RefCell<Vec<(SimTime, Option<Mechanism>)>>> =
            Rc::new(RefCell::new(Vec::new()));
        {
            let timeline = timeline.clone();
            let factory = phone.factory().clone();
            let sim = tb.sim.clone();
            tb.sim.schedule_repeating(SimDuration::from_secs(1), move || {
                timeline.borrow_mut().push((sim.now(), factory.mechanism_of(id)));
                true
            });
        }

        // Scripted fault: the GPS puck is dark between t = 155 s and
        // t = 330 s (the paper's "manually switching off the GPS device"),
        // driven through the deterministic fault-injection subsystem.
        let mut plan = FaultPlan::new(501);
        plan.down_between("gps", SimTime::from_secs(155), SimTime::from_secs(330));
        let injector = tb.install_faults(&plan);
        {
            let gps2 = gps.clone();
            injector.register("gps", move |up| gps2.set_powered(up));
        }
        tb.sim.run_until(SimTime::from_secs(520));

        // Power trace.
        let trace = phone.phone().power().trace_snapshot();
        ctx.artifact(
            "power trace (ASCII)",
            trace.ascii_plot(SimTime::ZERO, SimTime::from_secs(520), 110, 14),
        );

        // Mechanism timeline: record the switches.
        let mut last: Option<Mechanism> = None;
        let mut switch_times: Vec<(SimTime, Option<Mechanism>)> = Vec::new();
        let mut timeline_lines = vec!["provisioning timeline:".to_owned()];
        for (t, m) in timeline.borrow().iter() {
            if *m != last {
                timeline_lines.push(format!("  t={:>7}  ->  {}", t.to_string(), match m {
                    Some(m) => m.to_string(),
                    None => "(none)".to_owned(),
                }));
                switch_times.push((*t, *m));
                last = *m;
            }
        }
        ctx.artifact("mechanism timeline", timeline_lines.join("\n"));

        // Switch timing checks (formerly inline asserts).
        let to_adhoc = switch_times
            .iter()
            .find(|(_, m)| *m == Some(Mechanism::AdHocBt))
            .map(|(t, _)| *t);
        let back = switch_times
            .iter()
            .rev()
            .find(|(_, m)| *m == Some(Mechanism::IntSensor))
            .map(|(t, _)| *t);
        ctx.check_true(
            "switched_to_adhoc",
            "switched to ad hoc provisioning after the GPS failure",
            to_adhoc.is_some(),
        );
        ctx.check_true(
            "switched_back",
            "switched back to sensor-based provisioning after recovery",
            back.is_some(),
        );
        let to_adhoc = to_adhoc.unwrap_or(SimTime::ZERO);
        let back = back.unwrap_or(SimTime::ZERO);
        ctx.push(
            Measurement::scalar(
                "switch_to_adhoc_s",
                "GPS off at t=155 s; switch to ad hoc at",
                Unit::Secs,
                to_adhoc.as_secs_f64(),
            )
            .with_note("paper: shortly after 155 s"),
        );
        ctx.push(
            Measurement::scalar(
                "switch_back_s",
                "GPS on at t=330 s; switch back at",
                Unit::Secs,
                back.as_secs_f64(),
            )
            .with_note("paper: after GPS reappears"),
        );
        ctx.check_band(
            "switch_to_adhoc_window",
            "failover switch shortly after the 155 s outage",
            to_adhoc.as_secs_f64(),
            Some(155.0),
            Some(200.0),
            Unit::Secs,
        );
        ctx.check_band(
            "switch_back_after_recovery",
            "recovery switch after the GPS returns at 330 s",
            back.as_secs_f64(),
            Some(330.0),
            None,
            Unit::Secs,
        );

        // Switch cost: mean extra power during the two switch windows (the
        // paper attributes 163-292 mW to BT device discovery).
        for (mid, label, from) in [
            ("switch_cost_failover_mw", "mean power around the failover switch", to_adhoc),
            (
                "switch_cost_recovery_mw",
                "mean power around the recovery switch",
                back - SimDuration::from_secs(45),
            ),
        ] {
            let to = from + SimDuration::from_secs(20);
            let mean = trace.mean_between(from, to);
            ctx.push(
                Measurement::scalar(mid, label, Unit::Milliwatts, mean)
                    .with_note("discovery-driven; paper: 163-292 mW band"),
            );
        }
        let items = client.items_for(id);
        ctx.push(Measurement::scalar(
            "items_delivered",
            "location items delivered across the whole run",
            Unit::Count,
            items.len() as f64,
        ));
        ctx.check_band(
            "items_delivered_floor",
            "provisioning kept flowing throughout",
            items.len() as f64,
            Some(51.0),
            None,
            Unit::Count,
        );

        // Recovery SLOs from the middleware's own failover accounting
        // (surfaced through the ResourcesMonitor), now as shared bands.
        let report = phone.factory().monitor().failover_report(tb.sim.now());
        ctx.artifact("failover report", format!("{report}"));
        let row = report.get(id).expect("query tracked");
        ctx.check_band(
            "failures_detected",
            "GPS outage detected",
            row.failures as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        ctx.check_true(
            "tried_adhoc",
            "ad hoc provisioning in the failover trail",
            row.mechanisms_tried.contains(&Mechanism::AdHocBt),
        );
        ctx.push(Measurement::scalar(
            "gap_max_s",
            "longest provisioning gap",
            Unit::Secs,
            row.gap_max.as_secs_f64(),
        ));
        ctx.check_band(
            "gap_slo",
            "longest provisioning gap within the 45 s SLO",
            row.gap_max.as_secs_f64(),
            None,
            Some(45.0),
            Unit::Secs,
        );
        ctx.note(format!(
            "failover SLO: longest provisioning gap {:.1}s (<= 45 s), ~{} periodic items lost, \
             {} fault transitions applied",
            row.gap_max.as_secs_f64(),
            row.items_lost_estimate,
            injector.transitions_applied(),
        ));

        // Metrics snapshot alongside the FailoverReport: the same scenario
        // seen through the obskit registry (counters, gauges, histograms).
        // The harness installed `ctx.obs()` around this run, so the
        // provisioning layers recorded straight into the report's registry.
        let obs = ctx.obs().clone();
        ctx.artifact("metrics snapshot (obskit)", obs.metrics_snapshot());
        let failover_spans = obs
            .spans()
            .iter()
            .filter(|s| s.phase == obskit::Phase::Failover && s.end.is_some())
            .count();
        ctx.note(format!(
            "span log: {} spans total, {} closed blackout (failover) spans",
            obs.span_count(),
            failover_spans
        ));
        ctx.check_band(
            "factory_mechanism_switches",
            "obskit saw the failover switch to ad hoc",
            obs.counter("factory_mechanism_switches") as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        ctx.check_band(
            "factory_recoveries",
            "obskit saw the recovery switch back to the GPS",
            obs.counter("factory_recoveries") as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        ctx.check_band(
            "failover_spans",
            "blackout span recorded for the GPS outage",
            failover_spans as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        ctx.tally_sim(&tb.sim);
    }
}
