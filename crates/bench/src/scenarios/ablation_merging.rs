//! Ablation: **query merging** (DESIGN.md §5).
//!
//! The Facade merges compatible queries onto one provider to "avoid
//! redundancy and keep the number of active queries minimal" (§4.3).
//! This ablation compares a workload of 6 mergeable queries (same SELECT,
//! overlapping clauses) against the equivalent unmergeable workload
//! (6 distinct context types): providers instantiated, radio rounds
//! performed, and requester-side energy.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::{CollectingClient, CxtItem, CxtValue, Mechanism};
use phone::Milliwatts;
use radio::Position;
use simkit::SimDuration;
use std::rc::Rc;
use testbed::{EnergyProbe, PhoneSetup, Testbed};

fn run_workload(ctx: &mut RunCtx, mergeable: bool) -> (usize, f64, usize) {
    let tb = Testbed::with_seed(if mergeable { 701 } else { 702 });
    let requester = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
    });
    let provider = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
    });
    provider.factory().register_cxt_server("bench");
    let types: Vec<String> = if mergeable {
        vec!["temperature".into(); 6]
    } else {
        vec![
            "temperature".into(),
            "wind".into(),
            "humidity".into(),
            "pressure".into(),
            "light".into(),
            "noise".into(),
        ]
    };
    for (i, t) in types.iter().enumerate() {
        provider
            .factory()
            .publish_cxt_item(
                CxtItem::new(t.clone(), CxtValue::number(10.0 + i as f64), tb.sim.now())
                    .with_accuracy(0.2),
                None,
            )
            .expect("published");
    }
    tb.sim.run_for(SimDuration::from_secs(2));
    let client = Rc::new(CollectingClient::new());
    for (i, t) in types.iter().enumerate() {
        requester
            .submit(
                &format!(
                    "SELECT {t} FROM adHocNetwork(all,1) DURATION 1 hour EVERY {} sec",
                    20 + i
                ),
                client.clone(),
            )
            .expect("query accepted");
    }
    let providers = requester
        .factory()
        .facade(Mechanism::AdHocBt)
        .expect("facade present")
        .provider_count();
    // Let discovery settle, then measure 5 minutes of steady state.
    tb.sim.run_for(SimDuration::from_secs(60));
    let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0);
    let probe = EnergyProbe::start(&tb.sim, requester.phone());
    let before = client.all_items().len();
    tb.sim.run_for(SimDuration::from_mins(5));
    let items = client.all_items().len() - before;
    ctx.tally_sim(&tb.sim);
    (providers, probe.above_baseline(floor).as_joules(), items)
}

/// Query-merging ablation scenario.
pub struct AblationMerging;

impl Scenario for AblationMerging {
    fn name(&self) -> &'static str {
        "ablation_merging"
    }
    fn title(&self) -> &'static str {
        "Ablation: query merging (6 concurrent periodic ad hoc queries)"
    }
    fn paper_ref(&self) -> &'static str {
        "ablation"
    }
    fn seed(&self) -> u64 {
        702
    }

    fn run(&self, ctx: &mut RunCtx) {
        let (p_merge, e_merge, i_merge) = run_workload(ctx, true);
        let (p_nomerge, e_nomerge, i_nomerge) = run_workload(ctx, false);

        ctx.push(
            Measurement::scalar(
                "providers_merged",
                "active providers (mergeable workload)",
                Unit::Count,
                p_merge as f64,
            )
            .with_note("merging collapses compatible queries onto one provider"),
        );
        ctx.push(
            Measurement::scalar(
                "providers_unmerged",
                "active providers (unmergeable workload)",
                Unit::Count,
                p_nomerge as f64,
            )
            .with_note("distinct types cannot merge"),
        );
        ctx.push(
            Measurement::scalar(
                "energy_merged_j",
                "requester energy over 5 min (mergeable)",
                Unit::Joules,
                e_merge,
            )
            .with_note("beyond the idle floor"),
        );
        ctx.push(
            Measurement::scalar(
                "energy_unmerged_j",
                "requester energy over 5 min (unmergeable)",
                Unit::Joules,
                e_nomerge,
            )
            .with_note("beyond the idle floor"),
        );
        ctx.push(
            Measurement::scalar(
                "items_merged",
                "items delivered (mergeable)",
                Unit::Count,
                i_merge as f64,
            )
            .with_note("every member query keeps receiving"),
        );
        ctx.push(
            Measurement::scalar(
                "items_unmerged",
                "items delivered (unmergeable)",
                Unit::Count,
                i_nomerge as f64,
            )
            .with_note("every member query keeps receiving"),
        );
        let per_merged = e_merge / i_merge as f64;
        let per_unmerged = e_nomerge / i_nomerge as f64;
        ctx.push(
            Measurement::scalar(
                "energy_saving_ratio",
                "energy per delivered item: unmerged / merged",
                Unit::Ratio,
                per_unmerged / per_merged,
            )
            .with_note(format!(
                "{per_merged:.4} J merged vs {per_unmerged:.4} J unmerged"
            )),
        );

        // Formerly inline asserts, now shared tolerance bands.
        ctx.check_band(
            "merged_providers",
            "mergeable queries share one provider",
            p_merge as f64,
            Some(1.0),
            Some(1.0),
            Unit::Count,
        );
        ctx.check_band(
            "unmerged_providers",
            "distinct types cannot merge",
            p_nomerge as f64,
            Some(6.0),
            Some(6.0),
            Unit::Count,
        );
        ctx.check_band(
            "merged_items_flow",
            "merged workload keeps delivering",
            i_merge as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        ctx.check_band(
            "unmerged_items_flow",
            "unmerged workload keeps delivering",
            i_nomerge as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
    }
}
