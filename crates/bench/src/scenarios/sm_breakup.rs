//! Regenerates the paper's in-text Smart Messages analysis (§6.1):
//!
//! - the latency break-up of SM retrievals: "connection establishment
//!   accounts for 4-5% of the total latency time, serialization for
//!   26-33%, thread switching for 12-14%, and transfer time for 51-54%.
//!   The SM overhead is negligible."
//! - "BT device discovery takes approximately 13 sec and BT service
//!   discovery takes approximately 1.12 sec."
//! - "The additional time required to build the route is approximately
//!   twice the corresponding latency value in the table."
//!
//! The span-measured break-up bands that previously lived in inline
//! `assert!`s (the obs gate) are now tolerance-band checks, so the obs
//! gate and the bench gate share one mechanism.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use phone::{Phone, PhoneConfig, PhoneModel};
use radio::bt::{BtMedium, BtParams};
use radio::wifi::{WifiMedium, WifiParams};
use radio::{Position, World};
use simkit::stats::Summary;
use simkit::{Sim, SimDuration};
use smartmsg::finder::{Finder, FinderResult, FinderSpec};
use smartmsg::{SmNode, SmOutcome, SmParams, SmPlatform, Tag, TagValue};
use std::cell::RefCell;
use std::rc::Rc;

/// Smart Messages / BT break-up scenario.
pub struct SmBreakup;

impl Scenario for SmBreakup {
    fn name(&self) -> &'static str {
        "sm_breakup"
    }
    fn title(&self) -> &'static str {
        "Smart Messages / Bluetooth break-up (§6.1 in-text)"
    }
    fn paper_ref(&self) -> &'static str {
        "§6.1 in-text"
    }
    fn seed(&self) -> u64 {
        701
    }

    fn run(&self, ctx: &mut RunCtx) {
        // ---- component shares, from the platform's own cost model ----
        let p = SmParams::default();
        let wifi = WifiParams::default();
        let wire = p.control_state_size + 205; // control state + query, code cached
        let per_connect = p.connect.as_secs_f64();
        let per_serialize =
            p.serialize_base.as_secs_f64() + p.serialize_per_byte.as_secs_f64() * wire as f64;
        let per_transfer = p.transfer_base.as_secs_f64() + wifi.transfer_time(wire).as_secs_f64();
        let per_thread = p.thread_switch.as_secs_f64();
        let issuer = p.issuer_serialize.as_secs_f64() + p.issuer_thread.as_secs_f64();
        let total = issuer + 2.0 * (per_connect + per_serialize + per_transfer + per_thread);
        let model_shares = [
            ("model_share_connect", "model: connection establishment", 100.0 * 2.0 * per_connect / total, "4-5%"),
            (
                "model_share_serialize",
                "model: serialization",
                100.0 * (p.issuer_serialize.as_secs_f64() + 2.0 * per_serialize) / total,
                "26-33%",
            ),
            (
                "model_share_thread",
                "model: thread switching",
                100.0 * (p.issuer_thread.as_secs_f64() + 2.0 * per_thread) / total,
                "12-14%",
            ),
            ("model_share_transfer", "model: transfer time", 100.0 * 2.0 * per_transfer / total, "51-54%"),
        ];
        for (id, label, share, band) in model_shares {
            ctx.push(
                Measurement::scalar(id, label, Unit::Percent, share)
                    .with_paper_text(band)
                    .with_note("from the platform's cost-model constants"),
            );
        }
        ctx.push(
            Measurement::scalar(
                "model_total_ms",
                "model: total one-hop retrieval",
                Unit::Millis,
                total * 1e3,
            )
            .with_paper(761.0)
            .with_paper_text("761 (table)")
            .with_paper_tol(0.10),
        );

        // ---- BT discovery durations, measured ----
        let (inq, sdp) = {
            let sim = Sim::new();
            let world = World::new(&sim);
            let medium = BtMedium::new(&sim, &world, BtParams::default());
            let a = world.add_node(Position::new(0.0, 0.0));
            let b = world.add_node(Position::new(5.0, 0.0));
            let pa = Phone::new(&sim, PhoneConfig::default());
            let pb = Phone::new(&sim, PhoneConfig::default());
            let ra = medium.attach(a, &pa, 1);
            let _rb = medium.attach(b, &pb, 2);
            let mut inq = Summary::new();
            let mut sdp = Summary::new();
            for _ in 0..10 {
                let t0 = sim.now();
                let done = Rc::new(std::cell::Cell::new(false));
                let d = done.clone();
                ra.inquiry(move |res| {
                    assert_eq!(res.expect("inquiry ok").len(), 1);
                    d.set(true);
                });
                testbed::run_until_flag(&sim, &done, SimDuration::from_secs(30));
                inq.push((sim.now() - t0).as_secs_f64());
                let t1 = sim.now();
                let done = Rc::new(std::cell::Cell::new(false));
                let d = done.clone();
                ra.sdp_query(b, move |res| {
                    res.expect("sdp ok");
                    d.set(true);
                });
                testbed::run_until_flag(&sim, &done, SimDuration::from_secs(30));
                sdp.push((sim.now() - t1).as_secs_f64());
            }
            ctx.tally_sim(&sim);
            (inq, sdp)
        };
        ctx.push(
            Measurement::from_summary("inq_s", "BT device discovery", Unit::Secs, &inq)
                .with_paper(13.0)
                .with_paper_text("~13")
                .with_paper_tol(0.10),
        );
        ctx.push(
            Measurement::from_summary("sdp_s", "BT service discovery", Unit::Secs, &sdp)
                .with_paper(1.12)
                .with_paper_text("~1.12")
                .with_paper_tol(0.10),
        );

        // ---- route build vs routed retrieval, measured on a branchy net ----
        let (cold, warm) = {
            let sim = Sim::new();
            let world = World::new(&sim);
            let wifi_medium = WifiMedium::new(&sim, &world, WifiParams::default());
            let platform = SmPlatform::new(&sim, SmParams::default());
            let mk = |x: f64, y: f64, seed: u64| -> SmNode {
                let id = world.add_node(Position::new(x, y));
                let phone = Phone::new(
                    &sim,
                    PhoneConfig {
                        model: PhoneModel::Nokia9500,
                        ..PhoneConfig::default()
                    },
                );
                let radio = wifi_medium.attach(id, &phone, seed);
                radio.power_on(|| {});
                platform.install(&radio, &phone, seed + 100)
            };
            // issuer with a decoy branch (explored first on the cold query)
            let issuer = mk(0.0, 0.0, 1);
            let _decoy1 = mk(-80.0, 0.0, 2);
            let _decoy2 = mk(-160.0, 0.0, 3);
            let _relay = mk(80.0, 0.0, 4);
            let provider = mk(160.0, 0.0, 5);
            sim.run_for(SimDuration::from_secs(40));
            provider.publish_tag_now(Tag::new(
                "temperature",
                TagValue::with_data("14.0C", Rc::new(14.0f64), 136),
                sim.now(),
            ));
            let run = |issuer: &SmNode| -> SimDuration {
                let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
                let o = out.clone();
                let t0 = sim.now();
                issuer.inject(
                    Box::new(Finder::new(FinderSpec::first_match("temperature", 3))),
                    SimDuration::from_secs(120),
                    move |outcome| *o.borrow_mut() = Some(outcome),
                );
                while out.borrow().is_none() {
                    assert!(sim.step());
                }
                let results = out
                    .borrow()
                    .as_ref()
                    .expect("outcome set")
                    .completed_as::<Vec<FinderResult>>()
                    .expect("completed");
                assert_eq!(results.len(), 1);
                sim.now() - t0
            };
            let cold = run(&issuer);
            sim.run_for(SimDuration::from_secs(5));
            let warm = run(&issuer);
            ctx.tally_sim(&sim);
            (cold, warm)
        };
        ctx.push(Measurement::scalar(
            "cold_retrieval_ms",
            "cold retrieval (route build)",
            Unit::Millis,
            cold.as_millis_f64(),
        ));
        ctx.push(Measurement::scalar(
            "warm_retrieval_ms",
            "warm retrieval (routed)",
            Unit::Millis,
            warm.as_millis_f64(),
        ));
        ctx.push(
            Measurement::scalar(
                "route_build_ratio",
                "route-build overhead vs routed retrieval",
                Unit::Ratio,
                cold.as_secs_f64() / warm.as_secs_f64(),
            )
            .with_paper(2.0)
            .with_paper_text("~2x")
            .with_paper_tol(0.25),
        );

        // ---- obs gate: span-measured break-up of a warm one-hop retrieval ----
        //
        // The same percentages, but *measured* from obskit spans recorded by
        // the platform while a retrieval runs, rather than derived from the
        // cost-model constants above. The harness installed the scenario's
        // own collector, so the retrieval below records straight into
        // `ctx.obs()`; the break-up is computed under the *last* SM root
        // span (the observed pass).
        {
            let sim = Sim::new();
            let world = World::new(&sim);
            let wifi_medium = WifiMedium::new(&sim, &world, WifiParams::default());
            let platform = SmPlatform::new(&sim, SmParams::default());
            let mk = |x: f64, seed: u64| -> SmNode {
                let id = world.add_node(Position::new(x, 0.0));
                let phone = Phone::new(
                    &sim,
                    PhoneConfig {
                        model: PhoneModel::Nokia9500,
                        ..PhoneConfig::default()
                    },
                );
                let radio = wifi_medium.attach(id, &phone, seed);
                radio.power_on(|| {});
                platform.install(&radio, &phone, seed + 100)
            };
            let issuer = mk(0.0, 11);
            let provider = mk(80.0, 12);
            sim.run_for(SimDuration::from_secs(30));
            provider.publish_tag_now(Tag::new(
                "temperature",
                TagValue::with_data("14.0C", Rc::new(14.0f64), 136),
                sim.now(),
            ));
            let run = |issuer: &SmNode| {
                let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
                let o = out.clone();
                issuer.inject(
                    Box::new(Finder::new(FinderSpec::first_match("temperature", 1))),
                    SimDuration::from_secs(120),
                    move |outcome| *o.borrow_mut() = Some(outcome),
                );
                while out.borrow().is_none() {
                    assert!(sim.step());
                }
                let results = out
                    .borrow()
                    .as_ref()
                    .expect("outcome set")
                    .completed_as::<Vec<FinderResult>>()
                    .expect("completed");
                assert_eq!(results.len(), 1);
            };
            // Warm-up pass (code cache + neighbour tables).
            run(&issuer);
            sim.run_for(SimDuration::from_secs(5));
            // Observed pass.
            run(&issuer);
            ctx.tally_sim(&sim);
            let obs = ctx.obs().clone();
            let root = obs
                .spans()
                .into_iter()
                .filter(|s| s.phase == obskit::Phase::Migrate && s.label.starts_with("sm:"))
                .next_back()
                .expect("SM root span recorded");
            let breakup = obs.breakup_under(root.id);
            ctx.artifact("span-measured break-up (one hop, warm code cache)", breakup.table());
            let bands: [(obskit::Phase, &str, &str, f64, f64); 4] = [
                (obskit::Phase::Connect, "obs_share_connect", "connection establishment", 4.0, 5.0),
                (obskit::Phase::Serialize, "obs_share_serialize", "serialization", 26.0, 33.0),
                (obskit::Phase::ThreadSwitch, "obs_share_thread", "thread switching", 12.0, 14.0),
                (obskit::Phase::Transfer, "obs_share_transfer", "transfer time", 51.0, 54.0),
            ];
            const TOLERANCE_PP: f64 = 3.0;
            for (phase, id, label, lo, hi) in bands {
                let share = breakup.share_pct(phase);
                ctx.push(
                    Measurement::scalar(id, &format!("measured: {label}"), Unit::Percent, share)
                        .with_paper_text(format!("{lo:.0}-{hi:.0}%"))
                        .with_gate_abs_tol(TOLERANCE_PP)
                        .with_gate_rel_tol(0.0),
                );
                ctx.check_band(
                    &format!("{id}_band"),
                    &format!("{label} share within paper band ±{TOLERANCE_PP:.0}pp"),
                    share,
                    Some(lo - TOLERANCE_PP),
                    Some(hi + TOLERANCE_PP),
                    Unit::Percent,
                );
            }
            ctx.note(format!(
                "obs gate: {} spans recorded, retrieval total {:.0} ms",
                obs.span_count(),
                breakup.total().as_millis_f64()
            ));
        }
    }
}
