//! The eight §6 regenerators — plus the beyond-paper `scale_city`,
//! `broker_load` and `broker_chaos` scale scenarios — as
//! [`benchkit::Scenario`]s.
//!
//! One module per table/figure/in-text measurement set; [`all`] returns
//! the suite in the fixed order `bench_all` runs and exports it in.

pub mod ablation_cache;
pub mod ablation_merging;
pub mod broker_chaos;
pub mod broker_load;
pub mod fig4;
pub mod fig5;
pub mod idle;
pub mod scale_city;
pub mod sm_breakup;
pub mod table1;
pub mod table2;

use benchkit::Scenario;

/// The full suite, in export order: the eight §6 regenerators followed
/// by the partitioned-engine scale scenarios.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(table1::Table1Latency),
        Box::new(table2::Table2Energy),
        Box::new(idle::IdlePower),
        Box::new(fig4::Fig4PowerTrace),
        Box::new(fig5::Fig5Failover),
        Box::new(sm_breakup::SmBreakup),
        Box::new(ablation_cache::AblationDiscoveryCache),
        Box::new(ablation_merging::AblationMerging),
        Box::new(scale_city::ScaleCity),
        Box::new(broker_load::BrokerLoad),
        Box::new(broker_chaos::BrokerChaos),
    ]
}
