//! The eight §6 regenerators as [`benchkit::Scenario`]s.
//!
//! One module per table/figure/in-text measurement set; [`all`] returns
//! the suite in the fixed order `bench_all` runs and exports it in.

pub mod ablation_cache;
pub mod ablation_merging;
pub mod fig4;
pub mod fig5;
pub mod idle;
pub mod sm_breakup;
pub mod table1;
pub mod table2;

use benchkit::Scenario;

/// The full §6 suite, in export order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(table1::Table1Latency),
        Box::new(table2::Table2Energy),
        Box::new(idle::IdlePower),
        Box::new(fig4::Fig4PowerTrace),
        Box::new(fig5::Fig5Failover),
        Box::new(sm_breakup::SmBreakup),
        Box::new(ablation_cache::AblationDiscoveryCache),
        Box::new(ablation_merging::AblationMerging),
    ]
}
