//! Regenerates **Table 1** of the paper: latency times of basic Contory
//! operations — `createCxtItem`, `publishCxtItem` (BT / WiFi-SM / UMTS),
//! `createCxtQuery`, and `getCxtItem` over BT one-hop, WiFi one- and
//! two-hop, and UMTS.
//!
//! Topologies per the paper: a Nokia 6630/7610 pair for BT, three Nokia
//! 9500 communicators arranged in a line for WiFi multi-hop, and a remote
//! infrastructure over UMTS. Items are the 136-byte `lightItem`, queries
//! are 205 bytes, UMTS envelopes 1696 bytes.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::refs::{AdHocSpec, BtReference, InternalReference};
use contory::{CxtItem, CxtValue};
use fuego::xml::XmlElement;
use radio::Position;
use sensors::EnvField;
use simkit::stats::Summary;
use simkit::SimDuration;
use testbed::{measure_async, PhoneSetup, Testbed};

const REPS: usize = 30;

pub(crate) fn light_item(now: simkit::SimTime) -> CxtItem {
    // ~136 bytes like the paper's lightItem: fully populated metadata.
    let mut item = CxtItem::new("light", CxtValue::quantity(740.5, "lux"), now)
        .with_source("intSensor://nokia6630-352087/light0")
        .with_accuracy(1.0)
        .with_correctness(0.93)
        .with_trust(contory::Trust::Trusted);
    item.metadata.precision = Some(0.5);
    item.metadata.completeness = Some(1.0);
    item.metadata.privacy = Some("community".into());
    debug_assert!((130..=142).contains(&item.wire_size()), "{}", item.wire_size());
    item
}

/// Table 1 scenario.
pub struct Table1Latency;

impl Scenario for Table1Latency {
    fn name(&self) -> &'static str {
        "table1_latency"
    }
    fn title(&self) -> &'static str {
        "Table 1: latency times of basic Contory operations"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }
    fn seed(&self) -> u64 {
        101
    }

    fn run(&self, ctx: &mut RunCtx) {
        ctx.note(format!(
            "reps per operation: {REPS}; values are avg [90% CI half-width]"
        ));

        // ---------------- createCxtItem (provider side) ----------------
        let create = {
            let tb = Testbed::with_seed(101);
            let phone = tb.add_phone(PhoneSetup {
                internal_sensors: vec![EnvField::LightLux],
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let internal = phone.internal_reference().expect("sensor configured");
            let s = measure_async(&tb.sim, REPS, SimDuration::from_millis(10), |_i, done| {
                internal.sample("light", Box::new(move |res| {
                    res.expect("sample ok");
                    done();
                }));
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary("create_cxt_item", "createCxtItem", Unit::Millis, &create)
                .with_paper(0.078)
                .with_paper_text("0.078 [0.001]")
                .with_paper_tol(0.15),
        );

        // ---------------- publishCxtItem, BT-based ----------------
        let publish_bt = {
            let tb = Testbed::with_seed(102);
            let phone = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let bt = phone.bt_reference();
            let sim = tb.sim.clone();
            let s = measure_async(&tb.sim, REPS, SimDuration::from_millis(50), move |_i, done| {
                let item = light_item(sim.now());
                bt.publish(&item, None, Box::new(move |res| {
                    res.expect("publish ok");
                    done();
                }));
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "publish_bt",
                "adHocNetwork, BT-based: publishCxtItem",
                Unit::Millis,
                &publish_bt,
            )
            .with_paper(140.359)
            .with_paper_text("140.359 [0.337]")
            .with_paper_tol(0.05)
            .with_gate_rel_tol(0.15),
        );

        // ---------------- publishCxtItem, WiFi/SM-based ----------------
        let publish_wifi = {
            let tb = Testbed::with_seed(103);
            let phone = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
            tb.sim.run_for(SimDuration::from_secs(40)); // join + startup
            let wifi = phone.wifi_reference().expect("communicator");
            let sim = tb.sim.clone();
            let s = measure_async(&tb.sim, REPS, SimDuration::from_millis(10), move |_i, done| {
                let item = light_item(sim.now());
                use contory::refs::WifiReference;
                wifi.publish(&item, None, Box::new(move |res| {
                    res.expect("publish ok");
                    done();
                }));
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "publish_wifi",
                "adHocNetwork, WiFi-based: publishCxtItem",
                Unit::Millis,
                &publish_wifi,
            )
            .with_paper(0.130)
            .with_paper_text("0.130 [0.006]")
            .with_paper_tol(0.10),
        );

        // ---------------- publishCxtItem, UMTS-based ----------------
        let publish_umts = {
            let tb = Testbed::with_seed(104);
            let phone = tb.add_phone(PhoneSetup {
                cell_on: true,
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let fuego = phone.fuego().expect("fuego client").clone();
            let s = measure_async(&tb.sim, REPS, SimDuration::from_secs(30), move |_i, done| {
                // A context item encapsulated in a 1696-byte event notification.
                let ev = fuego.make_event(
                    "cxt/light",
                    XmlElement::new("cxtItem").attr("type", "light").text("740.5"),
                );
                fuego.publish(ev, move |res| {
                    res.expect("uplink ok");
                    done();
                });
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "publish_umts",
                "extInfra, UMTS-based: publishCxtItem",
                Unit::Millis,
                &publish_umts,
            )
            .with_paper(772.728)
            .with_paper_text("772.728 [158.924]")
            .with_paper_tol(0.20),
        );

        // ---------------- createCxtQuery ----------------
        // The paper's table leaves this cell blank/garbled in the available
        // text; we model query-object creation like item creation scaled by
        // object size (205 B vs 136 B) and report it for completeness.
        let create_query = {
            let mut rng = simkit::DetRng::new(105);
            let mut s = Summary::new();
            for _ in 0..REPS {
                s.push(
                    rng.gauss_duration(
                        SimDuration::from_micros(78 * 205 / 136),
                        SimDuration::from_micros(2),
                    )
                    .as_millis_f64(),
                );
            }
            s
        };
        ctx.push(
            Measurement::from_summary("create_cxt_query", "createCxtQuery", Unit::Millis, &create_query)
                .with_paper_text("(cell empty in source)")
                .with_note("modeled: createCxtItem x 205B/136B"),
        );

        // ---------------- getCxtItem, BT one hop ----------------
        let get_bt = {
            let tb = Testbed::with_seed(106);
            let requester = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
            });
            let provider = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
            });
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .expect("published");
            tb.sim.run_for(SimDuration::from_secs(1));
            let bt = requester.bt_reference();
            // Warm-up round performs device + service discovery (~14 s);
            // the table's number is "once device and service discovery has
            // occurred".
            {
                let done = std::rc::Rc::new(std::cell::Cell::new(false));
                let d = done.clone();
                bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
                    assert_eq!(res.expect("round ok").len(), 1);
                    d.set(true);
                }));
                testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
            }
            let s = measure_async(&tb.sim, REPS, SimDuration::from_secs(2), move |_i, done| {
                bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
                    assert!(!res.expect("round ok").is_empty());
                    done();
                }));
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "get_bt_1hop",
                "adHocNetwork, BT-based, one hop: getCxtItem",
                Unit::Millis,
                &get_bt,
            )
            .with_paper(31.830)
            .with_paper_text("31.830 [0.151]")
            .with_paper_tol(0.10),
        );

        // ---------------- getCxtItem, WiFi one & two hops ----------------
        let (get_wifi1, get_wifi2) = {
            let mut run = |hops: u32, seed: u64| -> Summary {
                let tb = Testbed::with_seed(seed);
                let requester = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
                let _relay = tb.add_phone(PhoneSetup::nokia9500("c1", Position::new(80.0, 0.0)));
                let far = tb.add_phone(PhoneSetup::nokia9500("c2", Position::new(160.0, 0.0)));
                tb.sim.run_for(SimDuration::from_secs(40));
                let provider = if hops == 1 { &_relay } else { &far };
                provider.factory().register_cxt_server("bench");
                provider
                    .factory()
                    .publish_cxt_item(light_item(tb.sim.now()), None)
                    .expect("published");
                tb.sim.run_for(SimDuration::from_secs(1));
                let wifi = requester.wifi_reference().expect("communicator");
                let spec = AdHocSpec {
                    num_hops: hops,
                    ..AdHocSpec::one_hop("light")
                };
                // Warm-up: builds the SM route and code caches ("once the
                // route has been built").
                {
                    use contory::refs::WifiReference;
                    let done = std::rc::Rc::new(std::cell::Cell::new(false));
                    let d = done.clone();
                    let s = spec.clone();
                    wifi.adhoc_round(&s, Box::new(move |res| {
                        assert_eq!(res.expect("round ok").len(), 1);
                        d.set(true);
                    }));
                    testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
                }
                let s = measure_async(&tb.sim, REPS, SimDuration::from_secs(1), move |_i, done| {
                    use contory::refs::WifiReference;
                    wifi.adhoc_round(&spec, Box::new(move |res| {
                        assert!(!res.expect("round ok").is_empty());
                        done();
                    }));
                });
                ctx.tally_sim(&tb.sim);
                s
            };
            (run(1, 107), run(2, 108))
        };
        ctx.push(
            Measurement::from_summary(
                "get_wifi_1hop",
                "adHocNetwork, WiFi-based, one hop: getCxtItem",
                Unit::Millis,
                &get_wifi1,
            )
            .with_paper(761.280)
            .with_paper_text("761.280 [28.940]")
            .with_paper_tol(0.10),
        );
        ctx.push(
            Measurement::from_summary(
                "get_wifi_2hop",
                "adHocNetwork, WiFi-based, two hops: getCxtItem",
                Unit::Millis,
                &get_wifi2,
            )
            .with_paper(1422.5)
            .with_paper_text("1422.500 [60.001]")
            .with_paper_tol(0.10),
        );

        // ---------------- getCxtItem, UMTS ----------------
        let get_umts = {
            let tb = Testbed::with_seed(109);
            tb.add_weather_station(
                "station",
                Position::new(10_000.0, 0.0),
                &[EnvField::LightLux],
                SimDuration::from_secs(30),
            );
            tb.sim.run_for(SimDuration::from_secs(60));
            let phone = tb.add_phone(PhoneSetup {
                cell_on: true,
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let cell = phone.cell_reference();
            let spec = contory::refs::InfraSpec {
                cxt_type: "light".into(),
                max_items: 1,
                ..Default::default()
            };
            let s = measure_async(&tb.sim, REPS, SimDuration::from_secs(30), move |_i, done| {
                use contory::refs::CellReference;
                cell.fetch(&spec, Box::new(move |res| {
                    assert!(!res.expect("fetch ok").is_empty());
                    done();
                }));
            });
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "get_umts",
                "extInfra, UMTS-based: getCxtItem",
                Unit::Millis,
                &get_umts,
            )
            .with_paper(1473.0)
            .with_paper_text("1473.000 [275.000]")
            .with_paper_tol(0.15)
            .with_note(format!(
                "observed range {:.0}..{:.0} (paper: 703..2766)",
                get_umts.min(),
                get_umts.max()
            )),
        );

        // Shape checks the paper's prose calls out, as gated ratios.
        ctx.push(
            Measurement::scalar(
                "shape_bt_publish_vs_sm",
                "shape: BT publish / SM-tag publish",
                Unit::Ratio,
                publish_bt.mean() / publish_wifi.mean(),
            )
            .with_paper(1080.0)
            .with_paper_tol(0.15)
            .with_note("paper ~1080x"),
        );
        ctx.push(
            Measurement::scalar(
                "shape_wifi_2hop_vs_1hop",
                "shape: WiFi 2-hop / 1-hop",
                Unit::Ratio,
                get_wifi2.mean() / get_wifi1.mean(),
            )
            .with_paper(1.87)
            .with_paper_tol(0.10)
            .with_note("paper 1.87x"),
        );
        ctx.check_band(
            "wifi_hop_scaling",
            "WiFi 2-hop / 1-hop latency ratio near the paper's 1.87x",
            get_wifi2.mean() / get_wifi1.mean(),
            Some(1.5),
            Some(2.3),
            Unit::Ratio,
        );
        ctx.note(format!(
            "UMTS variance is extreme: std {:.0} ms over mean {:.0} ms",
            get_umts.std_dev(),
            get_umts.mean()
        ));
    }
}
