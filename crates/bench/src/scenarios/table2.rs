//! Regenerates **Table 2** of the paper: energy consumption per context
//! item for every provisioning mechanism.
//!
//! Methodology mirrors §6.1: short experiments (high-energy runs ≤ 10
//! min), idle floors measured before each run and subtracted, WiFi rows
//! computed from the power log (the paper's multimeter browned the
//! communicator out — reproduced by `phone::Battery` — so those rows are
//! lower bounds taken "based on the logs we gathered", with the
//! back-light on).

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::refs::{AdHocSpec, BtReference, CellReference, WifiReference};
use phone::Milliwatts;
use radio::Position;
use sensors::EnvField;
use simkit::stats::Summary;
use simkit::{Sim, SimDuration};
use std::cell::Cell;
use std::rc::Rc;
use testbed::{EnergyProbe, PhoneSetup, Testbed};

use super::table1::light_item;

/// Measures the idle floor of a phone over 30 s.
fn idle_floor(sim: &Sim, phone: &phone::Phone) -> Milliwatts {
    let probe = EnergyProbe::start(sim, phone);
    sim.run_for(SimDuration::from_secs(30));
    probe.mean_power()
}

fn round_once(sim: &Sim, bt: &Rc<testbed::SimBtReference>) {
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
        assert!(!res.expect("round ok").is_empty(), "provider must answer");
        d.set(true);
    }));
    testbed::run_until_flag(sim, &done, SimDuration::from_secs(60));
}

fn wifi_round_once(sim: &Sim, wifi: &Rc<testbed::SimWifiReference>, spec: &AdHocSpec) {
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    wifi.adhoc_round(spec, Box::new(move |res| {
        assert!(!res.expect("round ok").is_empty(), "provider must answer");
        d.set(true);
    }));
    testbed::run_until_flag(sim, &done, SimDuration::from_secs(60));
}

/// Table 2 scenario.
pub struct Table2Energy;

impl Scenario for Table2Energy {
    fn name(&self) -> &'static str {
        "table2_energy"
    }
    fn title(&self) -> &'static str {
        "Table 2: energy consumption of context provisioning mechanisms"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }
    fn seed(&self) -> u64 {
        201
    }

    fn run(&self, ctx: &mut RunCtx) {
        ctx.note("values are avg [90% CI half-width] joules per cxtItem".to_string());

        // ---- adHocNetwork BT: provideCxtItem (provider side) ----
        let provide_bt = {
            let tb = Testbed::with_seed(201);
            let requester = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
            });
            let provider = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
            });
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .expect("published");
            tb.sim.run_for(SimDuration::from_secs(1));
            let bt = requester.bt_reference();
            // Warm-up establishes discovery + the link.
            round_once(&tb.sim, &bt);
            let floor = idle_floor(&tb.sim, provider.phone());
            let mut per_item = Summary::new();
            for _ in 0..10 {
                let probe = EnergyProbe::start(&tb.sim, provider.phone());
                round_once(&tb.sim, &bt);
                tb.sim.run_for(SimDuration::from_secs(5)); // drain active tails
                per_item.push(probe.above_baseline(floor).as_joules());
            }
            ctx.tally_sim(&tb.sim);
            per_item
        };
        ctx.push(
            Measurement::from_summary(
                "provide_bt",
                "adHocNetwork, BT: provideCxtItem",
                Unit::JoulesPerItem,
                &provide_bt,
            )
            .with_paper(0.133)
            .with_paper_text("0.133 [0.002]")
            .with_paper_tol(0.15),
        );

        // ---- adHocNetwork BT: getCxtItem, on-demand incl. discovery ----
        let get_bt_discovery = {
            let tb = Testbed::with_seed(202);
            let requester = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
            });
            let provider = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
            });
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .expect("published");
            tb.sim.run_for(SimDuration::from_secs(1));
            let bt = requester.bt_reference();
            let floor = idle_floor(&tb.sim, requester.phone());
            let mut per_item = Summary::new();
            for _ in 0..5 {
                bt.forget_peers(); // cold: every run pays full discovery
                tb.sim.run_for(SimDuration::from_secs(5));
                let probe = EnergyProbe::start(&tb.sim, requester.phone());
                round_once(&tb.sim, &bt);
                tb.sim.run_for(SimDuration::from_secs(5));
                per_item.push(probe.above_baseline(floor).as_joules());
            }
            ctx.tally_sim(&tb.sim);
            per_item
        };
        ctx.push(
            Measurement::from_summary(
                "get_bt_discovery",
                "adHocNetwork, BT: getCxtItem (on-demand, incl. discovery)",
                Unit::JoulesPerItem,
                &get_bt_discovery,
            )
            .with_paper(5.270)
            .with_paper_text("5.270 [0.010]")
            .with_paper_tol(0.15),
        );

        // ---- adHocNetwork BT: getCxtItem, periodic w/o discovery ----
        let get_bt_periodic = {
            let tb = Testbed::with_seed(203);
            let requester = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
            });
            let provider = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
            });
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .expect("published");
            tb.sim.run_for(SimDuration::from_secs(1));
            let bt = requester.bt_reference();
            // Periodic = push subscription: the query travels once, items are
            // pushed every period; the table's cost is per received item.
            let got = Rc::new(Cell::new(0usize));
            let g = got.clone();
            let _h = bt.adhoc_subscribe(
                &AdHocSpec::one_hop("light"),
                SimDuration::from_secs(5),
                Rc::new(move |items| g.set(g.get() + items.len())),
                Rc::new(|_e| {}),
            );
            tb.sim.run_for(SimDuration::from_secs(40)); // discovery settles
            let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0); // idle + scan + mw + link
            let before = got.get();
            let probe = EnergyProbe::start(&tb.sim, requester.phone());
            tb.sim.run_for(SimDuration::from_secs(120));
            let received = got.get() - before;
            let mut per_item = Summary::new();
            per_item.push(probe.above_baseline(floor).as_joules() / received as f64);
            ctx.tally_sim(&tb.sim);
            per_item
        };
        ctx.push(
            Measurement::from_summary(
                "get_bt_periodic",
                "adHocNetwork, BT: getCxtItem (periodic, w/o discovery)",
                Unit::JoulesPerItem,
                &get_bt_periodic,
            )
            .with_paper(0.099)
            .with_paper_text("0.099 [0.007]")
            .with_paper_tol(0.15),
        );

        // ---- intSensor BT-GPS: getCxtItem (periodic, w/o discovery) ----
        let get_gps = {
            let tb = Testbed::with_seed(204);
            let phone = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
            });
            let _gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
            let client = Rc::new(contory::CollectingClient::new());
            let id = phone
                .submit(
                    "SELECT location FROM intSensor DURATION 1 hour EVERY 5 sec",
                    client.clone(),
                )
                .expect("query accepted");
            // Discovery + connection, then steady streaming.
            tb.sim.run_for(SimDuration::from_secs(40));
            let before = client.items_for(id).len();
            // Floor with the link open: BT scan + middleware + link idle.
            let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0);
            let probe = EnergyProbe::start(&tb.sim, phone.phone());
            tb.sim.run_for(SimDuration::from_secs(120));
            let items = client.items_for(id).len() - before;
            let mut s = Summary::new();
            s.push(probe.above_baseline(floor).as_joules() / items as f64);
            ctx.tally_sim(&tb.sim);
            s
        };
        ctx.push(
            Measurement::from_summary(
                "get_gps_periodic",
                "intSensor, BT-GPS: getCxtItem (periodic, w/o discovery)",
                Unit::JoulesPerItem,
                &get_gps,
            )
            .with_paper(0.422)
            .with_paper_text("0.422 [0.084]")
            .with_paper_tol(0.20),
        );

        // ---- adHocNetwork WiFi: one hop & two hops, periodic ----
        let (wifi1, wifi2) = {
            let mut run = |hops: u32, seed: u64| -> Summary {
                let tb = Testbed::with_seed(seed);
                let requester = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
                let relay = tb.add_phone(PhoneSetup::nokia9500("c1", Position::new(80.0, 0.0)));
                let far = tb.add_phone(PhoneSetup::nokia9500("c2", Position::new(160.0, 0.0)));
                // The paper's WiFi runs had the back-light on.
                requester.phone().set_backlight(true);
                tb.sim.run_for(SimDuration::from_secs(40));
                let provider = if hops == 1 { &relay } else { &far };
                provider.factory().register_cxt_server("bench");
                provider
                    .factory()
                    .publish_cxt_item(light_item(tb.sim.now()), None)
                    .expect("published");
                tb.sim.run_for(SimDuration::from_secs(1));
                let wifi = requester.wifi_reference().expect("communicator");
                let spec = AdHocSpec {
                    num_hops: hops,
                    ..AdHocSpec::one_hop("light")
                };
                wifi_round_once(&tb.sim, &wifi, &spec); // route build
                let mut per_item = Summary::new();
                for _ in 0..10 {
                    // Per-item energy is the full device draw over the
                    // retrieval window (WiFi's constant 1190 mW dominates).
                    let probe = EnergyProbe::start(&tb.sim, requester.phone());
                    wifi_round_once(&tb.sim, &wifi, &spec);
                    per_item.push(probe.total().as_joules());
                    tb.sim.run_for(SimDuration::from_secs(20));
                }
                ctx.tally_sim(&tb.sim);
                per_item
            };
            (run(1, 205), run(2, 206))
        };
        ctx.push(
            Measurement::from_summary(
                "get_wifi_1hop",
                "adHocNetwork, WiFi: getCxtItem (one hop, periodic)",
                Unit::JoulesPerItem,
                &wifi1,
            )
            .with_paper(0.906)
            .with_paper_text("> 0.906")
            .with_paper_tol(0.15)
            .as_lower_bound()
            .with_note("back-light on; from power log"),
        );
        ctx.push(
            Measurement::from_summary(
                "get_wifi_2hop",
                "adHocNetwork, WiFi: getCxtItem (two hops, periodic)",
                Unit::JoulesPerItem,
                &wifi2,
            )
            .with_paper(1.693)
            .with_paper_text("> 1.693")
            .with_paper_tol(0.15)
            .as_lower_bound()
            .with_note("back-light on; from power log"),
        );

        // ---- extInfra UMTS: getCxtItem, on-demand ----
        let get_umts = {
            let tb = Testbed::with_seed(207);
            tb.add_weather_station(
                "station",
                Position::new(10_000.0, 0.0),
                &[EnvField::LightLux],
                SimDuration::from_secs(30),
            );
            tb.sim.run_for(SimDuration::from_secs(60));
            let phone = tb.add_phone(PhoneSetup {
                cell_on: true,
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let cell = phone.cell_reference();
            let floor = idle_floor(&tb.sim, phone.phone());
            let spec = contory::refs::InfraSpec {
                cxt_type: "light".into(),
                max_items: 1,
                ..Default::default()
            };
            let mut per_item = Summary::new();
            for _ in 0..8 {
                let probe = EnergyProbe::start(&tb.sim, phone.phone());
                let done = Rc::new(Cell::new(false));
                let d = done.clone();
                cell.fetch(&spec, Box::new(move |res| {
                    assert!(!res.expect("fetch ok").is_empty());
                    d.set(true);
                }));
                testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
                // Let the DCH and FACH tails drain (this *is* most of the cost).
                tb.sim.run_for(SimDuration::from_secs(60));
                per_item.push(probe.above_baseline(floor).as_joules());
            }
            ctx.tally_sim(&tb.sim);
            per_item
        };
        ctx.push(
            Measurement::from_summary(
                "get_umts",
                "extInfra, UMTS: getCxtItem (on-demand)",
                Unit::JoulesPerItem,
                &get_umts,
            )
            .with_paper(14.076)
            .with_paper_text("14.076 [0.496]")
            .with_paper_tol(0.15),
        );

        // Shape checks the paper's prose calls out, as gated ratios.
        ctx.push(
            Measurement::scalar(
                "shape_bt_discovery_vs_periodic",
                "shape: BT on-demand (discovery) / periodic",
                Unit::Ratio,
                get_bt_discovery.mean() / get_bt_periodic.mean(),
            )
            .with_paper(53.0)
            .with_paper_tol(0.25)
            .with_note("paper ~53x: discovery dominates on-demand"),
        );
        ctx.push(
            Measurement::scalar(
                "shape_gps_vs_bt_periodic",
                "shape: GPS stream (340 B, segmented) / compact item",
                Unit::Ratio,
                get_gps.mean() / get_bt_periodic.mean(),
            )
            .with_paper(4.3)
            .with_paper_tol(0.30)
            .with_note("paper ~4.3x"),
        );
        ctx.push(
            Measurement::scalar(
                "shape_wifi_2hop_vs_1hop",
                "shape: WiFi 2-hop / 1-hop energy",
                Unit::Ratio,
                wifi2.mean() / wifi1.mean(),
            )
            .with_paper(1.87)
            .with_paper_tol(0.15)
            .with_note("paper ~1.87x"),
        );
        ctx.push(
            Measurement::scalar(
                "shape_umts_vs_bt_periodic",
                "shape: UMTS / BT periodic energy",
                Unit::Ratio,
                get_umts.mean() / get_bt_periodic.mean(),
            )
            .with_paper(142.0)
            .with_paper_tol(0.25)
            .with_note("paper ~142x: UMTS is the most expensive per item"),
        );
        ctx.check_band(
            "umts_most_expensive",
            "UMTS is the most expensive mechanism per item",
            (get_umts.mean() > get_bt_discovery.mean()
                && get_umts.mean() > wifi2.mean()
                && get_umts.mean() > get_gps.mean()) as u8 as f64,
            Some(1.0),
            Some(1.0),
            Unit::Count,
        );
    }
}
