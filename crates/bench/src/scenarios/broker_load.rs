//! `broker_load` — the federated broker fleet under city load
//! (beyond-paper; gates `crates/brokerd`).
//!
//! 10 000 devices publish attributed, lifetime-bound context into a
//! four-broker federation running on the partitioned engine
//! ([`brokerd::run_fleet`]); one broker is killed mid-run by a scripted
//! [`FaultPlan`] edge. The offered load deliberately exceeds the
//! brokers' bounded-inbox drain capacity, so the admission path sheds a
//! deterministic fraction — throughput, shed rate and fan-out latency
//! are all pure functions of the seed.
//!
//! Rows exported, mirroring `scale_city`'s two-kind scheme:
//!
//! * **Deterministic rows** (publishes, deliveries, shed ppm, federation
//!   forwards, re-homings, fan-out p50/p99, the report digest) — pinned
//!   near-exactly in `results/baseline.json` and byte-identical across
//!   engine shard counts, worker-thread counts and broker table shard
//!   counts (cross-checked in-scenario on a small fleet).
//! * **Wall-clock rows** (elapsed seconds, events per wall second, and
//!   the interner micro-benchmark) — measured through
//!   [`criterion::time_once`], order-of-magnitude bands.
//!
//! The micro-benchmark backs the `core::vocab` design note: matching
//! context types by interned [`Sym`](contory::vocab::Sym) is a single
//! `u16` compare, where the pre-interner broker matched qualified
//! vocabulary strings — the `intern_speedup` row records the measured
//! gap and `sym_compare_not_slower` asserts its direction.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use brokerd::{fault_edges, run_fleet, run_fleet_profiled, FleetConfig, NodeConfig};
use contory::vocab::Interner;
use tracekit::{assemble, Breakup, Stage};
use simkit::faults::FaultPlan;
use simkit::shard::ShardConfig;
use simkit::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};

/// Shard count `bench_all --shards N` overrides (0 ⇒ default 8).
static SHARDS: AtomicU32 = AtomicU32::new(0);

/// Overrides the engine shard count of the big fleet run
/// (`bench_all --shards N`). Outputs are shard-count-invariant; only the
/// wall-clock rows move.
pub fn set_shards(n: u32) {
    SHARDS.store(n.max(1), Ordering::SeqCst);
}

fn shards() -> u32 {
    match SHARDS.load(Ordering::SeqCst) {
        0 => 8,
        n => n,
    }
}

/// The big run's device population.
pub const FLEET_DEVICES: u64 = 10_000;
/// Brokers in the federation.
pub const FLEET_BROKERS: u16 = 4;
/// Virtual horizon of the big run.
pub const FLEET_HORIZON_SECS: u64 = 20;
/// The broker the fault plan kills, and when.
const KILLED_BROKER: &str = "broker:2";
const KILL_AT_SECS: u64 = 10;

/// Comparisons per interner micro-benchmark batch.
const CMP_BATCH: usize = 100_000;
/// Batch repetitions (total comparisons = `CMP_BATCH * CMP_ROUNDS`).
const CMP_ROUNDS: usize = 40;

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The big fleet's configuration: offered load ~4x the drain capacity of
/// the four bounded broker inboxes, so backpressure sheds deterministically.
fn big_fleet(seed: u64, shards: u32, threads: u32) -> FleetConfig {
    let mut plan = FaultPlan::new(seed);
    plan.kill_at(KILLED_BROKER, SimTime::from_secs(KILL_AT_SECS));
    FleetConfig {
        seed,
        brokers: FLEET_BROKERS,
        devices: FLEET_DEVICES,
        shards,
        threads,
        run_for: SimDuration::from_secs(FLEET_HORIZON_SECS),
        node: NodeConfig::default(),
        fault_edges: fault_edges(&plan, FLEET_BROKERS),
        ..FleetConfig::default()
    }
}

/// Interner micro-benchmark: the same match workload twice — once on
/// dense [`contory::vocab::Sym`] ids, once on the qualified vocabulary
/// strings the pre-interner broker compared. Returns
/// `(sym_secs, string_secs, sym_matches, string_matches)`.
fn intern_microbench(seed: u64) -> (f64, f64, u64, u64) {
    // Qualified names share a long prefix, as vocabulary paths do — the
    // realistic worst case for string equality, the irrelevant case for
    // a u16 compare.
    let names: Vec<String> = (0..64u64)
        .map(|i| format!("org.contory.vocab.context.ctx{i:02}"))
        .collect();
    let mut tab = Interner::new();
    let syms: Vec<_> = names.iter().map(|n| tab.intern(n)).collect();

    let mut s = seed;
    let pairs: Vec<(usize, usize)> = (0..CMP_BATCH)
        .map(|i| {
            s = mix(s ^ i as u64);
            let a = (s % 64) as usize;
            let b = ((s >> 16) % 64) as usize;
            (a, b)
        })
        .collect();

    let sym_pairs: Vec<_> = pairs
        .iter()
        .filter_map(|&(a, b)| Some((*syms.get(a)?, *syms.get(b)?)))
        .collect();
    let (sym_matches, sym_wall) = criterion::time_once(|| {
        let mut hits = 0u64;
        for _ in 0..CMP_ROUNDS {
            for &(a, b) in &sym_pairs {
                if std::hint::black_box(a) == std::hint::black_box(b) {
                    hits += 1;
                }
            }
        }
        hits
    });

    let str_pairs: Vec<(&str, &str)> = pairs
        .iter()
        .filter_map(|&(a, b)| Some((names.get(a)?.as_str(), names.get(b)?.as_str())))
        .collect();
    let (str_matches, str_wall) = criterion::time_once(|| {
        let mut hits = 0u64;
        for _ in 0..CMP_ROUNDS {
            for &(a, b) in &str_pairs {
                if std::hint::black_box(a) == std::hint::black_box(b) {
                    hits += 1;
                }
            }
        }
        hits
    });

    (
        sym_wall.as_secs_f64().max(1e-9),
        str_wall.as_secs_f64().max(1e-9),
        sym_matches,
        str_matches,
    )
}

/// The federated-broker load scenario.
pub struct BrokerLoad;

impl Scenario for BrokerLoad {
    fn name(&self) -> &'static str {
        "broker_load"
    }
    fn title(&self) -> &'static str {
        "Federated broker fleet under load (10k devices, 4 brokers, mid-run kill)"
    }
    fn paper_ref(&self) -> &'static str {
        "beyond-paper scale"
    }
    fn seed(&self) -> u64 {
        800
    }

    fn run(&self, ctx: &mut RunCtx) {
        let cfg = big_fleet(self.seed(), shards(), ShardConfig::max_threads());
        let ((out, profile), wall) = criterion::time_once(|| run_fleet_profiled(&cfg));
        let horizon = FLEET_HORIZON_SECS as f64;
        ctx.tally_events(out.events, SimTime::from_secs(FLEET_HORIZON_SECS));
        obskit::count("broker_load_published", out.published);
        obskit::count("broker_load_delivered", out.delivered);
        obskit::count("broker_load_shed", out.shed);
        obskit::count("broker_load_forwarded", out.forwarded);
        obskit::count("broker_load_rehomes", out.rehomes);
        obskit::count("broker_load_unattributed", out.unattributed);
        obskit::count("broker_load_gossip_sent", out.gossip_sent);
        obskit::count("broker_load_gossip_heard", out.gossip_heard);
        obskit::count("broker_load_trace_spans", out.trace_spans);
        obskit::gauge("broker_load_queue_peak_max", profile.max_queue_peak() as f64);
        obskit::gauge("broker_load_merge_rounds", profile.rounds as f64);

        ctx.note(format!(
            "{FLEET_DEVICES} devices on {FLEET_BROKERS} brokers, horizon {horizon} sim-s, \
             {} shards x {} threads; {KILLED_BROKER} killed at t={KILL_AT_SECS}s \
             (override shards with `bench_all --shards N`; outputs are shard-invariant)",
            cfg.shards, cfg.threads,
        ));
        ctx.note(
            "offered load intentionally exceeds the bounded-inbox drain capacity: \
             the shed rate is part of the pinned contract, not an accident",
        );

        // Deterministic rows: pure functions of the seed, pinned
        // (near-)exactly. `abs_tol 0.4` keeps the band non-degenerate for
        // the schema test while failing on any integer drift.
        ctx.push(
            Measurement::scalar("devices", "device population", Unit::Count, FLEET_DEVICES as f64)
                .with_gate_rel_tol(0.0)
                .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "published",
                "publishes offered by devices",
                Unit::Count,
                out.published as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("seed-determined; shard/thread-invariant"),
        );
        ctx.push(
            Measurement::scalar(
                "delivered",
                "context deliveries to devices",
                Unit::Count,
                out.delivered as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "delivered_per_sim_sec",
                "delivery throughput per simulated second",
                Unit::PerSec,
                out.delivered as f64 / horizon,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.5),
        );
        ctx.push(
            Measurement::scalar(
                "shed_ppm",
                "admission sheds, ppm of device-offered publishes",
                Unit::Count,
                out.shed_ppm() as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("federation forwards are re-offered and shed too, so this can exceed 1e6"),
        );
        ctx.push(
            Measurement::scalar(
                "forwarded",
                "broker-to-broker federation forwards",
                Unit::Count,
                out.forwarded as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "unattributed",
                "publishes refused for missing attribution",
                Unit::Count,
                out.unattributed as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("packet-hygiene refusals (1-in-97 devices publish unattributed)"),
        );
        ctx.push(
            Measurement::scalar(
                "rehomes",
                "publisher re-homings after the broker kill",
                Unit::Count,
                out.rehomes as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "p50_fanout_ms",
                "median publish-to-delivery fan-out latency",
                Unit::Millis,
                out.p50_fanout_us as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "p99_fanout_ms",
                "p99 publish-to-delivery fan-out latency",
                Unit::Millis,
                out.p99_fanout_us as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("includes queue wait under backpressure"),
        );
        ctx.push(
            Measurement::scalar(
                "gossip_sent",
                "load digests gossiped to federation peers",
                Unit::Count,
                out.gossip_sent as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "report_digest32",
                "fleet report digest (low 32 bits)",
                Unit::Count,
                (out.digest & 0xffff_ffff) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("byte-identity witness across shard/thread/table-shard counts"),
        );

        // Trace-measured broker delivery break-up: the sampled trace
        // stream of the big run, assembled into trees and decomposed
        // along every delivery critical path. Pure functions of the
        // seed — the trace log is partition-invariant — so the rows pin
        // near-exactly like the counters above.
        let breakup = Breakup::of(&assemble(&out.trace));
        ctx.push(
            Measurement::scalar(
                "trace_spans",
                "hop spans recorded by the sampled traces",
                Unit::Count,
                out.trace_spans as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("1-in-8 publish sampling; shard/thread-invariant"),
        );
        ctx.push(
            Measurement::scalar(
                "traced_deliveries",
                "end-to-end deliveries observed on sampled traces",
                Unit::Count,
                breakup.deliveries() as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "trace_e2e_p50_ms",
                "median traced publish-to-delivery latency",
                Unit::Millis,
                breakup.latency_quantile_us(0.50) as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "trace_e2e_p99_ms",
                "p99 traced publish-to-delivery latency",
                Unit::Millis,
                breakup.latency_quantile_us(0.99) as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "trace_dispatch_share_pm",
                "dispatch (queue wait) share of traced path time, per mille",
                Unit::Count,
                breakup.share_pm(Stage::Dispatch) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("the backpressure term of the latency break-up"),
        );
        ctx.push(
            Measurement::scalar(
                "trace_deliver_share_pm",
                "deliver (fan-out link) share of traced path time, per mille",
                Unit::Count,
                breakup.share_pm(Stage::Deliver) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.check_true(
            "traces_were_sampled",
            "the sampled trace stream observed at least one delivery",
            breakup.deliveries() > 0,
        );
        ctx.check_true(
            "trace_quantiles_ordered",
            "traced p99 latency >= traced p50 latency",
            breakup.latency_quantile_us(0.99) >= breakup.latency_quantile_us(0.50),
        );
        ctx.artifact("trace latency break-up (critical paths)", breakup.table());
        ctx.artifact("trace break-up JSON", breakup.to_json());
        ctx.artifact("engine profile (per-shard)", profile.table());
        ctx.check_true(
            "deliveries_happened",
            "the fleet delivered context end to end",
            out.delivered > 0,
        );
        ctx.check_true(
            "backpressure_engaged",
            "overload shed at least one publish",
            out.shed > 0,
        );
        ctx.check_true(
            "kill_caused_rehoming",
            "publishers re-homed off the killed broker",
            out.rehomes > 0,
        );
        ctx.check_true(
            "fanout_quantiles_ordered",
            "p99 fan-out >= p50 fan-out",
            out.p99_fanout_us >= out.p50_fanout_us,
        );

        // Wall-clock rows: host-dependent, order-of-magnitude bands.
        let wall_s = wall.as_secs_f64().max(1e-9);
        ctx.push(
            Measurement::scalar("wall_secs", "elapsed wall-clock time", Unit::Secs, wall_s)
                .with_gate_rel_tol(9.0)
                .with_gate_abs_tol(60.0)
                .with_note("host-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "events_per_wall_sec",
                "engine event throughput per wall second",
                Unit::PerSec,
                out.events as f64 / wall_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e7)
            .with_note("host-dependent; wide band"),
        );

        // Interner micro-benchmark (core::vocab): dense u16 ids vs the
        // qualified strings the pre-interner broker compared.
        let (sym_s, str_s, sym_hits, str_hits) = intern_microbench(self.seed());
        let total_cmps = (CMP_BATCH * CMP_ROUNDS) as f64;
        ctx.push(
            Measurement::scalar(
                "sym_cmp_per_sec",
                "interned Sym (u16) comparisons per wall second",
                Unit::PerSec,
                total_cmps / sym_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e10)
            .with_note("host-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "string_cmp_per_sec",
                "qualified-string comparisons per wall second",
                Unit::PerSec,
                total_cmps / str_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e10)
            .with_note("host-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "intern_speedup",
                "Sym compare speedup over string compare",
                Unit::Ratio,
                str_s / sym_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(50.0)
            .with_note("O(1) id compare vs length-dependent string equality"),
        );
        ctx.check_true(
            "intern_match_parity",
            "Sym matching and string matching agree on every pair",
            sym_hits == str_hits,
        );
        ctx.check_true(
            "sym_compare_not_slower",
            "interned compare is at least as fast as string compare",
            sym_s <= str_s,
        );

        // Tracing overhead: the same small fleet twice — every publish
        // sampled vs effectively none (1 in 2^60). Tracing is pure
        // observation, so the engine outputs must be byte-identical;
        // only the wall clock may move, and not by much.
        let mut traced_cfg = big_fleet(self.seed() ^ 0x7ace, 4, ShardConfig::max_threads());
        traced_cfg.devices = 1_000;
        traced_cfg.run_for = SimDuration::from_secs(10);
        traced_cfg.node.trace_sample_log2 = 0;
        let mut untraced_cfg = traced_cfg.clone();
        untraced_cfg.node.trace_sample_log2 = 60;
        let (traced, traced_wall) = criterion::time_once(|| run_fleet(&traced_cfg));
        let (untraced, untraced_wall) = criterion::time_once(|| run_fleet(&untraced_cfg));
        let traced_s = traced_wall.as_secs_f64().max(1e-9);
        let untraced_s = untraced_wall.as_secs_f64().max(1e-9);
        ctx.push(
            Measurement::scalar(
                "trace_overhead_ratio",
                "traced wall time over untraced wall time (full sampling)",
                Unit::Ratio,
                traced_s / untraced_s,
            )
            .with_gate_rel_tol(2.0)
            .with_gate_abs_tol(2.0)
            .with_note("host-dependent; band trips if tracing becomes a multiple of the run"),
        );
        ctx.push(
            Measurement::scalar(
                "trace_spans_per_kevent",
                "hop spans per 1000 engine events at full sampling",
                Unit::Count,
                (traced.trace_spans * 1_000 / traced.events.max(1)) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("the deterministic cost model of the tracing plane"),
        );
        ctx.check_true(
            "tracing_is_pure_observation",
            "full sampling vs none: identical engine digest and counters",
            traced.digest == untraced.digest
                && traced.delivered == untraced.delivered
                && traced.published == untraced.published
                && traced.shed == untraced.shed,
        );
        ctx.check_true(
            "sampling_bounds_span_volume",
            "full sampling records more spans than 1-in-2^60 sampling",
            traced.trace_spans > untraced.trace_spans,
        );
        ctx.tally_events(traced.events + untraced.events, SimTime::from_secs(2 * 10));

        // Partition-invariance cross-check on a small fleet, faults
        // included: 1 shard x 1 thread x 1 table shard must equal
        // 4 shards x max threads x 4 table shards byte-for-byte.
        let mut seq_cfg = big_fleet(self.seed() ^ 0xb20c, 1, 1);
        seq_cfg.devices = 300;
        seq_cfg.run_for = SimDuration::from_secs(10);
        seq_cfg.node = NodeConfig {
            table_shards: 1,
            ..NodeConfig::default()
        };
        let mut par_cfg = big_fleet(self.seed() ^ 0xb20c, 4, ShardConfig::max_threads());
        par_cfg.devices = 300;
        par_cfg.run_for = SimDuration::from_secs(10);
        par_cfg.node = NodeConfig {
            table_shards: 4,
            ..NodeConfig::default()
        };
        let seq = run_fleet(&seq_cfg);
        let par = run_fleet(&par_cfg);
        ctx.check_true(
            "partition_invariance_small_fleet",
            "300-device fleet: 1x1 engine, 1 table shard == 4x(max) engine, 4 table shards",
            seq.report() == par.report(),
        );
        ctx.tally_events(seq.events + par.events, SimTime::from_secs(2 * 10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_is_partition_invariant_with_the_scenario_fault() {
        let mut a = big_fleet(5, 1, 1);
        a.devices = 120;
        a.run_for = SimDuration::from_secs(8);
        let mut b = big_fleet(5, 4, 2);
        b.devices = 120;
        b.run_for = SimDuration::from_secs(8);
        assert_eq!(run_fleet(&a).report(), run_fleet(&b).report());
    }

    #[test]
    fn microbench_workload_is_deterministic_and_consistent() {
        let (_, _, sym_a, str_a) = intern_microbench(800);
        let (_, _, sym_b, str_b) = intern_microbench(800);
        assert_eq!(sym_a, str_a, "sym and string matching disagree");
        assert_eq!(sym_a, sym_b, "workload not deterministic");
        assert_eq!(str_a, str_b);
        assert!(sym_a > 0, "degenerate workload: no matches at all");
    }
}
