//! Regenerates the paper's in-text idle-power measurements (§6.1):
//!
//! > "When BT is turned off, back-light is switched on, and display is
//! > switched on, the average power consumption is about 76.20 mW. If the
//! > back-light is turned off, the consumption decreases to 14.35 mW. A
//! > consumption of 5.75 mW is achieved if also the display is turned
//! > off. Turning on BT in page and inquiry scan state increases the
//! > power consumption to 8.47 mW. Turning on Contory as well leads to a
//! > power consumption of 10.11 mW. … having WiFi connected at full
//! > signal (with back light on) drains a constant current of 300 mA,
//! > which leads to an average power consumption of 1190 mW … more than
//! > 100 times more energy-consuming than having BT in inquiry mode."

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use phone::{Phone, PhoneConfig, Volts};
use radio::Position;
use simkit::{Sim, SimDuration};
use testbed::{EnergyProbe, PhoneSetup, Testbed};

fn measure_mode(ctx: &mut RunCtx, configure: impl Fn(&Sim, &Phone)) -> f64 {
    let sim = Sim::new();
    let phone = Phone::new(&sim, PhoneConfig::default());
    configure(&sim, &phone);
    let probe = EnergyProbe::start(&sim, &phone);
    sim.run_for(SimDuration::from_secs(60));
    ctx.tally_sim(&sim);
    probe.mean_power().0
}

/// Idle-power in-text measurement scenario.
pub struct IdlePower;

impl Scenario for IdlePower {
    fn name(&self) -> &'static str {
        "idle_power"
    }
    fn title(&self) -> &'static str {
        "Idle operating modes (in-text measurements of §6.1)"
    }
    fn paper_ref(&self) -> &'static str {
        "§6.1 in-text"
    }
    fn seed(&self) -> u64 {
        601
    }

    fn run(&self, ctx: &mut RunCtx) {
        let full = measure_mode(ctx, |_s, p| {
            p.set_display(true);
            p.set_backlight(true);
        });
        ctx.push(
            Measurement::scalar(
                "idle_display_backlight",
                "display + back-light on, BT off",
                Unit::Milliwatts,
                full,
            )
            .with_paper(76.20)
            .with_paper_tol(0.01),
        );

        let display = measure_mode(ctx, |_s, p| p.set_display(true));
        ctx.push(
            Measurement::scalar(
                "idle_display_only",
                "display on, back-light off",
                Unit::Milliwatts,
                display,
            )
            .with_paper(14.35)
            .with_paper_tol(0.01),
        );

        let dark = measure_mode(ctx, |_s, _p| {});
        ctx.push(
            Measurement::scalar("idle_dark", "display + back-light off", Unit::Milliwatts, dark)
                .with_paper(5.75)
                .with_paper_tol(0.01),
        );

        // BT page/inquiry scan: attach a radio (discoverable by default).
        let bt_scan = {
            let tb = Testbed::with_seed(601);
            let phone = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            phone.phone().set_middleware_running(false);
            let probe = EnergyProbe::start(&tb.sim, phone.phone());
            tb.sim.run_for(SimDuration::from_secs(60));
            ctx.tally_sim(&tb.sim);
            probe.mean_power().0
        };
        ctx.push(
            Measurement::scalar("idle_bt_scan", "+ BT page/inquiry scan", Unit::Milliwatts, bt_scan)
                .with_paper(8.47)
                .with_paper_tol(0.01),
        );

        let with_contory = {
            let tb = Testbed::with_seed(602);
            let phone = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
            });
            let probe = EnergyProbe::start(&tb.sim, phone.phone());
            tb.sim.run_for(SimDuration::from_secs(60));
            ctx.tally_sim(&tb.sim);
            probe.mean_power().0
        };
        ctx.push(
            Measurement::scalar("idle_contory", "+ Contory running", Unit::Milliwatts, with_contory)
                .with_paper(10.11)
                .with_paper_tol(0.01),
        );

        // WiFi connected at full signal, back-light on.
        let wifi = {
            let tb = Testbed::with_seed(603);
            let phone = tb.add_phone(PhoneSetup::nokia9500("c", Position::new(0.0, 0.0)));
            phone.phone().set_backlight(true);
            phone.phone().set_middleware_running(false);
            tb.sim.run_for(SimDuration::from_secs(40)); // past startup in-rush
            let probe = EnergyProbe::start(&tb.sim, phone.phone());
            tb.sim.run_for(SimDuration::from_secs(60));
            ctx.tally_sim(&tb.sim);
            probe.mean_power().0
        };
        ctx.push(
            Measurement::scalar(
                "idle_wifi_connected",
                "WiFi connected, back-light on",
                Unit::Milliwatts,
                wifi,
            )
            .with_paper(1190.0)
            .with_paper_tol(0.01),
        );

        let current_ma = phone::Milliwatts(wifi).current_at(Volts(4.0965)).0;
        ctx.push(
            Measurement::scalar(
                "wifi_current_ma",
                "WiFi connected current",
                Unit::Milliamps,
                current_ma,
            )
            .with_paper(300.0)
            .with_paper_tol(0.02)
            .with_note("paper: constant ~300 mA"),
        );
        ctx.push(
            Measurement::scalar(
                "wifi_vs_bt_scan",
                "WiFi / BT-scan power ratio",
                Unit::Ratio,
                wifi / bt_scan,
            )
            .with_paper_text("> 100")
            .with_note("paper: \"more than 100 times\""),
        );
        ctx.check_band(
            "wifi_vs_bt_ratio",
            "WiFi at least 100x BT inquiry-scan power",
            wifi / bt_scan,
            Some(100.0),
            None,
            Unit::Ratio,
        );
    }
}
