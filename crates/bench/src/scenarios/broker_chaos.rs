//! `broker_chaos` — the federated broker fleet under lossy-link chaos
//! with a mid-run crash-restart (beyond-paper; gates the chaoskit layer
//! of `crates/brokerd`).
//!
//! 10 000 devices publish into a four-broker federation whose
//! broker-to-broker links are all scripted lossy: probabilistic drop,
//! duplication, bounded reorder and delivery jitter, each drawn from a
//! per-link deterministic RNG stream ([`simkit::faults::LinkChaos`]).
//! One broker is crash-restarted mid-run — it comes back with empty
//! tables and an empty dedup window — and the fleet must heal through
//! lease-renewal re-subscription and anti-entropy digest exchange.
//!
//! The scenario pins the three chaos SLOs of `DESIGN.md §5j`:
//!
//! * **idempotence** — `duplicate_deliveries` is exactly **0**: no
//!   device observes the same sequenced packet twice, despite link
//!   duplication, at-least-once forward retries and the wiped dedup
//!   window (the retry horizon is provably shorter than the crash
//!   downtime, so no pre-crash retry can land post-restart);
//! * **convergence** — `dir_converged` is exactly **1**: after the
//!   chaos window closes, every broker's directory row for every peer
//!   agrees on version and table digest;
//! * **delivery under chaos** — the fleet still delivers context end to
//!   end at a pinned rate while links drop ~6% of federation traffic.
//!
//! All counter rows are pure functions of the seed and byte-identical
//! across engine shard/thread counts (cross-checked in-scenario on a
//! small fleet, chaos included); wall rows use wide bands.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use brokerd::{
    fault_edges, link_faults, link_label, restart_edges, run_fleet, FleetConfig, NodeConfig,
};
use simkit::faults::{FaultPlan, LinkFault};
use simkit::shard::ShardConfig;
use simkit::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};
use tracekit::Stage;

/// Shard count `bench_all --shards N` overrides (0 ⇒ default 8).
static SHARDS: AtomicU32 = AtomicU32::new(0);

/// Overrides the engine shard count of the big chaos run
/// (`bench_all --shards N`). Outputs are shard-count-invariant; only
/// the wall-clock rows move.
pub fn set_shards(n: u32) {
    SHARDS.store(n.max(1), Ordering::SeqCst);
}

fn shards() -> u32 {
    match SHARDS.load(Ordering::SeqCst) {
        0 => 8,
        n => n,
    }
}

/// The big run's device population.
pub const FLEET_DEVICES: u64 = 10_000;
/// Brokers in the federation.
pub const FLEET_BROKERS: u16 = 4;
/// Virtual horizon of the big run.
pub const FLEET_HORIZON_SECS: u64 = 30;
/// The broker the fault plan crash-restarts, and its outage window.
const CRASHED_BROKER: &str = "broker:1";
const CRASH_AT_SECS: u64 = 6;
/// Downtime must exceed the forward-retry horizon (~2.25 s at the
/// default 150 ms timeout × 4 attempts) so a pre-crash retry can never
/// land on the post-restart broker's empty dedup window.
const CRASH_DOWN_SECS: u64 = 5;
/// Chaos stops here; the remaining 15 s (3 gossip periods) is the heal
/// window the convergence SLO is measured over.
const CHAOS_UNTIL_SECS: u64 = 15;

/// The scripted per-link fault: ~6% drop, 5% duplication, 4% reorder,
/// bounded 60 ms reorder delay, up to 20 ms jitter on every copy.
const LINK_FAULT: LinkFault = LinkFault {
    drop_ppm: 60_000,
    dup_ppm: 50_000,
    reorder_ppm: 40_000,
    reorder_delay: SimDuration::from_millis(60),
    jitter: SimDuration::from_millis(20),
};

/// The chaos fleet: every directed federation link lossy, one broker
/// crash-restarted mid-run, leases short enough that renewal traffic
/// flows through the chaos window.
fn chaos_fleet(seed: u64, shards: u32, threads: u32) -> FleetConfig {
    let mut plan = FaultPlan::new(seed);
    for a in 0..FLEET_BROKERS {
        for b in 0..FLEET_BROKERS {
            if a != b {
                plan.lossy_link(&link_label(a, b), LINK_FAULT);
            }
        }
    }
    plan.crash_restart(
        CRASHED_BROKER,
        SimTime::from_secs(CRASH_AT_SECS),
        SimDuration::from_secs(CRASH_DOWN_SECS),
    );
    let mut cfg = FleetConfig {
        seed,
        brokers: FLEET_BROKERS,
        devices: FLEET_DEVICES,
        shards,
        threads,
        run_for: SimDuration::from_secs(FLEET_HORIZON_SECS),
        node: NodeConfig::default(),
        ..FleetConfig::default()
    };
    cfg.node.fwd_attempts = 4;
    cfg.fault_edges = fault_edges(&plan, FLEET_BROKERS);
    cfg.restarts = restart_edges(&plan, FLEET_BROKERS);
    cfg.link_faults = link_faults(&plan, FLEET_BROKERS);
    cfg.chaos_until = Some(SimTime::from_secs(CHAOS_UNTIL_SECS));
    cfg.sub_lease = Some(SimDuration::from_secs(12));
    cfg.resub_every = Some(SimDuration::from_secs(5));
    cfg
}

/// The lossy-link / crash-recovery chaos scenario.
pub struct BrokerChaos;

impl Scenario for BrokerChaos {
    fn name(&self) -> &'static str {
        "broker_chaos"
    }
    fn title(&self) -> &'static str {
        "Broker federation under lossy-link chaos with a mid-run crash-restart"
    }
    fn paper_ref(&self) -> &'static str {
        "beyond-paper robustness"
    }
    fn seed(&self) -> u64 {
        900
    }

    fn run(&self, ctx: &mut RunCtx) {
        let cfg = chaos_fleet(self.seed(), shards(), ShardConfig::max_threads());
        let (out, wall) = criterion::time_once(|| run_fleet(&cfg));
        let horizon = FLEET_HORIZON_SECS as f64;
        ctx.tally_events(out.events, SimTime::from_secs(FLEET_HORIZON_SECS));
        obskit::count("broker_chaos_published", out.published);
        obskit::count("broker_chaos_delivered", out.delivered);
        obskit::count("broker_chaos_dropped", out.packets_dropped);
        obskit::count("broker_chaos_duped", out.packets_duped);
        obskit::count("broker_chaos_reordered", out.packets_reordered);
        obskit::count("broker_chaos_retries", out.retries);
        obskit::count("broker_chaos_retry_exhausted", out.retry_exhausted);
        obskit::count("broker_chaos_dedup_suppressed", out.dedup_suppressed);
        obskit::count("broker_chaos_resubscriptions", out.resubscriptions);
        obskit::count("broker_chaos_anti_entropy", out.anti_entropy_rounds);
        obskit::count("broker_chaos_duplicate_deliveries", out.duplicate_deliveries);

        ctx.note(format!(
            "{FLEET_DEVICES} devices on {FLEET_BROKERS} brokers, horizon {horizon} sim-s, \
             {} shards x {} threads; every federation link lossy \
             (drop {} ppm, dup {} ppm, reorder {} ppm) until t={CHAOS_UNTIL_SECS}s; \
             {CRASHED_BROKER} crash-restarted at t={CRASH_AT_SECS}s for {CRASH_DOWN_SECS}s",
            cfg.shards, cfg.threads, LINK_FAULT.drop_ppm, LINK_FAULT.dup_ppm,
            LINK_FAULT.reorder_ppm,
        ));
        ctx.note(
            "SLOs: duplicate_deliveries pinned exactly 0 (idempotence), dir_converged \
             pinned exactly 1 (post-heal anti-entropy convergence); the crash downtime \
             exceeds the forward-retry horizon by design — see DESIGN.md §5j",
        );

        // Deterministic rows: pure functions of the seed, pinned
        // (near-)exactly, byte-identical across partitionings.
        ctx.push(
            Measurement::scalar("devices", "device population", Unit::Count, FLEET_DEVICES as f64)
                .with_gate_rel_tol(0.0)
                .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "published",
                "publishes offered by devices",
                Unit::Count,
                out.published as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("seed-determined; shard/thread-invariant"),
        );
        ctx.push(
            Measurement::scalar(
                "delivered",
                "context deliveries to devices",
                Unit::Count,
                out.delivered as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("the delivery-under-chaos SLO row"),
        );
        ctx.push(
            Measurement::scalar(
                "delivered_per_sim_sec",
                "delivery throughput per simulated second, chaos included",
                Unit::PerSec,
                out.delivered as f64 / horizon,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.5),
        );
        ctx.push(
            Measurement::scalar(
                "link_dropped",
                "federation sends eaten by scripted link loss",
                Unit::Count,
                out.packets_dropped as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "link_duplicated",
                "federation sends duplicated by the scripted links",
                Unit::Count,
                out.packets_duped as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "link_reordered",
                "federation sends deferred past a later send",
                Unit::Count,
                out.packets_reordered as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "retries",
                "federation forward re-sends after a missing ack",
                Unit::Count,
                out.retries as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "retry_exhausted",
                "tracked forwards that ran out of attempts",
                Unit::Count,
                out.retry_exhausted as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "dedup_suppressed",
                "duplicate publishes suppressed by broker dedup windows",
                Unit::Count,
                out.dedup_suppressed as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("each is positively acked, so at-least-once senders stop"),
        );
        ctx.push(
            Measurement::scalar(
                "resubscriptions",
                "lease renewals absorbed by brokers",
                Unit::Count,
                out.resubscriptions as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "anti_entropy_rounds",
                "gossip digests that changed a broker's directory view",
                Unit::Count,
                out.anti_entropy_rounds as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "duplicate_deliveries",
                "device-witnessed duplicate deliveries (the idempotence SLO)",
                Unit::Count,
                out.duplicate_deliveries as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("pinned exactly 0: at-least-once transport, exactly-once delivery"),
        );
        ctx.push(
            Measurement::scalar(
                "restarts",
                "broker crash-restarts executed by the fault plan",
                Unit::Count,
                out.restarts as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "dir_converged",
                "post-heal directory convergence (1 = all views agree)",
                Unit::Count,
                f64::from(u8::from(out.dir_converged)),
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("every broker's row for every peer agrees on version and digest"),
        );
        ctx.push(
            Measurement::scalar(
                "p50_fanout_ms",
                "median publish-to-delivery fan-out latency under chaos",
                Unit::Millis,
                out.p50_fanout_us as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "p99_fanout_ms",
                "p99 publish-to-delivery fan-out latency under chaos",
                Unit::Millis,
                out.p99_fanout_us as f64 / 1_000.0,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("includes retry backoff and scripted link jitter"),
        );
        ctx.push(
            Measurement::scalar(
                "report_digest32",
                "fleet report digest (low 32 bits)",
                Unit::Count,
                (out.digest & 0xffff_ffff) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4)
            .with_note("byte-identity witness across shard/thread counts"),
        );

        // The chaos-path trace spans: retries, duplicate suppressions
        // and the crash recovery all leave hop spans on sampled traces.
        let stage_count = |stage: Stage| -> u64 {
            out.trace.events().iter().filter(|e| e.stage == stage).count() as u64
        };
        ctx.push(
            Measurement::scalar(
                "trace_retry_spans",
                "Retry hop spans on sampled traces",
                Unit::Count,
                stage_count(Stage::Retry) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "trace_dup_suppress_spans",
                "DupSuppress hop spans on sampled traces",
                Unit::Count,
                stage_count(Stage::DupSuppress) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );
        ctx.push(
            Measurement::scalar(
                "trace_recover_spans",
                "Recover spans emitted by broker restarts",
                Unit::Count,
                stage_count(Stage::Recover) as f64,
            )
            .with_gate_rel_tol(0.0)
            .with_gate_abs_tol(0.4),
        );

        // The SLO assertions themselves — these, not the pinned rows,
        // are what a chaos regression trips first.
        ctx.check_true(
            "zero_duplicate_deliveries",
            "no device observed the same sequenced packet twice",
            out.duplicate_deliveries == 0,
        );
        ctx.check_true(
            "post_heal_convergence",
            "broker directories converged after the chaos window closed",
            out.dir_converged,
        );
        ctx.check_true(
            "delivery_slo_held",
            "the fleet delivered at least half a delivery per device despite chaos",
            out.delivered >= FLEET_DEVICES / 2,
        );
        ctx.check_true(
            "chaos_engaged",
            "the scripted links dropped, duplicated and reordered traffic",
            out.packets_dropped > 0 && out.packets_duped > 0 && out.packets_reordered > 0,
        );
        ctx.check_true(
            "retries_recovered_losses",
            "lost forwards were retried and duplicates were suppressed",
            out.retries > 0 && out.dedup_suppressed > 0,
        );
        ctx.check_true(
            "crash_restart_executed",
            "exactly one broker crash-restart ran",
            out.restarts == 1,
        );
        ctx.check_true(
            "leases_renewed",
            "devices renewed subscription leases through the chaos window",
            out.resubscriptions > 0,
        );
        ctx.check_true(
            "chaos_spans_traced",
            "sampled traces recorded retry, dup-suppress and recover hops",
            stage_count(Stage::Retry) > 0
                && stage_count(Stage::DupSuppress) > 0
                && stage_count(Stage::Recover) > 0,
        );
        ctx.check_true(
            "fanout_quantiles_ordered",
            "p99 fan-out >= p50 fan-out",
            out.p99_fanout_us >= out.p50_fanout_us,
        );

        // Wall-clock rows: host-dependent, order-of-magnitude bands.
        let wall_s = wall.as_secs_f64().max(1e-9);
        ctx.push(
            Measurement::scalar("wall_secs", "elapsed wall-clock time", Unit::Secs, wall_s)
                .with_gate_rel_tol(9.0)
                .with_gate_abs_tol(60.0)
                .with_note("host-dependent; wide band"),
        );
        ctx.push(
            Measurement::scalar(
                "events_per_wall_sec",
                "engine event throughput per wall second",
                Unit::PerSec,
                out.events as f64 / wall_s,
            )
            .with_gate_rel_tol(9.0)
            .with_gate_abs_tol(1e7)
            .with_note("host-dependent; wide band"),
        );

        // Partition-invariance cross-check on a small fleet with the
        // full chaos config: 1 shard x 1 thread must equal 4 shards x
        // max threads byte-for-byte, transcripts included.
        let mut seq_cfg = chaos_fleet(self.seed() ^ 0xc0a5, 1, 1);
        seq_cfg.devices = 300;
        let mut par_cfg = chaos_fleet(self.seed() ^ 0xc0a5, 4, ShardConfig::max_threads());
        par_cfg.devices = 300;
        let seq = run_fleet(&seq_cfg);
        let par = run_fleet(&par_cfg);
        ctx.check_true(
            "partition_invariance_under_chaos",
            "300-device chaos fleet: 1x1 engine == 4x(max) engine, byte for byte",
            seq.report() == par.report() && seq.trace_digest == par.trace_digest,
        );
        ctx.tally_events(
            seq.events + par.events,
            SimTime::from_secs(2 * FLEET_HORIZON_SECS),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_chaos_fleet_is_partition_invariant() {
        let mut a = chaos_fleet(7, 1, 1);
        a.devices = 120;
        let mut b = chaos_fleet(7, 4, 2);
        b.devices = 120;
        let ra = run_fleet(&a);
        let rb = run_fleet(&b);
        assert_eq!(ra.report(), rb.report());
        assert_eq!(ra.trace_digest, rb.trace_digest);
    }

    #[test]
    fn tiny_chaos_fleet_meets_the_slos() {
        let mut cfg = chaos_fleet(7, 2, 2);
        cfg.devices = 200;
        let out = run_fleet(&cfg);
        assert_eq!(out.duplicate_deliveries, 0, "idempotence SLO broken");
        assert!(out.dir_converged, "convergence SLO broken");
        assert_eq!(out.restarts, 1);
        assert!(out.packets_dropped > 0 && out.packets_duped > 0);
        assert!(out.retries > 0, "chaos never forced a retry");
    }
}
