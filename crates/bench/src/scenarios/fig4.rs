//! Regenerates **Fig. 4** of the paper: power consumption of extInfra
//! provisioning — "a test in which 5 queries were sent to the
//! infrastructure over UMTS, every 3 min".
//!
//! Expected shape: ~1000 mW peaks when each query opens the UMTS
//! connection, long DCH/FACH decay tails after each transfer, and GSM
//! paging spikes of 450–481 mW every 50–60 s in between.

use benchkit::{Measurement, RunCtx, Scenario, Unit};
use contory::refs::{CellReference, InfraSpec};
use radio::Position;
use sensors::EnvField;
use simkit::SimDuration;
use std::cell::Cell;
use std::rc::Rc;
use testbed::{PhoneSetup, Testbed};

/// Fig. 4 scenario.
pub struct Fig4PowerTrace;

impl Scenario for Fig4PowerTrace {
    fn name(&self) -> &'static str {
        "fig4_power_trace"
    }
    fn title(&self) -> &'static str {
        "Fig. 4: power consumption for extInfra provisioning"
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 4"
    }
    fn seed(&self) -> u64 {
        401
    }

    fn run(&self, ctx: &mut RunCtx) {
        ctx.note("5 on-demand queries over UMTS, one every 3 minutes; GSM radio on".to_string());

        let tb = Testbed::with_seed(401);
        tb.add_weather_station(
            "station",
            Position::new(10_000.0, 0.0),
            &[EnvField::TemperatureC],
            SimDuration::from_secs(30),
        );
        tb.sim.run_for(SimDuration::from_secs(60));
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let cell = phone.cell_reference();
        let t0 = tb.sim.now();

        // 5 queries, one every 3 minutes (first at t0 + 60 s).
        let completed = Rc::new(Cell::new(0u32));
        for k in 0..5u64 {
            let cell = cell.clone();
            let completed = completed.clone();
            tb.sim.schedule_at(t0 + SimDuration::from_secs(60 + 180 * k), move || {
                let spec = InfraSpec {
                    cxt_type: "temperature".into(),
                    max_items: 1,
                    ..Default::default()
                };
                let completed = completed.clone();
                cell.fetch(&spec, Box::new(move |res| {
                    assert!(!res.expect("fetch ok").is_empty());
                    completed.set(completed.get() + 1);
                }));
            });
        }
        tb.sim.run_for(SimDuration::from_secs(15 * 60));
        ctx.check_band(
            "queries_completed",
            "all five queries answered",
            completed.get() as f64,
            Some(5.0),
            Some(5.0),
            Unit::Count,
        );

        let trace = phone.phone().power().trace_snapshot();
        let t_end = tb.sim.now();
        ctx.artifact(
            "power trace (ASCII)",
            trace.ascii_plot(t0, t_end, 110, 16),
        );

        // Quantitative shape checks.
        let peak = trace.max_value().unwrap_or(0.0);
        ctx.push(
            Measurement::scalar("peak_power_mw", "peak power", Unit::Milliwatts, peak)
                .with_paper(1000.0)
                .with_paper_tol(0.10)
                .with_note("paper: ~1000 mW when the connection opens"),
        );
        let samples = trace.resample(t0, t_end, SimDuration::from_millis(500));
        let paging = samples
            .iter()
            .filter(|(_, v)| (440.0..500.0).contains(v))
            .count();
        ctx.push(
            Measurement::scalar(
                "paging_band_samples",
                "paging-band samples (440..500 mW)",
                Unit::Count,
                paging as f64,
            )
            .with_note("450-481 mW spikes every 50-60 s between queries"),
        );
        ctx.check_band(
            "paging_spikes_present",
            "GSM paging spikes visible between queries",
            paging as f64,
            Some(1.0),
            None,
            Unit::Count,
        );
        let mean = trace.mean_between(t0, t_end);
        let energy_j = trace.integrate(t0, t_end) / 1_000.0;
        ctx.push(
            Measurement::scalar("mean_power_mw", "mean power over the 15 min test", Unit::Milliwatts, mean),
        );
        ctx.push(
            Measurement::scalar("total_energy_j", "total energy over the test", Unit::Joules, energy_j),
        );
        ctx.push(
            Measurement::scalar(
                "energy_per_query_j",
                "energy per query incl. idle floor",
                Unit::JoulesPerItem,
                energy_j / 5.0,
            ),
        );
        // Count distinct high-power episodes (the five query peaks).
        let mut episodes = 0u32;
        let mut above = false;
        for (_, v) in &samples {
            if *v > 900.0 && !above {
                episodes += 1;
                above = true;
            } else if *v < 600.0 {
                above = false;
            }
        }
        ctx.push(
            Measurement::scalar(
                "high_power_episodes",
                "distinct high-power episodes",
                Unit::Count,
                episodes as f64,
            )
            .with_paper(5.0)
            .with_note("paper: 5 — one per query"),
        );
        ctx.check_band(
            "high_power_episodes_band",
            "one high-power episode per query",
            episodes as f64,
            Some(5.0),
            Some(5.0),
            Unit::Count,
        );
        ctx.tally_sim(&tb.sim);
    }
}
