//! Thin wrapper: runs the Fig. 5 failover regenerator
//! ([`contory_bench::scenarios::fig5`]) through the benchkit harness and
//! prints its report. `scripts/verify.sh` runs this binary; the recovery
//! SLOs are benchkit tolerance-band checks, so a violated band fails the
//! process.

use contory_bench::scenarios::fig5::Fig5Failover;

fn main() {
    let (report, text) = contory_bench::run_and_render(&Fig5Failover);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
