//! Regenerates **Fig. 5** of the paper: Contory's behaviour in the
//! presence of a BT-GPS failure.
//!
//! Timeline per the paper: the phone retrieves location from a BT-GPS;
//! "after 155 sec, we caused a GPS failure by manually switching off the
//! GPS device. As a reaction, Contory switches from sensor-based
//! provisioning to ad hoc provisioning and starts collecting location
//! data from a neighboring device. Later on, the GPS device becomes
//! available again … Contory switches back to sensor-based provisioning.
//! The cost in terms of power consumption of the switches is due mostly
//! to the BT device discovery."

use contory::{CollectingClient, CxtItem, CxtValue, Mechanism, Trust};
use radio::Position;
use simkit::{FaultPlan, SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    println!("Fig. 5 reproduction — Contory behaviour under a BT-GPS failure\n");
    // Observability: collect metrics + spans for the whole scenario.
    let obs = obskit::Obs::new();
    let _obs_guard = obs.install();
    let tb = Testbed::with_seed(501);
    let phone = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
    });
    let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
    let neighbor = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("neighbor", Position::new(6.0, 0.0))
    });
    neighbor.factory().register_cxt_server("app");
    {
        let factory = neighbor.factory().clone();
        let world = tb.world.clone();
        let node = neighbor.node();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
            let p = world.position_of(node).unwrap();
            let _ = factory.publish_cxt_item(
                CxtItem::new("location", CxtValue::Position { x: p.x, y: p.y }, sim.now())
                    .with_accuracy(30.0)
                    .with_trust(Trust::Community),
                None,
            );
            true
        });
    }

    // Resource gauges sampled on sim ticks for the metrics snapshot.
    phone
        .factory()
        .monitor()
        .start_sampling(&tb.sim, SimDuration::from_secs(10));

    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            client.clone(),
        )
        .unwrap();

    // Record the mechanism timeline while the scenario plays out.
    let timeline: Rc<RefCell<Vec<(SimTime, Option<Mechanism>)>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let timeline = timeline.clone();
        let factory = phone.factory().clone();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(1), move || {
            timeline.borrow_mut().push((sim.now(), factory.mechanism_of(id)));
            true
        });
    }

    // Scripted fault: the GPS puck is dark between t = 155 s and
    // t = 330 s (the paper's "manually switching off the GPS device"),
    // driven through the deterministic fault-injection subsystem.
    let mut plan = FaultPlan::new(501);
    plan.down_between("gps", SimTime::from_secs(155), SimTime::from_secs(330));
    let injector = tb.install_faults(&plan);
    {
        let gps2 = gps.clone();
        injector.register("gps", move |up| gps2.set_powered(up));
    }
    tb.sim.run_until(SimTime::from_secs(520));

    // Power trace.
    let trace = phone.phone().power().trace_snapshot();
    println!(
        "{}",
        trace.ascii_plot(SimTime::ZERO, SimTime::from_secs(520), 110, 14)
    );

    // Mechanism timeline: print the switches.
    println!("provisioning timeline:");
    let mut last: Option<Mechanism> = None;
    let mut switch_times: Vec<(SimTime, Option<Mechanism>)> = Vec::new();
    for (t, m) in timeline.borrow().iter() {
        if *m != last {
            println!("  t={:>7}  ->  {}", t.to_string(), match m {
                Some(m) => m.to_string(),
                None => "(none)".to_owned(),
            });
            switch_times.push((*t, *m));
            last = *m;
        }
    }

    // Checks.
    let to_adhoc = switch_times
        .iter()
        .find(|(_, m)| *m == Some(Mechanism::AdHocBt))
        .expect("switched to ad hoc provisioning");
    let back = switch_times
        .iter()
        .rev()
        .find(|(_, m)| *m == Some(Mechanism::IntSensor))
        .expect("switched back to the GPS");
    println!("\nGPS off at t=155 s; switch to ad hoc at t={} (paper: shortly after 155 s)", to_adhoc.0);
    println!("GPS on  at t=330 s; switch back at t={}", back.0);
    assert!(to_adhoc.0 >= SimTime::from_secs(155) && to_adhoc.0 < SimTime::from_secs(200));
    assert!(back.0 > SimTime::from_secs(330));

    // Switch cost: mean extra power during the two switch windows (the
    // paper attributes 163-292 mW to BT device discovery).
    for (label, from) in [("failover", to_adhoc.0), ("recovery", back.0 - SimDuration::from_secs(45))] {
        let to = from + SimDuration::from_secs(20);
        let mean = trace.mean_between(from, to);
        println!("mean power around the {label} switch: {mean:.0} mW (discovery-driven; paper: 163-292 mW band)");
    }
    let items = client.items_for(id);
    println!("\nlocation items delivered across the whole run: {}", items.len());
    assert!(items.len() > 50, "provisioning kept flowing throughout");

    // Recovery SLOs from the middleware's own failover accounting
    // (surfaced through the ResourcesMonitor).
    let report = phone.factory().monitor().failover_report(tb.sim.now());
    println!("\n{report}");
    let row = report.get(id).expect("query tracked");
    assert!(row.failures >= 1, "GPS outage detected");
    assert!(
        row.mechanisms_tried.contains(&Mechanism::AdHocBt),
        "ad hoc provisioning in the failover trail"
    );
    assert!(
        row.gap_max <= SimDuration::from_secs(45),
        "provisioning gap {:.1}s exceeds the 45 s SLO",
        row.gap_max.as_secs_f64()
    );
    println!(
        "failover SLO: longest provisioning gap {:.1}s (<= 45 s), ~{} periodic items lost, \
         {} fault transitions applied",
        row.gap_max.as_secs_f64(),
        row.items_lost_estimate,
        injector.transitions_applied(),
    );

    // Metrics snapshot alongside the FailoverReport: the same scenario
    // seen through the obskit registry (counters, gauges, histograms).
    println!("\nmetrics snapshot (obskit):");
    println!("{}", obs.metrics_snapshot());
    let failover_spans = obs
        .spans()
        .iter()
        .filter(|s| s.phase == obskit::Phase::Failover && s.end.is_some())
        .count();
    println!(
        "span log: {} spans total, {} closed blackout (failover) spans",
        obs.span_count(),
        failover_spans
    );
    assert!(
        obs.counter("factory_mechanism_switches") >= 1,
        "obskit saw the failover switch to ad hoc"
    );
    assert!(
        obs.counter("factory_recoveries") >= 1,
        "obskit saw the recovery switch back to the GPS"
    );
    assert!(failover_spans >= 1, "blackout span recorded for the GPS outage");
}
