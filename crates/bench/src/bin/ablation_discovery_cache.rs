//! Thin wrapper: runs the BT discovery-cache ablation
//! ([`contory_bench::scenarios::ablation_cache`]) through the benchkit
//! harness and prints its report.

use contory_bench::scenarios::ablation_cache::AblationDiscoveryCache;

fn main() {
    let (report, text) = contory_bench::run_and_render(&AblationDiscoveryCache);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
