//! Ablation: **peer/discovery caching** (DESIGN.md §5).
//!
//! The paper notes that BT on-demand cost is dominated by the ~13 s
//! device-discovery phase, and that "in some cases a list of pre-known
//! devices is used". This ablation quantifies what the cached
//! neighbourhood buys: latency and energy of an ad hoc BT round with a
//! cold cache (full inquiry + SDP each time) versus a warm cache.

use contory::refs::{AdHocSpec, BtReference};
use contory::{CxtItem, CxtValue};
use contory_bench::{fmt_joules, fmt_ms, print_table, Row};
use radio::Position;
use simkit::stats::Summary;
use simkit::SimDuration;
use testbed::{EnergyProbe, PhoneSetup, Testbed};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    println!("Ablation — BT discovery cache (pre-known devices)");
    let tb = Testbed::with_seed(801);
    let requester = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
    });
    let provider = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
    });
    provider.factory().register_cxt_server("bench");
    provider
        .factory()
        .publish_cxt_item(
            CxtItem::new("temperature", CxtValue::quantity(14.0, "C"), tb.sim.now())
                .with_accuracy(0.2),
            None,
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    let bt = requester.bt_reference();

    let run = |cold: bool| -> (Summary, Summary) {
        let mut lat = Summary::new();
        let mut energy = Summary::new();
        for _ in 0..8 {
            if cold {
                bt.forget_peers();
                tb.sim.run_for(SimDuration::from_secs(5));
            }
            let probe = EnergyProbe::start(&tb.sim, requester.phone());
            let t0 = tb.sim.now();
            let done = Rc::new(Cell::new(false));
            let d = done.clone();
            bt.adhoc_round(&AdHocSpec::one_hop("temperature"), Box::new(move |res| {
                assert!(!res.expect("round ok").is_empty());
                d.set(true);
            }));
            testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
            lat.push((tb.sim.now() - t0).as_millis_f64());
            tb.sim.run_for(SimDuration::from_secs(5));
            energy.push(
                probe
                    .above_baseline(phone::Milliwatts(5.75 + 2.72 + 1.64 + 6.0))
                    .as_joules(),
            );
        }
        (lat, energy)
    };

    let (cold_lat, cold_energy) = run(true);
    // Warm once, then measure.
    {
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        bt.adhoc_round(&AdHocSpec::one_hop("temperature"), Box::new(move |_res| d.set(true)));
        testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
    }
    let (warm_lat, warm_energy) = run(false);

    let rows = vec![
        Row::new("latency (ms)", fmt_ms(&warm_lat), fmt_ms(&cold_lat), "warm vs cold"),
        Row::new(
            "energy per round (J)",
            fmt_joules(&warm_energy),
            fmt_joules(&cold_energy),
            "warm vs cold",
        ),
    ];
    print_table("warm cache (measured) vs cold cache (paper column)", "", &rows);
    println!(
        "\ncache speedup: {:.0}x latency, {:.0}x energy",
        cold_lat.mean() / warm_lat.mean(),
        cold_energy.mean() / warm_energy.mean()
    );
    println!(
        "(the paper's Table 2 shows the same split: 5.27 J with discovery vs 0.099 J without)"
    );
    assert!(cold_lat.mean() > 10_000.0, "cold rounds pay the ~13 s inquiry");
    assert!(warm_lat.mean() < 100.0, "warm rounds are two orders faster");
}
