//! Thin wrapper: runs the §6.1 Smart Messages break-up regenerator
//! ([`contory_bench::scenarios::sm_breakup`]) through the benchkit
//! harness and prints its report. `scripts/verify.sh` runs this binary as
//! the obs gate; the span-measured phase-share bands are benchkit
//! tolerance-band checks, so a violated band fails the process.

use contory_bench::scenarios::sm_breakup::SmBreakup;

fn main() {
    let (report, text) = contory_bench::run_and_render(&SmBreakup);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
