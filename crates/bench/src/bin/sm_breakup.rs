//! Regenerates the paper's in-text Smart Messages analysis (§6.1):
//!
//! - the latency break-up of SM retrievals: "connection establishment
//!   accounts for 4-5% of the total latency time, serialization for
//!   26-33%, thread switching for 12-14%, and transfer time for 51-54%.
//!   The SM overhead is negligible."
//! - "BT device discovery takes approximately 13 sec and BT service
//!   discovery takes approximately 1.12 sec."
//! - "The additional time required to build the route is approximately
//!   twice the corresponding latency value in the table."

use phone::{Phone, PhoneConfig, PhoneModel};
use radio::bt::{BtMedium, BtParams};
use radio::wifi::{WifiMedium, WifiParams};
use radio::{Position, World};
use simkit::stats::Summary;
use simkit::{Sim, SimDuration, SimTime};
use smartmsg::finder::{Finder, FinderResult, FinderSpec};
use smartmsg::{SmNode, SmOutcome, SmParams, SmPlatform, Tag, TagValue};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    println!("Smart Messages / Bluetooth break-up reproduction (§6.1 in-text)\n");

    // ---- component shares, from the platform's own cost model ----
    let p = SmParams::default();
    let wifi = WifiParams::default();
    let wire = p.control_state_size + 205; // control state + query, code cached
    let per_connect = p.connect.as_secs_f64();
    let per_serialize =
        p.serialize_base.as_secs_f64() + p.serialize_per_byte.as_secs_f64() * wire as f64;
    let per_transfer = p.transfer_base.as_secs_f64() + wifi.transfer_time(wire).as_secs_f64();
    let per_thread = p.thread_switch.as_secs_f64();
    let issuer = p.issuer_serialize.as_secs_f64() + p.issuer_thread.as_secs_f64();
    let total = issuer + 2.0 * (per_connect + per_serialize + per_transfer + per_thread);
    println!("one-hop retrieval component shares (paper ranges in parens):");
    println!(
        "  connection establishment: {:>4.1}%   (4-5%)",
        100.0 * 2.0 * per_connect / total
    );
    println!(
        "  serialization:            {:>4.1}%   (26-33%)",
        100.0 * (p.issuer_serialize.as_secs_f64() + 2.0 * per_serialize) / total
    );
    println!(
        "  thread switching:         {:>4.1}%   (12-14%)",
        100.0 * (p.issuer_thread.as_secs_f64() + 2.0 * per_thread) / total
    );
    println!(
        "  transfer time:            {:>4.1}%   (51-54%)",
        100.0 * 2.0 * per_transfer / total
    );
    println!("  total one-hop retrieval:  {:.0} ms  (table: 761 ms)\n", total * 1e3);

    // ---- BT discovery durations, measured ----
    let (inq, sdp) = {
        let sim = Sim::new();
        let world = World::new(&sim);
        let medium = BtMedium::new(&sim, &world, BtParams::default());
        let a = world.add_node(Position::new(0.0, 0.0));
        let b = world.add_node(Position::new(5.0, 0.0));
        let pa = Phone::new(&sim, PhoneConfig::default());
        let pb = Phone::new(&sim, PhoneConfig::default());
        let ra = medium.attach(a, &pa, 1);
        let _rb = medium.attach(b, &pb, 2);
        let mut inq = Summary::new();
        let mut sdp = Summary::new();
        for _ in 0..10 {
            let t0 = sim.now();
            let done = Rc::new(std::cell::Cell::new(false));
            let d = done.clone();
            ra.inquiry(move |res| {
                assert_eq!(res.unwrap().len(), 1);
                d.set(true);
            });
            testbed::run_until_flag(&sim, &done, SimDuration::from_secs(30));
            inq.push((sim.now() - t0).as_secs_f64());
            let t1 = sim.now();
            let done = Rc::new(std::cell::Cell::new(false));
            let d = done.clone();
            ra.sdp_query(b, move |res| {
                res.unwrap();
                d.set(true);
            });
            testbed::run_until_flag(&sim, &done, SimDuration::from_secs(30));
            sdp.push((sim.now() - t1).as_secs_f64());
        }
        (inq, sdp)
    };
    println!("BT device discovery:  {:.2} s [{:.2}]  (paper: ~13 s)", inq.mean(), inq.ci90_half());
    println!("BT service discovery: {:.2} s [{:.2}]  (paper: ~1.12 s)\n", sdp.mean(), sdp.ci90_half());

    // ---- route build vs routed retrieval, measured on a branchy net ----
    let (cold, warm) = {
        let sim = Sim::new();
        let world = World::new(&sim);
        let wifi_medium = WifiMedium::new(&sim, &world, WifiParams::default());
        let platform = SmPlatform::new(&sim, SmParams::default());
        let mk = |x: f64, y: f64, seed: u64| -> SmNode {
            let id = world.add_node(Position::new(x, y));
            let phone = Phone::new(
                &sim,
                PhoneConfig {
                    model: PhoneModel::Nokia9500,
                    ..PhoneConfig::default()
                },
            );
            let radio = wifi_medium.attach(id, &phone, seed);
            radio.power_on(|| {});
            platform.install(&radio, &phone, seed + 100)
        };
        // issuer with a decoy branch (explored first on the cold query)
        let issuer = mk(0.0, 0.0, 1);
        let _decoy1 = mk(-80.0, 0.0, 2);
        let _decoy2 = mk(-160.0, 0.0, 3);
        let _relay = mk(80.0, 0.0, 4);
        let provider = mk(160.0, 0.0, 5);
        sim.run_for(SimDuration::from_secs(40));
        provider.publish_tag_now(Tag::new(
            "temperature",
            TagValue::with_data("14.0C", Rc::new(14.0f64), 136),
            sim.now(),
        ));
        let run = |issuer: &SmNode| -> SimDuration {
            let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
            let o = out.clone();
            let t0 = sim.now();
            issuer.inject(
                Box::new(Finder::new(FinderSpec::first_match("temperature", 3))),
                SimDuration::from_secs(120),
                move |outcome| *o.borrow_mut() = Some(outcome),
            );
            while out.borrow().is_none() {
                assert!(sim.step());
            }
            let results = out
                .borrow()
                .as_ref()
                .unwrap()
                .completed_as::<Vec<FinderResult>>()
                .expect("completed");
            assert_eq!(results.len(), 1);
            sim.now() - t0
        };
        let cold = run(&issuer);
        sim.run_for(SimDuration::from_secs(5));
        let warm = run(&issuer);
        (cold, warm)
    };
    println!("cold retrieval (route build): {:.0} ms", cold.as_millis_f64());
    println!("warm retrieval (routed):      {:.0} ms", warm.as_millis_f64());
    println!(
        "route-build overhead:         {:.2}x the routed retrieval  (paper: ~2x)",
        cold.as_secs_f64() / warm.as_secs_f64()
    );

    // ---- obs gate: span-measured break-up of a warm one-hop retrieval ----
    //
    // The same percentages, but *measured* from obskit spans recorded by
    // the platform while a retrieval runs, rather than derived from the
    // cost-model constants above. `scripts/verify.sh` runs this binary
    // and relies on the assertions below.
    println!("\nobs gate: span-measured break-up (one hop, warm code cache)");
    {
        let sim = Sim::new();
        let world = World::new(&sim);
        let wifi_medium = WifiMedium::new(&sim, &world, WifiParams::default());
        let platform = SmPlatform::new(&sim, SmParams::default());
        let mk = |x: f64, seed: u64| -> SmNode {
            let id = world.add_node(Position::new(x, 0.0));
            let phone = Phone::new(
                &sim,
                PhoneConfig {
                    model: PhoneModel::Nokia9500,
                    ..PhoneConfig::default()
                },
            );
            let radio = wifi_medium.attach(id, &phone, seed);
            radio.power_on(|| {});
            platform.install(&radio, &phone, seed + 100)
        };
        let issuer = mk(0.0, 11);
        let provider = mk(80.0, 12);
        sim.run_for(SimDuration::from_secs(30));
        provider.publish_tag_now(Tag::new(
            "temperature",
            TagValue::with_data("14.0C", Rc::new(14.0f64), 136),
            sim.now(),
        ));
        let run = |issuer: &SmNode| {
            let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
            let o = out.clone();
            issuer.inject(
                Box::new(Finder::new(FinderSpec::first_match("temperature", 1))),
                SimDuration::from_secs(120),
                move |outcome| *o.borrow_mut() = Some(outcome),
            );
            while out.borrow().is_none() {
                assert!(sim.step());
            }
            let results = out
                .borrow()
                .as_ref()
                .unwrap()
                .completed_as::<Vec<FinderResult>>()
                .expect("completed");
            assert_eq!(results.len(), 1);
        };
        // Warm-up pass (code cache + neighbour tables), unobserved.
        run(&issuer);
        sim.run_for(SimDuration::from_secs(5));
        // Observed pass.
        let obs = obskit::Obs::new();
        let breakup = {
            let _guard = obs.install();
            run(&issuer);
            let root = obs
                .spans()
                .into_iter()
                .find(|s| s.phase == obskit::Phase::Migrate && s.label.starts_with("sm:"))
                .expect("SM root span recorded");
            obs.breakup_under(root.id)
        };
        println!("{}", breakup.table());
        let bands: [(obskit::Phase, &str, f64, f64); 4] = [
            (obskit::Phase::Connect, "connection establishment", 4.0, 5.0),
            (obskit::Phase::Serialize, "serialization", 26.0, 33.0),
            (obskit::Phase::ThreadSwitch, "thread switching", 12.0, 14.0),
            (obskit::Phase::Transfer, "transfer time", 51.0, 54.0),
        ];
        const TOLERANCE_PP: f64 = 3.0;
        for (phase, label, lo, hi) in bands {
            let share = breakup.share_pct(phase);
            let ok = share >= lo - TOLERANCE_PP && share <= hi + TOLERANCE_PP;
            println!(
                "  obs gate: {label:<24} {share:>5.1}%  (paper {lo:.0}-{hi:.0}%, \u{b1}{TOLERANCE_PP:.0}pp)  {}",
                if ok { "OK" } else { "FAIL" }
            );
            assert!(
                ok,
                "{label} share {share:.1}% outside paper band {lo}-{hi}% \u{b1}{TOLERANCE_PP}pp"
            );
        }
        println!(
            "  obs gate: {} spans recorded, retrieval total {:.0} ms",
            obs.span_count(),
            breakup.total().as_millis_f64()
        );
    }
    let _ = SimTime::ZERO;
}
