//! Thin wrapper: runs the query-merging ablation
//! ([`contory_bench::scenarios::ablation_merging`]) through the benchkit
//! harness and prints its report.

use contory_bench::scenarios::ablation_merging::AblationMerging;

fn main() {
    let (report, text) = contory_bench::run_and_render(&AblationMerging);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
