//! Ablation: **query merging** (DESIGN.md §5).
//!
//! The Facade merges compatible queries onto one provider to "avoid
//! redundancy and keep the number of active queries minimal" (§4.3).
//! This ablation compares a workload of 6 mergeable queries (same SELECT,
//! overlapping clauses) against the equivalent unmergeable workload
//! (6 distinct context types): providers instantiated, radio rounds
//! performed, and requester-side energy.

use contory::{CollectingClient, CxtItem, CxtValue, Mechanism};
use contory_bench::{print_table, Row};
use phone::Milliwatts;
use radio::Position;
use simkit::SimDuration;
use testbed::{EnergyProbe, PhoneSetup, Testbed};
use std::rc::Rc;

fn run(mergeable: bool) -> (usize, f64, usize) {
    let tb = Testbed::with_seed(if mergeable { 701 } else { 702 });
    let requester = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
    });
    let provider = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
    });
    provider.factory().register_cxt_server("bench");
    let types: Vec<String> = if mergeable {
        vec!["temperature".into(); 6]
    } else {
        vec![
            "temperature".into(),
            "wind".into(),
            "humidity".into(),
            "pressure".into(),
            "light".into(),
            "noise".into(),
        ]
    };
    for (i, t) in types.iter().enumerate() {
        provider
            .factory()
            .publish_cxt_item(
                CxtItem::new(t.clone(), CxtValue::number(10.0 + i as f64), tb.sim.now())
                    .with_accuracy(0.2),
                None,
            )
            .unwrap();
    }
    tb.sim.run_for(SimDuration::from_secs(2));
    let client = Rc::new(CollectingClient::new());
    for (i, t) in types.iter().enumerate() {
        requester
            .submit(
                &format!(
                    "SELECT {t} FROM adHocNetwork(all,1) DURATION 1 hour EVERY {} sec",
                    20 + i
                ),
                client.clone(),
            )
            .unwrap();
    }
    let providers = requester
        .factory()
        .facade(Mechanism::AdHocBt)
        .unwrap()
        .provider_count();
    // Let discovery settle, then measure 5 minutes of steady state.
    tb.sim.run_for(SimDuration::from_secs(60));
    let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0);
    let probe = EnergyProbe::start(&tb.sim, requester.phone());
    let before = client.all_items().len();
    tb.sim.run_for(SimDuration::from_mins(5));
    let items = client.all_items().len() - before;
    (providers, probe.above_baseline(floor).as_joules(), items)
}

fn main() {
    println!("Ablation — query merging (6 concurrent periodic ad hoc queries)");
    let (p_merge, e_merge, i_merge) = run(true);
    let (p_nomerge, e_nomerge, i_nomerge) = run(false);
    let rows = vec![
        Row::new(
            "active providers",
            p_merge.to_string(),
            p_nomerge.to_string(),
            "merging collapses compatible queries onto one provider",
        ),
        Row::new(
            "requester energy over 5 min (J)",
            format!("{e_merge:.2}"),
            format!("{e_nomerge:.2}"),
            "beyond the idle floor",
        ),
        Row::new(
            "items delivered",
            i_merge.to_string(),
            i_nomerge.to_string(),
            "every member query keeps receiving",
        ),
    ];
    print_table(
        "mergeable workload (measured) vs unmergeable workload (paper column)",
        "",
        &rows,
    );
    println!(
        "\nenergy per delivered item: {:.4} J merged vs {:.4} J unmerged ({:.1}x saving)",
        e_merge / i_merge as f64,
        e_nomerge / i_nomerge as f64,
        (e_nomerge / i_nomerge as f64) / (e_merge / i_merge as f64)
    );
    assert_eq!(p_merge, 1, "mergeable queries share one provider");
    assert_eq!(p_nomerge, 6, "distinct types cannot merge");
    assert!(i_merge > 0 && i_nomerge > 0);
}
