//! Runs the whole §6 suite through benchkit and exports it:
//!
//! * `results/<scenario>.txt` — the human tables (one per scenario),
//! * `BENCH_contory.json` — the versioned machine-readable report at the
//!   repo root (schema `contory-bench/1`),
//!
//! both rendered from the same structured data, so they cannot drift.
//!
//! Flags:
//!
//! * `--check` — additionally diff the run against the checked-in
//!   `results/baseline.json` tolerance bands and exit non-zero on any
//!   out-of-band regression (the perf gate `scripts/verify.sh` runs);
//! * `--write-baseline` — re-pin `results/baseline.json` from this run
//!   (do this deliberately, and review the diff).
//!
//! Everything is seed-driven and sim-clock-only: two runs write
//! byte-identical files.

use benchkit::Baseline;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root resolvable")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    // `--shards N`: partition count for the scale_city, broker_load and
    // broker_chaos runs. Outputs are shard-invariant by the engine's
    // contract; only wall-clock moves.
    let mut rest = args
        .iter()
        .filter(|a| *a != "--check" && *a != "--write-baseline");
    while let Some(a) = rest.next() {
        if a == "--shards" {
            let n = rest
                .next()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                });
            contory_bench::scenarios::scale_city::set_shards(n);
            contory_bench::scenarios::broker_load::set_shards(n);
            contory_bench::scenarios::broker_chaos::set_shards(n);
        } else {
            eprintln!("unknown flag '{a}' (known: --check, --write-baseline, --shards N)");
            std::process::exit(2);
        }
    }

    let root = repo_root();
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir).expect("results/ creatable");

    let scenarios = contory_bench::scenarios::all();
    let mut report = benchkit::Report::new();
    for s in &scenarios {
        println!("==> running {} ({})", s.name(), s.paper_ref());
        let sr = benchkit::run_scenario(s.as_ref());
        let txt_path = results_dir.join(format!("{}.txt", sr.name));
        std::fs::write(&txt_path, sr.render_text()).expect("results txt writable");
        println!(
            "    {} measurements, {} checks, {} spans -> {}",
            sr.measurements.len(),
            sr.checks.len(),
            sr.obs_span_count,
            txt_path.display()
        );
        report.scenarios.push(sr);
    }

    let json_path = root.join("BENCH_contory.json");
    std::fs::write(&json_path, report.to_json_string()).expect("bench json writable");
    println!("\nwrote {}", json_path.display());

    // In-scenario tolerance bands (the obs gate half of the mechanism).
    let failed = report.failed_checks();
    if !failed.is_empty() {
        eprintln!("\nFAILED in-scenario checks:");
        for f in &failed {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all in-scenario tolerance-band checks passed");

    let baseline_path = results_dir.join("baseline.json");
    if write_baseline {
        let base = Baseline::from_report(&report);
        std::fs::write(&baseline_path, base.to_json_string()).expect("baseline writable");
        println!("re-pinned {} ({} metrics)", baseline_path.display(), base.metrics.len());
    }

    if check {
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "cannot read {} ({e}); run with --write-baseline first",
                baseline_path.display()
            );
            std::process::exit(2);
        });
        let base = Baseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", baseline_path.display());
            std::process::exit(2);
        });
        let violations = base.check(&report);
        if violations.is_empty() {
            println!(
                "bench gate: {} pinned metrics within tolerance bands",
                base.metrics.len()
            );
        } else {
            eprintln!("\nbench gate FAILED ({} violations):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
