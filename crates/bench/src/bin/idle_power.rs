//! Thin wrapper: runs the §6.1 idle-power regenerator
//! ([`contory_bench::scenarios::idle`]) through the benchkit harness and
//! prints its report.

use contory_bench::scenarios::idle::IdlePower;

fn main() {
    let (report, text) = contory_bench::run_and_render(&IdlePower);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
