//! Regenerates the paper's in-text idle-power measurements (§6.1):
//!
//! > "When BT is turned off, back-light is switched on, and display is
//! > switched on, the average power consumption is about 76.20 mW. If the
//! > back-light is turned off, the consumption decreases to 14.35 mW. A
//! > consumption of 5.75 mW is achieved if also the display is turned
//! > off. Turning on BT in page and inquiry scan state increases the
//! > power consumption to 8.47 mW. Turning on Contory as well leads to a
//! > power consumption of 10.11 mW. … having WiFi connected at full
//! > signal (with back light on) drains a constant current of 300 mA,
//! > which leads to an average power consumption of 1190 mW … more than
//! > 100 times more energy-consuming than having BT in inquiry mode."

use contory_bench::{print_table, verdict, Row};
use phone::{Phone, PhoneConfig, Volts};
use simkit::{Sim, SimDuration};
use testbed::{EnergyProbe, PhoneSetup, Testbed};
use radio::Position;

fn measure_mode(configure: impl Fn(&Sim, &Phone)) -> f64 {
    let sim = Sim::new();
    let phone = Phone::new(&sim, PhoneConfig::default());
    configure(&sim, &phone);
    let probe = EnergyProbe::start(&sim, &phone);
    sim.run_for(SimDuration::from_secs(60));
    probe.mean_power().0
}

fn main() {
    println!("Idle-power reproduction (in-text measurements of §6.1)");
    let mut rows: Vec<Row> = Vec::new();

    let full = measure_mode(|_s, p| {
        p.set_display(true);
        p.set_backlight(true);
    });
    rows.push(Row::new(
        "display + back-light on, BT off",
        format!("{full:.2}"),
        "76.20",
        verdict(full, 76.20, 0.01),
    ));

    let display = measure_mode(|_s, p| p.set_display(true));
    rows.push(Row::new(
        "display on, back-light off",
        format!("{display:.2}"),
        "14.35",
        verdict(display, 14.35, 0.01),
    ));

    let dark = measure_mode(|_s, _p| {});
    rows.push(Row::new(
        "display + back-light off",
        format!("{dark:.2}"),
        "5.75",
        verdict(dark, 5.75, 0.01),
    ));

    // BT page/inquiry scan: attach a radio (discoverable by default).
    let bt_scan = {
        let tb = Testbed::with_seed(601);
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        phone.phone().set_middleware_running(false);
        let probe = EnergyProbe::start(&tb.sim, phone.phone());
        tb.sim.run_for(SimDuration::from_secs(60));
        probe.mean_power().0
    };
    rows.push(Row::new(
        "+ BT page/inquiry scan",
        format!("{bt_scan:.2}"),
        "8.47",
        verdict(bt_scan, 8.47, 0.01),
    ));

    let with_contory = {
        let tb = Testbed::with_seed(602);
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let probe = EnergyProbe::start(&tb.sim, phone.phone());
        tb.sim.run_for(SimDuration::from_secs(60));
        probe.mean_power().0
    };
    rows.push(Row::new(
        "+ Contory running",
        format!("{with_contory:.2}"),
        "10.11",
        verdict(with_contory, 10.11, 0.01),
    ));

    // WiFi connected at full signal, back-light on.
    let wifi = {
        let tb = Testbed::with_seed(603);
        let phone = tb.add_phone(PhoneSetup::nokia9500("c", Position::new(0.0, 0.0)));
        phone.phone().set_backlight(true);
        phone.phone().set_middleware_running(false);
        tb.sim.run_for(SimDuration::from_secs(40)); // past startup in-rush
        let probe = EnergyProbe::start(&tb.sim, phone.phone());
        tb.sim.run_for(SimDuration::from_secs(60));
        probe.mean_power().0
    };
    rows.push(Row::new(
        "WiFi connected, back-light on",
        format!("{wifi:.2}"),
        "1190.00",
        verdict(wifi, 1190.0, 0.01),
    ));

    print_table("Idle operating modes", "(mW)", &rows);

    let current_ma = phone::Milliwatts(wifi).current_at(Volts(4.0965)).0;
    println!("\nWiFi connected current: {current_ma:.0} mA (paper: constant ~300 mA)");
    println!(
        "WiFi / BT-scan ratio:   {:.0}x (paper: \"more than 100 times\")",
        wifi / bt_scan
    );
}
