//! Regenerates **Fig. 4** of the paper: power consumption of extInfra
//! provisioning — "a test in which 5 queries were sent to the
//! infrastructure over UMTS, every 3 min".
//!
//! Expected shape: ~1000 mW peaks when each query opens the UMTS
//! connection, long DCH/FACH decay tails after each transfer, and GSM
//! paging spikes of 450–481 mW every 50–60 s in between.

use contory::refs::{CellReference, InfraSpec};
use radio::Position;
use sensors::EnvField;
use simkit::{SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    println!("Fig. 4 reproduction — power consumption for extInfra provisioning");
    println!("(5 on-demand queries over UMTS, one every 3 minutes; GSM radio on)\n");

    let tb = Testbed::with_seed(401);
    tb.add_weather_station(
        "station",
        Position::new(10_000.0, 0.0),
        &[EnvField::TemperatureC],
        SimDuration::from_secs(30),
    );
    tb.sim.run_for(SimDuration::from_secs(60));
    let phone = tb.add_phone(PhoneSetup {
        cell_on: true,
        metered: false,
        ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
    });
    let cell = phone.cell_reference();
    let t0 = tb.sim.now();

    // 5 queries, one every 3 minutes (first at t0 + 60 s).
    let completed = Rc::new(Cell::new(0u32));
    for k in 0..5u64 {
        let cell = cell.clone();
        let completed = completed.clone();
        tb.sim.schedule_at(t0 + SimDuration::from_secs(60 + 180 * k), move || {
            let spec = InfraSpec {
                cxt_type: "temperature".into(),
                max_items: 1,
                ..Default::default()
            };
            let completed = completed.clone();
            cell.fetch(&spec, Box::new(move |res| {
                assert!(!res.expect("fetch ok").is_empty());
                completed.set(completed.get() + 1);
            }));
        });
    }
    tb.sim.run_for(SimDuration::from_secs(15 * 60));
    assert_eq!(completed.get(), 5, "all five queries answered");

    let trace = phone.phone().power().trace_snapshot();
    let t_end = tb.sim.now();
    println!("{}", trace.ascii_plot(t0, t_end, 110, 16));

    // Quantitative shape checks.
    let peak = trace.max_value().unwrap_or(0.0);
    println!("peak power:          {peak:.0} mW   (paper: ~1000 mW when the connection opens)");
    let samples = trace.resample(t0, t_end, SimDuration::from_millis(500));
    let paging: Vec<&(SimTime, f64)> = samples
        .iter()
        .filter(|(_, v)| (440.0..500.0).contains(v))
        .collect();
    println!(
        "paging-band samples: {}   (450-481 mW spikes every 50-60 s between queries)",
        paging.len()
    );
    let mean = trace.mean_between(t0, t_end);
    let energy_j = trace.integrate(t0, t_end) / 1_000.0;
    println!("mean power:          {mean:.1} mW over the 15 min test");
    println!("total energy:        {energy_j:.1} J ({:.2} J per query incl. idle floor)", energy_j / 5.0);
    // Count distinct high-power episodes (the five query peaks).
    let mut episodes = 0;
    let mut above = false;
    for (_, v) in &samples {
        if *v > 900.0 && !above {
            episodes += 1;
            above = true;
        } else if *v < 600.0 {
            above = false;
        }
    }
    println!("high-power episodes: {episodes}   (paper: 5 — one per query)");
}
