//! Thin wrapper: runs the Fig. 4 regenerator ([`contory_bench::scenarios::fig4`])
//! through the benchkit harness and prints its report.

use contory_bench::scenarios::fig4::Fig4PowerTrace;

fn main() {
    let (report, text) = contory_bench::run_and_render(&Fig4PowerTrace);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
