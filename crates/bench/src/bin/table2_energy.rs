//! Regenerates **Table 2** of the paper: energy consumption per context
//! item for every provisioning mechanism.
//!
//! Methodology mirrors §6.1: short experiments (high-energy runs ≤ 10
//! min), idle floors measured before each run and subtracted, WiFi rows
//! computed from the power log (the paper's multimeter browned the
//! communicator out — reproduced by `phone::Battery` — so those rows are
//! lower bounds taken "based on the logs we gathered", with the
//! back-light on).

use contory::refs::{AdHocSpec, BtReference, CellReference, WifiReference};
use contory::{CxtItem, CxtValue};
use contory_bench::{fmt_joules, print_table, verdict, Row};
use phone::Milliwatts;
use radio::Position;
use sensors::EnvField;
use simkit::stats::Summary;
use simkit::{Sim, SimDuration};
use testbed::{EnergyProbe, PhoneSetup, Testbed};
use std::cell::Cell;
use std::rc::Rc;

fn light_item(now: simkit::SimTime) -> CxtItem {
    let mut item = CxtItem::new("light", CxtValue::quantity(740.5, "lux"), now)
        .with_source("intSensor://nokia6630-352087/light0")
        .with_accuracy(1.0)
        .with_correctness(0.93)
        .with_trust(contory::Trust::Trusted);
    item.metadata.precision = Some(0.5);
    item.metadata.completeness = Some(1.0);
    item.metadata.privacy = Some("community".into());
    item
}

/// Measures the idle floor of a phone over 30 s.
fn idle_floor(sim: &Sim, phone: &phone::Phone) -> Milliwatts {
    let probe = EnergyProbe::start(sim, phone);
    sim.run_for(SimDuration::from_secs(30));
    probe.mean_power()
}

fn main() {
    println!("Table 2 reproduction — energy consumption per cxtItem");
    println!("values are avg [90% CI half-width] joules");
    let mut rows: Vec<Row> = Vec::new();

    // ---- adHocNetwork BT: provideCxtItem (provider side) ----
    let provide_bt = {
        let tb = Testbed::with_seed(201);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("bench");
        provider
            .factory()
            .publish_cxt_item(light_item(tb.sim.now()), None)
            .unwrap();
        tb.sim.run_for(SimDuration::from_secs(1));
        let bt = requester.bt_reference();
        // Warm-up establishes discovery + the link.
        round_once(&tb.sim, &bt);
        let floor = idle_floor(&tb.sim, provider.phone());
        let mut per_item = Summary::new();
        for _ in 0..10 {
            let probe = EnergyProbe::start(&tb.sim, provider.phone());
            round_once(&tb.sim, &bt);
            tb.sim.run_for(SimDuration::from_secs(5)); // drain active tails
            per_item.push(probe.above_baseline(floor).as_joules());
        }
        per_item
    };
    rows.push(Row::new(
        "adHocNetwork, BT: provideCxtItem",
        fmt_joules(&provide_bt),
        "0.133 [0.002]",
        verdict(provide_bt.mean(), 0.133, 0.15),
    ));

    // ---- adHocNetwork BT: getCxtItem, on-demand incl. discovery ----
    let get_bt_discovery = {
        let tb = Testbed::with_seed(202);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("bench");
        provider
            .factory()
            .publish_cxt_item(light_item(tb.sim.now()), None)
            .unwrap();
        tb.sim.run_for(SimDuration::from_secs(1));
        let bt = requester.bt_reference();
        let floor = idle_floor(&tb.sim, requester.phone());
        let mut per_item = Summary::new();
        for _ in 0..5 {
            bt.forget_peers(); // cold: every run pays full discovery
            tb.sim.run_for(SimDuration::from_secs(5));
            let probe = EnergyProbe::start(&tb.sim, requester.phone());
            round_once(&tb.sim, &bt);
            tb.sim.run_for(SimDuration::from_secs(5));
            per_item.push(probe.above_baseline(floor).as_joules());
        }
        per_item
    };
    rows.push(Row::new(
        "adHocNetwork, BT: getCxtItem (on-demand, incl. discovery)",
        fmt_joules(&get_bt_discovery),
        "5.270 [0.010]",
        verdict(get_bt_discovery.mean(), 5.270, 0.15),
    ));

    // ---- adHocNetwork BT: getCxtItem, periodic w/o discovery ----
    let get_bt_periodic = {
        let tb = Testbed::with_seed(203);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("bench");
        provider
            .factory()
            .publish_cxt_item(light_item(tb.sim.now()), None)
            .unwrap();
        tb.sim.run_for(SimDuration::from_secs(1));
        let bt = requester.bt_reference();
        // Periodic = push subscription: the query travels once, items are
        // pushed every period; the table's cost is per received item.
        let got = Rc::new(Cell::new(0usize));
        let g = got.clone();
        let _h = bt.adhoc_subscribe(
            &AdHocSpec::one_hop("light"),
            SimDuration::from_secs(5),
            Rc::new(move |items| g.set(g.get() + items.len())),
            Rc::new(|_e| {}),
        );
        tb.sim.run_for(SimDuration::from_secs(40)); // discovery settles
        let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0); // idle + scan + mw + link
        let before = got.get();
        let probe = EnergyProbe::start(&tb.sim, requester.phone());
        tb.sim.run_for(SimDuration::from_secs(120));
        let received = got.get() - before;
        let mut per_item = Summary::new();
        per_item.push(probe.above_baseline(floor).as_joules() / received as f64);
        per_item
    };
    rows.push(Row::new(
        "adHocNetwork, BT: getCxtItem (periodic, w/o discovery)",
        fmt_joules(&get_bt_periodic),
        "0.099 [0.007]",
        verdict(get_bt_periodic.mean(), 0.099, 0.15),
    ));

    // ---- intSensor BT-GPS: getCxtItem (periodic, w/o discovery) ----
    let get_gps = {
        let tb = Testbed::with_seed(204);
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
        });
        let _gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
        let client = Rc::new(contory::CollectingClient::new());
        let id = phone
            .submit(
                "SELECT location FROM intSensor DURATION 1 hour EVERY 5 sec",
                client.clone(),
            )
            .unwrap();
        // Discovery + connection, then steady streaming.
        tb.sim.run_for(SimDuration::from_secs(40));
        let before = client.items_for(id).len();
        // Floor with the link open: BT scan + middleware + link idle.
        let floor = Milliwatts(5.75 + 2.72 + 1.64 + 6.0);
        let probe = EnergyProbe::start(&tb.sim, phone.phone());
        tb.sim.run_for(SimDuration::from_secs(120));
        let items = client.items_for(id).len() - before;
        let mut s = Summary::new();
        s.push(probe.above_baseline(floor).as_joules() / items as f64);
        s
    };
    rows.push(Row::new(
        "intSensor, BT-GPS: getCxtItem (periodic, w/o discovery)",
        fmt_joules(&get_gps),
        "0.422 [0.084]",
        verdict(get_gps.mean(), 0.422, 0.20),
    ));

    // ---- adHocNetwork WiFi: one hop & two hops, periodic ----
    let (wifi1, wifi2) = {
        let run = |hops: u32, seed: u64| {
            let tb = Testbed::with_seed(seed);
            let requester = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
            let relay = tb.add_phone(PhoneSetup::nokia9500("c1", Position::new(80.0, 0.0)));
            let far = tb.add_phone(PhoneSetup::nokia9500("c2", Position::new(160.0, 0.0)));
            // The paper's WiFi runs had the back-light on.
            requester.phone().set_backlight(true);
            tb.sim.run_for(SimDuration::from_secs(40));
            let provider = if hops == 1 { &relay } else { &far };
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .unwrap();
            tb.sim.run_for(SimDuration::from_secs(1));
            let wifi = requester.wifi_reference().unwrap();
            let spec = AdHocSpec {
                num_hops: hops,
                ..AdHocSpec::one_hop("light")
            };
            wifi_round_once(&tb.sim, &wifi, &spec); // route build
            let mut per_item = Summary::new();
            for _ in 0..10 {
                // Per-item energy is the full device draw over the
                // retrieval window (WiFi's constant 1190 mW dominates).
                let probe = EnergyProbe::start(&tb.sim, requester.phone());
                wifi_round_once(&tb.sim, &wifi, &spec);
                per_item.push(probe.total().as_joules());
                tb.sim.run_for(SimDuration::from_secs(20));
            }
            per_item
        };
        (run(1, 205), run(2, 206))
    };
    rows.push(Row::new(
        "adHocNetwork, WiFi: getCxtItem (one hop, periodic)",
        format!("> {}", fmt_joules(&wifi1)),
        "> 0.906",
        format!(
            "{}; back-light on; from power log",
            verdict(wifi1.mean(), 0.906, 0.15)
        ),
    ));
    rows.push(Row::new(
        "adHocNetwork, WiFi: getCxtItem (two hops, periodic)",
        format!("> {}", fmt_joules(&wifi2)),
        "> 1.693",
        format!(
            "{}; back-light on; from power log",
            verdict(wifi2.mean(), 1.693, 0.15)
        ),
    ));

    // ---- extInfra UMTS: getCxtItem, on-demand ----
    let get_umts = {
        let tb = Testbed::with_seed(207);
        tb.add_weather_station(
            "station",
            Position::new(10_000.0, 0.0),
            &[EnvField::LightLux],
            SimDuration::from_secs(30),
        );
        tb.sim.run_for(SimDuration::from_secs(60));
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let cell = phone.cell_reference();
        let floor = idle_floor(&tb.sim, phone.phone());
        let spec = contory::refs::InfraSpec {
            cxt_type: "light".into(),
            max_items: 1,
            ..Default::default()
        };
        let mut per_item = Summary::new();
        for _ in 0..8 {
            let probe = EnergyProbe::start(&tb.sim, phone.phone());
            let done = Rc::new(Cell::new(false));
            let d = done.clone();
            cell.fetch(&spec, Box::new(move |res| {
                assert!(!res.expect("fetch ok").is_empty());
                d.set(true);
            }));
            testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
            // Let the DCH and FACH tails drain (this *is* most of the cost).
            tb.sim.run_for(SimDuration::from_secs(60));
            per_item.push(probe.above_baseline(floor).as_joules());
        }
        per_item
    };
    rows.push(Row::new(
        "extInfra, UMTS: getCxtItem (on-demand)",
        fmt_joules(&get_umts),
        "14.076 [0.496]",
        verdict(get_umts.mean(), 14.076, 0.15),
    ));

    print_table(
        "Table 2: energy consumption of context provisioning mechanisms",
        "(J/item)",
        &rows,
    );

    println!("\nShape checks:");
    println!(
        "  discovery dominates BT on-demand: {:.1}x the periodic cost (paper ~53x)",
        get_bt_discovery.mean() / get_bt_periodic.mean()
    );
    println!(
        "  GPS stream (340 B, segmented) vs compact item: {:.1}x (paper ~4.3x)",
        get_gps.mean() / get_bt_periodic.mean()
    );
    println!(
        "  WiFi 2-hop / 1-hop energy: {:.2}x (paper ~1.87x)",
        wifi2.mean() / wifi1.mean()
    );
    println!(
        "  UMTS is the most expensive per item: {:.1}x BT periodic (paper ~142x)",
        get_umts.mean() / get_bt_periodic.mean()
    );
}

fn round_once(sim: &Sim, bt: &Rc<testbed::SimBtReference>) {
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
        assert!(!res.expect("round ok").is_empty(), "provider must answer");
        d.set(true);
    }));
    testbed::run_until_flag(sim, &done, SimDuration::from_secs(60));
}

fn wifi_round_once(sim: &Sim, wifi: &Rc<testbed::SimWifiReference>, spec: &AdHocSpec) {
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    wifi.adhoc_round(spec, Box::new(move |res| {
        assert!(!res.expect("round ok").is_empty(), "provider must answer");
        d.set(true);
    }));
    testbed::run_until_flag(sim, &done, SimDuration::from_secs(60));
}
