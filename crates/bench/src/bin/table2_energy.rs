//! Thin wrapper: runs the Table 2 regenerator ([`contory_bench::scenarios::table2`])
//! through the benchkit harness and prints its report.

use contory_bench::scenarios::table2::Table2Energy;

fn main() {
    let (report, text) = contory_bench::run_and_render(&Table2Energy);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
