//! Regenerates **Table 1** of the paper: latency times of basic Contory
//! operations — `createCxtItem`, `publishCxtItem` (BT / WiFi-SM / UMTS),
//! `createCxtQuery`, and `getCxtItem` over BT one-hop, WiFi one- and
//! two-hop, and UMTS.
//!
//! Topologies per the paper: a Nokia 6630/7610 pair for BT, three Nokia
//! 9500 communicators arranged in a line for WiFi multi-hop, and a remote
//! infrastructure over UMTS. Items are the 136-byte `lightItem`, queries
//! are 205 bytes, UMTS envelopes 1696 bytes.

use contory::refs::{AdHocSpec, BtReference, InternalReference};
use contory::{CxtItem, CxtValue};
use contory_bench::{fmt_ms, print_table, verdict, Row};
use fuego::xml::XmlElement;
use radio::Position;
use sensors::EnvField;
use simkit::stats::Summary;
use simkit::SimDuration;
use testbed::{measure_async, PhoneSetup, Testbed};

const REPS: usize = 30;

fn light_item(now: simkit::SimTime) -> CxtItem {
    // ~136 bytes like the paper's lightItem: fully populated metadata.
    let mut item = CxtItem::new("light", CxtValue::quantity(740.5, "lux"), now)
        .with_source("intSensor://nokia6630-352087/light0")
        .with_accuracy(1.0)
        .with_correctness(0.93)
        .with_trust(contory::Trust::Trusted);
    item.metadata.precision = Some(0.5);
    item.metadata.completeness = Some(1.0);
    item.metadata.privacy = Some("community".into());
    debug_assert!((130..=142).contains(&item.wire_size()), "{}", item.wire_size());
    item
}

fn main() {
    println!("Table 1 reproduction — latency of basic Contory operations");
    println!("reps per operation: {REPS}; values are avg [90% CI half-width]");
    let mut rows: Vec<Row> = Vec::new();

    // ---------------- createCxtItem (provider side) ----------------
    let create = {
        let tb = Testbed::with_seed(101);
        let phone = tb.add_phone(PhoneSetup {
            internal_sensors: vec![EnvField::LightLux],
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let internal = phone.internal_reference().expect("sensor configured");
        measure_async(&tb.sim, REPS, SimDuration::from_millis(10), |_i, done| {
            internal.sample("light", Box::new(move |res| {
                res.expect("sample ok");
                done();
            }));
        })
    };
    rows.push(Row::new(
        "createCxtItem",
        fmt_ms(&create),
        "0.078 [0.001]",
        verdict(create.mean(), 0.078, 0.15),
    ));

    // ---------------- publishCxtItem, BT-based ----------------
    let publish_bt = {
        let tb = Testbed::with_seed(102);
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let bt = phone.bt_reference();
        let sim = tb.sim.clone();
        measure_async(&tb.sim, REPS, SimDuration::from_millis(50), move |_i, done| {
            let item = light_item(sim.now());
            bt.publish(&item, None, Box::new(move |res| {
                res.expect("publish ok");
                done();
            }));
        })
    };
    rows.push(Row::new(
        "adHocNetwork, BT-based: publishCxtItem",
        fmt_ms(&publish_bt),
        "140.359 [0.337]",
        verdict(publish_bt.mean(), 140.359, 0.05),
    ));

    // ---------------- publishCxtItem, WiFi/SM-based ----------------
    let publish_wifi = {
        let tb = Testbed::with_seed(103);
        let phone = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
        tb.sim.run_for(SimDuration::from_secs(40)); // join + startup
        let wifi = phone.wifi_reference().expect("communicator");
        let sim = tb.sim.clone();
        measure_async(&tb.sim, REPS, SimDuration::from_millis(10), move |_i, done| {
            let item = light_item(sim.now());
            use contory::refs::WifiReference;
            wifi.publish(&item, None, Box::new(move |res| {
                res.expect("publish ok");
                done();
            }));
        })
    };
    rows.push(Row::new(
        "adHocNetwork, WiFi-based: publishCxtItem",
        fmt_ms(&publish_wifi),
        "0.130 [0.006]",
        verdict(publish_wifi.mean(), 0.130, 0.10),
    ));

    // ---------------- publishCxtItem, UMTS-based ----------------
    let publish_umts = {
        let tb = Testbed::with_seed(104);
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let fuego = phone.fuego().expect("fuego client").clone();
        measure_async(&tb.sim, REPS, SimDuration::from_secs(30), move |_i, done| {
            // A context item encapsulated in a 1696-byte event notification.
            let ev = fuego.make_event(
                "cxt/light",
                XmlElement::new("cxtItem").attr("type", "light").text("740.5"),
            );
            fuego.publish(ev, move |res| {
                res.expect("uplink ok");
                done();
            });
        })
    };
    rows.push(Row::new(
        "extInfra, UMTS-based: publishCxtItem",
        fmt_ms(&publish_umts),
        "772.728 [158.924]",
        verdict(publish_umts.mean(), 772.728, 0.20),
    ));

    // ---------------- createCxtQuery ----------------
    // The paper's table leaves this cell blank/garbled in the available
    // text; we model query-object creation like item creation scaled by
    // object size (205 B vs 136 B) and report it for completeness.
    let create_query = {
        let tb = Testbed::with_seed(105);
        let sim = tb.sim.clone();
        let mut rng = simkit::DetRng::new(105);
        let mut s = Summary::new();
        for _ in 0..REPS {
            s.push(
                rng.gauss_duration(
                    SimDuration::from_micros(78 * 205 / 136),
                    SimDuration::from_micros(2),
                )
                .as_millis_f64(),
            );
        }
        let _ = sim;
        s
    };
    rows.push(Row::new(
        "createCxtQuery",
        fmt_ms(&create_query),
        "(cell empty in source)",
        "modeled: createCxtItem x 205B/136B",
    ));

    // ---------------- getCxtItem, BT one hop ----------------
    let get_bt = {
        let tb = Testbed::with_seed(106);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
        });
        provider.factory().register_cxt_server("bench");
        provider
            .factory()
            .publish_cxt_item(light_item(tb.sim.now()), None)
            .expect("published");
        tb.sim.run_for(SimDuration::from_secs(1));
        let bt = requester.bt_reference();
        // Warm-up round performs device + service discovery (~14 s);
        // the table's number is "once device and service discovery has
        // occurred".
        {
            use contory::refs::BtReference;
            let done = std::rc::Rc::new(std::cell::Cell::new(false));
            let d = done.clone();
            bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
                assert_eq!(res.expect("round ok").len(), 1);
                d.set(true);
            }));
            testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
        }
        measure_async(&tb.sim, REPS, SimDuration::from_secs(2), move |_i, done| {
            use contory::refs::BtReference;
            bt.adhoc_round(&AdHocSpec::one_hop("light"), Box::new(move |res| {
                assert!(!res.expect("round ok").is_empty());
                done();
            }));
        })
    };
    rows.push(Row::new(
        "adHocNetwork, BT-based, one hop: getCxtItem",
        fmt_ms(&get_bt),
        "31.830 [0.151]",
        verdict(get_bt.mean(), 31.830, 0.10),
    ));

    // ---------------- getCxtItem, WiFi one & two hops ----------------
    let (get_wifi1, get_wifi2) = {
        let run = |hops: u32, seed: u64| {
            let tb = Testbed::with_seed(seed);
            let requester = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
            let _relay = tb.add_phone(PhoneSetup::nokia9500("c1", Position::new(80.0, 0.0)));
            let far = tb.add_phone(PhoneSetup::nokia9500("c2", Position::new(160.0, 0.0)));
            tb.sim.run_for(SimDuration::from_secs(40));
            let provider = if hops == 1 { &_relay } else { &far };
            provider.factory().register_cxt_server("bench");
            provider
                .factory()
                .publish_cxt_item(light_item(tb.sim.now()), None)
                .expect("published");
            tb.sim.run_for(SimDuration::from_secs(1));
            let wifi = requester.wifi_reference().expect("communicator");
            let spec = AdHocSpec {
                num_hops: hops,
                ..AdHocSpec::one_hop("light")
            };
            // Warm-up: builds the SM route and code caches ("once the
            // route has been built").
            {
                use contory::refs::WifiReference;
                let done = std::rc::Rc::new(std::cell::Cell::new(false));
                let d = done.clone();
                let s = spec.clone();
                wifi.adhoc_round(&s, Box::new(move |res| {
                    assert_eq!(res.expect("round ok").len(), 1);
                    d.set(true);
                }));
                testbed::run_until_flag(&tb.sim, &done, SimDuration::from_secs(60));
            }
            measure_async(&tb.sim, REPS, SimDuration::from_secs(1), move |_i, done| {
                use contory::refs::WifiReference;
                wifi.adhoc_round(&spec, Box::new(move |res| {
                    assert!(!res.expect("round ok").is_empty());
                    done();
                }));
            })
        };
        (run(1, 107), run(2, 108))
    };
    rows.push(Row::new(
        "adHocNetwork, WiFi-based, one hop: getCxtItem",
        fmt_ms(&get_wifi1),
        "761.280 [28.940]",
        verdict(get_wifi1.mean(), 761.280, 0.10),
    ));
    rows.push(Row::new(
        "adHocNetwork, WiFi-based, two hops: getCxtItem",
        fmt_ms(&get_wifi2),
        "1422.500 [60.001]",
        verdict(get_wifi2.mean(), 1422.5, 0.10),
    ));

    // ---------------- getCxtItem, UMTS ----------------
    let get_umts = {
        let tb = Testbed::with_seed(109);
        tb.add_weather_station(
            "station",
            Position::new(10_000.0, 0.0),
            &[EnvField::LightLux],
            SimDuration::from_secs(30),
        );
        tb.sim.run_for(SimDuration::from_secs(60));
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            ..PhoneSetup::nokia6630("p", Position::new(0.0, 0.0))
        });
        let cell = phone.cell_reference();
        let spec = contory::refs::InfraSpec {
            cxt_type: "light".into(),
            max_items: 1,
            ..Default::default()
        };
        measure_async(&tb.sim, REPS, SimDuration::from_secs(30), move |_i, done| {
            use contory::refs::CellReference;
            cell.fetch(&spec, Box::new(move |res| {
                assert!(!res.expect("fetch ok").is_empty());
                done();
            }));
        })
    };
    rows.push(Row::new(
        "extInfra, UMTS-based: getCxtItem",
        fmt_ms(&get_umts),
        "1473.000 [275.000]",
        format!(
            "{}; observed range {:.0}..{:.0} (paper: 703..2766)",
            verdict(get_umts.mean(), 1473.0, 0.15),
            get_umts.min(),
            get_umts.max()
        ),
    ));

    print_table("Table 1: latency times of basic Contory operations", "(ms)", &rows);

    // Shape checks the paper's prose calls out.
    println!("\nShape checks:");
    println!(
        "  BT publish >> SM-tag publish: {:.1}x (paper ~1080x)",
        publish_bt.mean() / publish_wifi.mean()
    );
    println!(
        "  WiFi 2-hop / 1-hop: {:.2}x (paper 1.87x)",
        get_wifi2.mean() / get_wifi1.mean()
    );
    println!(
        "  UMTS variance is extreme: std {:.0} ms over mean {:.0} ms",
        get_umts.std_dev(),
        get_umts.mean()
    );
}
