//! Thin wrapper: runs the Table 1 regenerator ([`contory_bench::scenarios::table1`])
//! through the benchkit harness and prints its report.

use contory_bench::scenarios::table1::Table1Latency;

fn main() {
    let (report, text) = contory_bench::run_and_render(&Table1Latency);
    println!("{text}");
    let failed = report.failed_checks();
    assert!(failed.is_empty(), "failed checks:\n{}", failed.join("\n"));
}
