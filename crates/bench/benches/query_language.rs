//! Criterion micro-benchmarks of the query language (wall-clock cost of
//! the Rust implementation; the paper-comparable latencies live in the
//! `table1_latency` binary).

use contory::query::{CxtQuery, NumNodes, QueryBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PAPER_QUERY: &str = "SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 \
                           FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_paper_query", |b| {
        b.iter(|| CxtQuery::parse(black_box(PAPER_QUERY)).unwrap())
    });
    c.bench_function("parse_minimal_query", |b| {
        b.iter(|| CxtQuery::parse(black_box("SELECT location DURATION 50 samples")).unwrap())
    });
}

fn bench_display(c: &mut Criterion) {
    let q = CxtQuery::parse(PAPER_QUERY).unwrap();
    c.bench_function("render_query", |b| b.iter(|| black_box(&q).to_string()));
}

fn bench_builder(c: &mut Criterion) {
    c.bench_function("build_query", |b| {
        b.iter(|| {
            QueryBuilder::select(black_box("temperature"))
                .from_adhoc(NumNodes::First(10), 3)
                .where_numeric("accuracy", contory::query::CmpOp::Eq, 0.2)
                .freshness(simkit::SimDuration::from_secs(30))
                .duration(simkit::SimDuration::from_hours(1))
                .event_avg_above("temperature", 25.0)
                .build()
        })
    });
}

criterion_group!(benches, bench_parse, bench_display, bench_builder);
criterion_main!(benches);
