//! Criterion benchmarks of whole provisioning rounds: wall-clock cost of
//! simulating each mechanism end-to-end (how fast the *simulator* runs,
//! complementing the virtual-time results of the table binaries).

use contory::refs::{AdHocSpec, BtReference, WifiReference};
use contory::{CxtItem, CxtValue};
use criterion::{criterion_group, criterion_main, Criterion};
use radio::Position;
use simkit::SimDuration;
use testbed::{PhoneSetup, Testbed};
use std::cell::Cell;
use std::hint::black_box;
use std::rc::Rc;

fn item(now: simkit::SimTime) -> CxtItem {
    CxtItem::new("light", CxtValue::quantity(740.5, "lux"), now).with_accuracy(1.0)
}

fn bench_bt_round(c: &mut Criterion) {
    let tb = Testbed::with_seed(900);
    let requester = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
    });
    let provider = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("prov", Position::new(5.0, 0.0))
    });
    provider.factory().register_cxt_server("bench");
    provider
        .factory()
        .publish_cxt_item(item(tb.sim.now()), None)
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    let bt = requester.bt_reference();
    // Warm the peer cache once.
    run_round(&tb, &*bt);
    c.bench_function("simulate_bt_one_hop_round", |b| {
        b.iter(|| black_box(run_round(&tb, &*bt)))
    });
}

fn run_round(tb: &Testbed, bt: &dyn BtReference) -> usize {
    let done = Rc::new(Cell::new(0usize));
    let d = done.clone();
    bt.adhoc_round(
        &AdHocSpec::one_hop("light"),
        Box::new(move |res| d.set(res.map(|v| v.len()).unwrap_or(0))),
    );
    tb.sim.run_for(SimDuration::from_secs(10));
    done.get()
}

fn bench_wifi_two_hop_round(c: &mut Criterion) {
    let tb = Testbed::with_seed(901);
    let requester = tb.add_phone(PhoneSetup::nokia9500("c0", Position::new(0.0, 0.0)));
    let _relay = tb.add_phone(PhoneSetup::nokia9500("c1", Position::new(80.0, 0.0)));
    let far = tb.add_phone(PhoneSetup::nokia9500("c2", Position::new(160.0, 0.0)));
    tb.sim.run_for(SimDuration::from_secs(40));
    far.factory().register_cxt_server("bench");
    far.factory()
        .publish_cxt_item(item(tb.sim.now()), None)
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    let wifi = requester.wifi_reference().unwrap();
    let spec = AdHocSpec {
        num_hops: 2,
        ..AdHocSpec::one_hop("light")
    };
    c.bench_function("simulate_wifi_two_hop_round", |b| {
        b.iter(|| {
            let done = Rc::new(Cell::new(0usize));
            let d = done.clone();
            wifi.adhoc_round(
                &spec,
                Box::new(move |res| d.set(res.map(|v| v.len()).unwrap_or(0))),
            );
            tb.sim.run_for(SimDuration::from_secs(10));
            black_box(done.get())
        })
    });
}

fn bench_full_fig5_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("simulate_fig5_520s", |b| {
        b.iter(|| {
            let tb = Testbed::with_seed(902);
            let phone = tb.add_phone(PhoneSetup {
                metered: false,
                ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
            });
            let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
            let client = Rc::new(contory::CollectingClient::new());
            phone
                .submit(
                    "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
                    client.clone(),
                )
                .unwrap();
            let g = gps.clone();
            tb.sim
                .schedule_at(simkit::SimTime::from_secs(155), move || g.set_powered(false));
            let g = gps.clone();
            tb.sim
                .schedule_at(simkit::SimTime::from_secs(330), move || g.set_powered(true));
            tb.sim.run_until(simkit::SimTime::from_secs(520));
            black_box(client.all_items().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bt_round, bench_wifi_two_hop_round, bench_full_fig5_scenario);
criterion_main!(benches);
