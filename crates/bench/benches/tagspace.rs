//! Criterion micro-benchmarks of the Smart Messages tag space — the
//! hashtable whose cheapness explains Table 1's 0.13 ms WiFi publish.

use criterion::{criterion_group, criterion_main, Criterion};
use simkit::{SimDuration, SimTime};
use smartmsg::{Tag, TagSpace, TagValue};
use std::hint::black_box;

fn bench_publish(c: &mut Criterion) {
    c.bench_function("tagspace_publish", |b| {
        let mut ts = TagSpace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ts.publish(Tag::new(
                format!("tag-{}", i % 64),
                TagValue::text("14.0C,0.2,trusted"),
                SimTime::from_millis(i),
            ))
        });
    });
}

fn bench_read(c: &mut Criterion) {
    let mut ts = TagSpace::new();
    for i in 0..64 {
        ts.publish(
            Tag::new(
                format!("tag-{i}"),
                TagValue::text("value"),
                SimTime::ZERO,
            )
            .with_lifetime(SimDuration::from_hours(1)),
        );
    }
    c.bench_function("tagspace_read_hit", |b| {
        b.iter(|| black_box(ts.read(black_box("tag-31"), SimTime::from_secs(1), None)))
    });
    c.bench_function("tagspace_read_miss", |b| {
        b.iter(|| black_box(ts.read(black_box("missing"), SimTime::from_secs(1), None)))
    });
}

fn bench_sweep(c: &mut Criterion) {
    c.bench_function("tagspace_sweep_64", |b| {
        b.iter_batched(
            || {
                let mut ts = TagSpace::new();
                for i in 0..64 {
                    ts.publish(
                        Tag::new(format!("tag-{i}"), TagValue::text("v"), SimTime::ZERO)
                            .with_lifetime(SimDuration::from_secs(i)),
                    );
                }
                ts
            },
            |mut ts| {
                ts.sweep(SimTime::from_secs(32));
                ts
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_publish, bench_read, bench_sweep);
criterion_main!(benches);
