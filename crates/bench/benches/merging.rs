//! Criterion micro-benchmarks of query aggregation: merging queries into
//! covering queries and post-extracting results — the machinery that
//! keeps "the number of active queries minimal" (§4.3).
//!
//! Measured through the public Facade behaviour: submitting N mergeable
//! queries to a factory over instant mock references.

use contory::query::CxtQuery;
use contory::refs::{AdHocSpec, BtReference, Done, ItemsResult, OnItems, OnRefError, RefError, StreamHandle};
use contory::{CollectingClient, ContextFactory, CxtItem, CxtValue, FactoryConfig, SourceId};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::{Sim, SimDuration, SimTime};
use std::hint::black_box;
use std::rc::Rc;

/// A BT reference that answers rounds instantly (isolates middleware
/// cost from radio latency).
struct InstantBt {
    sim: Sim,
}

impl BtReference for InstantBt {
    fn is_available(&self) -> bool {
        true
    }
    fn discover_sensor(&self, _t: &str, cb: Done<Result<SourceId, RefError>>) {
        cb(Err(RefError::NotFound("none".into())));
    }
    fn open_sensor_stream(
        &self,
        _s: &SourceId,
        _t: &str,
        _oi: OnItems,
        _oe: OnRefError,
        cb: Done<Result<StreamHandle, RefError>>,
    ) {
        cb(Err(RefError::NotFound("none".into())));
    }
    fn close_sensor_stream(&self, _h: StreamHandle) {}
    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>) {
        let item = CxtItem::new(spec.cxt_type.clone(), CxtValue::number(20.0), self.sim.now())
            .with_accuracy(0.1);
        self.sim.schedule_in(SimDuration::from_micros(1), move || cb(Ok(vec![item])));
    }
    fn adhoc_subscribe(
        &self,
        spec: &AdHocSpec,
        period: SimDuration,
        on_items: OnItems,
        _on_error: OnRefError,
    ) -> StreamHandle {
        let sim = self.sim.clone();
        let cxt_type = spec.cxt_type.clone();
        self.sim.schedule_repeating(period, move || {
            on_items(vec![CxtItem::new(
                cxt_type.clone(),
                CxtValue::number(20.0),
                sim.now(),
            )
            .with_accuracy(0.1)]);
            true
        });
        StreamHandle(1)
    }
    fn adhoc_unsubscribe(&self, _h: StreamHandle) {}
    fn publish(&self, _i: &CxtItem, _k: Option<String>, cb: Done<Result<(), RefError>>) {
        cb(Ok(()));
    }
    fn unpublish(&self, _t: &str) {}
}

fn factory_with_instant_bt(sim: &Sim) -> ContextFactory {
    let refs = contory::refs::References {
        internal: None,
        bt: Some(Rc::new(InstantBt { sim: sim.clone() })),
        wifi: None,
        cell: None,
    };
    ContextFactory::new(sim, refs, FactoryConfig::default())
}

fn bench_submit_mergeable(c: &mut Criterion) {
    c.bench_function("submit_8_mergeable_queries", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let factory = factory_with_instant_bt(&sim);
            let client = Rc::new(CollectingClient::new());
            for i in 0..8 {
                let q = CxtQuery::parse(&format!(
                    "SELECT temperature FROM adHocNetwork(all,1) FRESHNESS {} sec \
                     DURATION 1 hour EVERY {} sec",
                    10 + i,
                    15 + i
                ))
                .unwrap();
                factory.process_cxt_query(q, client.clone()).unwrap();
            }
            black_box(factory.active_queries())
        })
    });
}

fn bench_merged_delivery(c: &mut Criterion) {
    c.bench_function("deliver_through_8_member_merge", |b| {
        let sim = Sim::new();
        let factory = factory_with_instant_bt(&sim);
        let client = Rc::new(CollectingClient::new());
        for i in 0..8 {
            let q = CxtQuery::parse(&format!(
                "SELECT temperature FROM adHocNetwork(all,1) DURATION 10 hour EVERY {} sec",
                15 + i
            ))
            .unwrap();
            factory.process_cxt_query(q, client.clone()).unwrap();
        }
        let mut horizon = SimTime::from_secs(60);
        b.iter(|| {
            sim.run_until(horizon);
            horizon = horizon + SimDuration::from_secs(60);
            black_box(client.all_items().len())
        });
    });
}

criterion_group!(benches, bench_submit_mergeable, bench_merged_delivery);
criterion_main!(benches);
