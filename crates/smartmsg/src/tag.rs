//! The tag space: named shared memory addressable by content.
//!
//! Tags have a file-system-like name used for content-based naming of
//! nodes; Contory publishes each context item as a tag whose name carries
//! the item type and whose value carries value + metadata. Tags may have
//! a lifetime and are either publicly readable or locked behind a key
//! (the paper's *public* vs *authenticated* access modalities).

use simkit::{SimDuration, SimTime};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Access modality of a published tag.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TagAccess {
    /// Any external entity may read the tag.
    #[default]
    Public,
    /// The requester must present this key.
    Authenticated(String),
}

/// The value stored in a tag: a printable text form (what would go on the
/// wire), an optional structured payload for in-simulation consumers, and
/// the wire size used by the migration cost model.
#[derive(Clone)]
pub struct TagValue {
    /// Human/wire representation, e.g. `"14.0C,0.2C,trusted"`.
    pub text: String,
    /// Structured payload (e.g. a `CxtItem`) for zero-copy consumption.
    pub data: Option<Rc<dyn Any>>,
    /// Serialized size in bytes (defaults to the text length).
    pub wire_size: usize,
}

impl TagValue {
    /// A plain text value.
    pub fn text(text: impl Into<String>) -> Self {
        let text = text.into();
        let wire_size = text.len();
        TagValue {
            text,
            data: None,
            wire_size,
        }
    }

    /// A value carrying a structured payload with an explicit wire size.
    pub fn with_data(text: impl Into<String>, data: Rc<dyn Any>, wire_size: usize) -> Self {
        TagValue {
            text: text.into(),
            data: Some(data),
            wire_size,
        }
    }
}

impl fmt::Debug for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TagValue")
            .field("text", &self.text)
            .field("wire_size", &self.wire_size)
            .field("has_data", &self.data.is_some())
            .finish()
    }
}

impl PartialEq for TagValue {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text && self.wire_size == other.wire_size
    }
}

/// A named entry in a node's tag space.
#[derive(Clone, Debug, PartialEq)]
pub struct Tag {
    /// Content name (e.g. `"temperature"`, `"contory"`).
    pub name: String,
    /// Stored value.
    pub value: TagValue,
    /// When the tag was (last) published.
    pub published_at: SimTime,
    /// Validity duration; expired tags read as absent.
    pub lifetime: Option<SimDuration>,
    /// Public or authenticated access.
    pub access: TagAccess,
}

impl Tag {
    /// Creates a public tag with no lifetime.
    pub fn new(name: impl Into<String>, value: TagValue, published_at: SimTime) -> Self {
        Tag {
            name: name.into(),
            value,
            published_at,
            lifetime: None,
            access: TagAccess::Public,
        }
    }

    /// Sets a validity duration, builder style.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.lifetime = Some(lifetime);
        self
    }

    /// Locks the tag behind a key, builder style.
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.access = TagAccess::Authenticated(key.into());
        self
    }

    /// Whether the tag is expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        match self.lifetime {
            Some(l) => now > self.published_at + l,
            None => false,
        }
    }

    /// Whether a reader presenting `key` may read this tag.
    pub fn readable_with(&self, key: Option<&str>) -> bool {
        match &self.access {
            TagAccess::Public => true,
            TagAccess::Authenticated(k) => key == Some(k.as_str()),
        }
    }

    /// Age of the tag at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now - self.published_at
    }
}

/// One node's tag space: a name-addressed hashtable (the portable SM
/// implementation literally used a `Hashtable`).
#[derive(Clone, Debug, Default)]
pub struct TagSpace {
    tags: BTreeMap<String, Tag>,
}

impl TagSpace {
    /// Creates an empty tag space.
    pub fn new() -> Self {
        TagSpace::default()
    }

    /// Publishes (or replaces) a tag. Returns the previous tag with the
    /// same name, if any.
    pub fn publish(&mut self, tag: Tag) -> Option<Tag> {
        self.tags.insert(tag.name.clone(), tag)
    }

    /// Removes a tag by name.
    pub fn remove(&mut self, name: &str) -> Option<Tag> {
        self.tags.remove(name)
    }

    /// Reads a live (non-expired) tag, respecting access control.
    /// Expired or key-protected tags read as absent.
    pub fn read(&self, name: &str, now: SimTime, key: Option<&str>) -> Option<&Tag> {
        self.tags
            .get(name)
            .filter(|t| !t.is_expired(now) && t.readable_with(key))
    }

    /// Whether a live tag with this name exists (ignoring access — the
    /// name itself is visible for routing, like a file name).
    pub fn exposes(&self, name: &str, now: SimTime) -> bool {
        self.tags.get(name).is_some_and(|t| !t.is_expired(now))
    }

    /// Names of all live tags.
    pub fn names(&self, now: SimTime) -> Vec<&str> {
        self.tags
            .values()
            .filter(|t| !t.is_expired(now))
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Drops expired tags (housekeeping).
    pub fn sweep(&mut self, now: SimTime) {
        self.tags.retain(|_, t| !t.is_expired(now));
    }

    /// Number of stored tags (including expired, pre-sweep).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if no tags are stored.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn publish_read_remove() {
        let mut ts = TagSpace::new();
        ts.publish(Tag::new("temperature", TagValue::text("14.0C"), t(0)));
        assert!(ts.exposes("temperature", t(1)));
        let tag = ts.read("temperature", t(1), None).unwrap();
        assert_eq!(tag.value.text, "14.0C");
        assert_eq!(tag.age(t(5)), SimDuration::from_secs(5));
        ts.remove("temperature");
        assert!(ts.read("temperature", t(1), None).is_none());
    }

    #[test]
    fn replace_returns_previous() {
        let mut ts = TagSpace::new();
        ts.publish(Tag::new("x", TagValue::text("1"), t(0)));
        let prev = ts.publish(Tag::new("x", TagValue::text("2"), t(1))).unwrap();
        assert_eq!(prev.value.text, "1");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.read("x", t(2), None).unwrap().value.text, "2");
    }

    #[test]
    fn lifetime_expiry() {
        let mut ts = TagSpace::new();
        ts.publish(
            Tag::new("wind", TagValue::text("5kn"), t(0))
                .with_lifetime(SimDuration::from_secs(30)),
        );
        assert!(ts.read("wind", t(30), None).is_some());
        assert!(ts.read("wind", t(31), None).is_none());
        assert!(!ts.exposes("wind", t(31)));
        ts.sweep(t(31));
        assert!(ts.is_empty());
    }

    #[test]
    fn authenticated_access_requires_key() {
        let mut ts = TagSpace::new();
        ts.publish(Tag::new("location", TagValue::text("60N,22E"), t(0)).with_key("secret"));
        assert!(ts.read("location", t(1), None).is_none());
        assert!(ts.read("location", t(1), Some("wrong")).is_none());
        assert!(ts.read("location", t(1), Some("secret")).is_some());
        // the name is still exposed for routing
        assert!(ts.exposes("location", t(1)));
    }

    #[test]
    fn names_lists_live_tags() {
        let mut ts = TagSpace::new();
        ts.publish(Tag::new("a", TagValue::text("1"), t(0)));
        ts.publish(
            Tag::new("b", TagValue::text("2"), t(0)).with_lifetime(SimDuration::from_secs(1)),
        );
        assert_eq!(ts.names(t(10)), vec!["a"]);
    }

    #[test]
    fn tag_value_wire_size_defaults_to_text_len() {
        let v = TagValue::text("hello");
        assert_eq!(v.wire_size, 5);
        let v = TagValue::with_data("x", Rc::new(42u32), 136);
        assert_eq!(v.wire_size, 136);
        assert!(v.data.is_some());
    }
}
