//! The Smart Message program model.
//!
//! Real SMs carry Java *code bricks*; a simulation cannot ship code, so an
//! SM program here is a boxed state machine implementing [`SmProgram`].
//! The runtime calls [`SmProgram::run`] each time the SM's execution
//! resumes at a node; the returned [`SmAction`] tells the runtime whether
//! to migrate, head home, or complete. Code identity and size still
//! matter — they drive the code cache and the migration cost model.

use crate::tag::TagSpace;
use radio::NodeId;
use simkit::SimTime;
use std::any::Any;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// What the SM does after a `run` step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmAction {
    /// Migrate execution to an adjacent participating node.
    Migrate(NodeId),
    /// Let the runtime carry the SM back to its origin along the visited
    /// path, then complete (no further `run` calls on the way).
    Return,
    /// Finish here. Delivers the outcome if the SM is at its origin;
    /// elsewhere the SM is lost (reported as a failure).
    Complete,
}

/// Why an SM failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmError {
    /// A migration failed and the program gave up.
    Unreachable(NodeId),
    /// The admission manager at a node rejected the SM.
    Rejected(NodeId),
    /// The SM completed away from its origin, so the outcome could not be
    /// delivered.
    LostOffOrigin(NodeId),
}

impl fmt::Display for SmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmError::Unreachable(n) => write!(f, "migration target {n} unreachable"),
            SmError::Rejected(n) => write!(f, "admission rejected at {n}"),
            SmError::LostOffOrigin(n) => write!(f, "sm completed away from origin at {n}"),
        }
    }
}

impl Error for SmError {}

/// Terminal state of an injected SM.
#[derive(Clone, Debug)]
pub enum SmOutcome {
    /// The SM returned to its origin and produced this payload.
    Completed(Rc<dyn Any>),
    /// The injector's timeout fired first (paper: "if no valid result is
    /// received within a certain timeout, the query is cancelled").
    TimedOut,
    /// The SM failed en route.
    Failed(SmError),
}

impl SmOutcome {
    /// Downcasts a completed payload; `None` for timeouts/failures or a
    /// type mismatch.
    pub fn completed_as<T: 'static>(&self) -> Option<Rc<T>> {
        match self {
            SmOutcome::Completed(p) => p.clone().downcast::<T>().ok(),
            _ => None,
        }
    }
}

/// Everything an SM program can see and touch while executing at a node.
///
/// The tag space is the *only* shared memory (as in the real platform);
/// `routes` is the node-local content-routing table that finder-style
/// programs consult and install into.
pub struct SmContext<'a> {
    /// Node currently hosting the execution.
    pub node: NodeId,
    /// Node that injected the SM.
    pub origin: NodeId,
    /// Migrations performed so far (the paper's `hopCnt`).
    pub hop_cnt: u32,
    /// Current virtual time.
    pub now: SimTime,
    /// The hosting node's tag space.
    pub tags: &'a mut TagSpace,
    /// Adjacent nodes currently participating in the SM network (exposing
    /// the `"contory"` tag over joined WiFi).
    pub neighbors: Vec<NodeId>,
    /// The hosting node's content-route table: tag name → path of next
    /// hops from this node.
    pub routes: &'a mut BTreeMap<String, Vec<NodeId>>,
    /// If the previous action was a `Migrate` that failed, the target that
    /// could not be reached; the program should pick an alternative.
    pub migration_failed: Option<NodeId>,
}

/// A Smart Message program: a named, sized state machine.
pub trait SmProgram {
    /// Code-brick identity, used by the per-node code cache.
    fn code_name(&self) -> &'static str;

    /// Serialized size of the code bricks in bytes (paid on migration to
    /// nodes that do not have the brick cached).
    fn code_size(&self) -> usize;

    /// Current serialized size of the data bricks in bytes (grows as the
    /// program accumulates results).
    fn data_size(&self) -> usize;

    /// One execution step at the current node.
    fn run(&mut self, ctx: &mut SmContext<'_>) -> SmAction;

    /// Consumes the program into its outcome payload once the SM
    /// completes at its origin.
    fn finish(self: Box<Self>) -> Rc<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_downcast() {
        let o = SmOutcome::Completed(Rc::new(41u32));
        assert_eq!(*o.completed_as::<u32>().unwrap(), 41);
        assert!(o.completed_as::<String>().is_none());
        assert!(SmOutcome::TimedOut.completed_as::<u32>().is_none());
    }

    #[test]
    fn errors_display() {
        assert!(SmError::Unreachable(NodeId(3)).to_string().contains("node3"));
        assert!(SmError::Rejected(NodeId(1)).to_string().contains("admission"));
    }
}
