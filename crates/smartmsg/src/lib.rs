//! # contory-smartmsg
//!
//! A reproduction of the **Smart Messages (SM)** distributed computing
//! platform (Borcea et al., ICDCS 2002; portable J2ME version by Ravi et
//! al., MobiQuitous 2004) that Contory's `WiFiReference` uses for
//! multi-hop context provisioning in ad hoc networks.
//!
//! An SM is a mobile-agent-like computation whose execution migrates node
//! to node. The platform pieces, mirroring the paper's §5.1:
//!
//! - **Tag space** ([`TagSpace`]): named shared memory per node, used both
//!   for publishing context items (`temperatureTag: <name=temperature>
//!   <value=14°C,1°C,trusted>`) and for naming nodes (the `"contory"`
//!   participation tag).
//! - **SM runtime** ([`SmPlatform`] / [`SmNode`]): admission manager,
//!   code cache, and scheduler dispatching ready SMs.
//! - **Migration** ([`SmParams`]): each hop pays connection
//!   establishment, serialization, transfer and thread-switch costs with
//!   the break-up the paper measured (connection 4–5 %, serialization
//!   26–33 %, thread switching 12–14 %, transfer 51–54 % of a retrieval).
//! - **SM-FINDER** ([`finder::Finder`]): the program Contory encapsulates
//!   context queries in — routed towards nodes exposing the desired
//!   context tag, evaluates WHERE/FRESHNESS/EVENT requirements there, and
//!   carries matching values back to the issuer, maintaining a `hopCnt`
//!   so out-of-range results can be discarded.
//!
//! Routing is content-based: the first query for a tag explores (DFS over
//! `"contory"`-participating neighbors, which is why building a route
//! costs roughly twice a routed retrieval); later queries follow the
//! cached route.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod finder;
mod program;
mod runtime;
mod tag;

pub use program::{SmAction, SmContext, SmError, SmOutcome, SmProgram};
pub use runtime::{SmNode, SmParams, SmPlatform};
pub use tag::{Tag, TagAccess, TagSpace, TagValue};
