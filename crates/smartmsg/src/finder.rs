//! The SM-FINDER: the Smart Message Contory encapsulates context queries
//! in (paper §5.2).
//!
//! The finder is routed towards nodes exposing the desired context tag
//! (the tag whose name matches the query's SELECT clause). At each
//! provider it evaluates the query's WHERE / FRESHNESS / EVENT
//! requirements via a caller-supplied filter; matching tag values are
//! saved in the SM, which returns to the issuer. A `hopCnt` tracks how
//! far each result travelled so the issuer can discard providers outside
//! the `numHops` range of interest.
//!
//! Routing is content-based with learning: the first query for a tag
//! explores depth-first over participating neighbors (building a route
//! costs ≈ 2× a routed retrieval, as the paper notes); the discovered
//! path is installed in the issuer's route table and followed directly by
//! subsequent finders.

use crate::program::{SmAction, SmContext, SmProgram};
use crate::tag::Tag;
use radio::NodeId;
use simkit::SimTime;
use std::any::Any;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// How many provider nodes the finder should gather results from
/// (the `numNodes` of the query's `FROM adHocNetwork(numNodes, numHops)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumNodes {
    /// All nodes discoverable within the hop limit.
    All,
    /// The first `k` nodes found.
    First(u32),
}

impl NumNodes {
    fn satisfied(self, have: usize) -> bool {
        match self {
            NumNodes::All => false,
            NumNodes::First(k) => have >= k as usize,
        }
    }
}

/// Predicate evaluated at the provider's node against a candidate tag
/// (this is where Contory's WHERE / FRESHNESS / EVENT clauses plug in).
pub type TagFilter = Rc<dyn Fn(&Tag, SimTime) -> bool>;

/// Specification of a finder run.
#[derive(Clone)]
pub struct FinderSpec {
    /// Content tag to search for (the SELECT clause's type).
    pub tag: String,
    /// Key for authenticated tags, if any.
    pub key: Option<String>,
    /// Optional per-tag filter (WHERE/FRESHNESS/EVENT evaluation).
    pub filter: Option<TagFilter>,
    /// Result multiplicity.
    pub num_nodes: NumNodes,
    /// Maximum distance (in hops) of providers of interest.
    pub num_hops: u32,
    /// Serialized size of the carried query (Table 1: 205 bytes).
    pub query_size: usize,
    /// If set, only results from this specific entity count (queries whose
    /// destination is an entity identifier, e.g. "when is my friend near").
    pub target_entity: Option<NodeId>,
}

impl FinderSpec {
    /// A spec with paper-default sizes: find `tag` on the first node
    /// within `num_hops`.
    pub fn first_match(tag: impl Into<String>, num_hops: u32) -> Self {
        FinderSpec {
            tag: tag.into(),
            key: None,
            filter: None,
            num_nodes: NumNodes::First(1),
            num_hops,
            query_size: 205,
            target_entity: None,
        }
    }
}

impl fmt::Debug for FinderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FinderSpec")
            .field("tag", &self.tag)
            .field("num_nodes", &self.num_nodes)
            .field("num_hops", &self.num_hops)
            .field("target_entity", &self.target_entity)
            .finish()
    }
}

/// One matching tag carried home by the finder.
#[derive(Clone, Debug)]
pub struct FinderResult {
    /// Node that provided the tag.
    pub provider: NodeId,
    /// Snapshot of the tag at evaluation time.
    pub tag: Tag,
    /// Provider's distance from the issuer when found.
    pub found_depth: u32,
    /// Total migrations the SM had performed when the value was saved
    /// (the paper's `hopCnt`).
    pub hop_cnt: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Following a cached route (index into the route path).
    Routed(usize),
    /// Depth-first exploration.
    Explore,
    /// Heading home along the DFS path.
    Homebound,
}

/// The finder program. Inject via [`crate::SmNode::inject`]; the outcome
/// payload is an `Rc<Vec<FinderResult>>`.
pub struct Finder {
    spec: FinderSpec,
    mode: Mode,
    visited: BTreeSet<NodeId>,
    /// Path from origin to the current node (parents, excluding current).
    depth_path: Vec<NodeId>,
    /// Route being followed (origin-side copy), if any.
    route: Option<Vec<NodeId>>,
    /// Path (origin→provider) of the first successful provider, recorded
    /// for route installation.
    found_path: Option<Vec<NodeId>>,
    results: Vec<FinderResult>,
    started: bool,
}

impl Finder {
    /// Creates a finder for a spec.
    pub fn new(spec: FinderSpec) -> Self {
        Finder {
            spec,
            mode: Mode::Explore,
            visited: BTreeSet::new(),
            depth_path: Vec::new(),
            route: None,
            found_path: None,
            results: Vec::new(),
            started: false,
        }
    }

    fn depth(&self) -> u32 {
        self.depth_path.len() as u32
    }

    /// Evaluates the local tag space; records a result if it matches.
    fn harvest(&mut self, ctx: &SmContext<'_>) {
        if ctx.node == ctx.origin {
            return;
        }
        if let Some(entity) = self.spec.target_entity {
            if ctx.node != entity {
                return;
            }
        }
        let Some(tag) = ctx.tags.read(&self.spec.tag, ctx.now, self.spec.key.as_deref()) else {
            return;
        };
        let passes = match &self.spec.filter {
            Some(f) => f(tag, ctx.now),
            None => true,
        };
        if passes && !self.results.iter().any(|r| r.provider == ctx.node) {
            self.results.push(FinderResult {
                provider: ctx.node,
                tag: tag.clone(),
                found_depth: self.depth(),
                hop_cnt: ctx.hop_cnt,
            });
            if self.found_path.is_none() {
                let mut p = self.depth_path.clone();
                p.push(ctx.node);
                self.found_path = Some(p);
            }
        }
    }

    fn done(&self) -> bool {
        self.spec.num_nodes.satisfied(self.results.len())
    }

    fn go_home(&mut self, ctx: &SmContext<'_>) -> SmAction {
        self.mode = Mode::Homebound;
        if ctx.node == ctx.origin {
            return SmAction::Complete;
        }
        match self.depth_path.pop() {
            Some(parent) => SmAction::Migrate(parent),
            None => SmAction::Complete, // lost; runtime reports off-origin
        }
    }

    fn explore_step(&mut self, ctx: &mut SmContext<'_>) -> SmAction {
        if self.done() {
            return self.go_home(ctx);
        }
        // Try an unvisited participating neighbor within the hop budget.
        if self.depth() < self.spec.num_hops {
            let candidate = ctx
                .neighbors
                .iter()
                .copied()
                .find(|n| !self.visited.contains(n));
            if let Some(next) = candidate {
                self.visited.insert(next);
                self.depth_path.push(ctx.node);
                // depth_path now includes current; on arrival the current
                // node is the parent — consistent with runtime's chain.
                return SmAction::Migrate(next);
            }
        }
        // Exhausted here: backtrack.
        if ctx.node == ctx.origin {
            return SmAction::Complete;
        }
        match self.depth_path.pop() {
            Some(parent) => SmAction::Migrate(parent),
            None => SmAction::Complete,
        }
    }
}

impl SmProgram for Finder {
    fn code_name(&self) -> &'static str {
        "sm-finder-v1"
    }

    fn code_size(&self) -> usize {
        2_048
    }

    fn data_size(&self) -> usize {
        self.spec.query_size + self.results.iter().map(|r| r.tag.value.wire_size + 32).sum::<usize>()
    }

    fn run(&mut self, ctx: &mut SmContext<'_>) -> SmAction {
        if !self.started {
            self.started = true;
            self.visited.insert(ctx.origin);
            // Fast path: a cached route for this tag.
            if let Some(path) = ctx.routes.get(&self.spec.tag) {
                if !path.is_empty() && path.len() as u32 <= self.spec.num_hops {
                    self.route = Some(path.clone());
                    self.mode = Mode::Routed(0);
                }
            }
        }

        // A migration failed: fall back to exploration from here.
        if let Some(failed) = ctx.migration_failed.take() {
            self.visited.insert(failed);
            // Undo the depth-path entry pushed for the failed migration
            // (we never actually left this node).
            if self.depth_path.last() == Some(&ctx.node) {
                self.depth_path.pop();
            }
            if matches!(self.mode, Mode::Routed(_)) {
                // The cached route is stale; drop it at the origin when we
                // get back (cleared below on completion) and explore.
                self.mode = Mode::Explore;
            } else if self.mode == Mode::Homebound {
                // Cannot get home: complete where we are (the runtime will
                // report the loss).
                return SmAction::Complete;
            }
        }

        match self.mode {
            Mode::Routed(idx) => {
                self.harvest(ctx);
                if self.done() {
                    return self.go_home(ctx);
                }
                let route = self.route.clone().unwrap_or_default();
                if let Some(&next) = route.get(idx) {
                    self.mode = Mode::Routed(idx + 1);
                    self.visited.insert(next);
                    self.depth_path.push(ctx.node);
                    SmAction::Migrate(next)
                } else {
                    // Route exhausted without satisfying the query:
                    // explore onwards from here.
                    self.mode = Mode::Explore;
                    self.explore_step(ctx)
                }
            }
            Mode::Explore => {
                self.harvest(ctx);
                let action = self.explore_step(ctx);
                if action == SmAction::Complete && ctx.node == ctx.origin {
                    self.install_route(ctx);
                }
                action
            }
            Mode::Homebound => {
                if ctx.node == ctx.origin {
                    self.install_route(ctx);
                    return SmAction::Complete;
                }
                match self.depth_path.pop() {
                    Some(parent) => SmAction::Migrate(parent),
                    None => SmAction::Complete,
                }
            }
        }
    }

    fn finish(self: Box<Self>) -> Rc<dyn Any> {
        Rc::new(self.results)
    }
}

impl Finder {
    /// Installs (or refreshes) the origin's route entry for this tag from
    /// the first successful provider path. Clears stale routes when the
    /// search failed.
    fn install_route(&mut self, ctx: &mut SmContext<'_>) {
        match &self.found_path {
            Some(path) if !path.is_empty() => {
                // Path recorded as origin,…,provider; the route table
                // stores the hops *after* the origin.
                let hops: Vec<NodeId> =
                    path.iter().copied().filter(|&n| n != ctx.origin).collect();
                if !hops.is_empty() {
                    ctx.routes.insert(self.spec.tag.clone(), hops);
                }
            }
            _ => {
                ctx.routes.remove(&self.spec.tag);
            }
        }
    }
}

impl fmt::Debug for Finder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Finder")
            .field("spec", &self.spec)
            .field("mode", &self.mode)
            .field("results", &self.results.len())
            .finish()
    }
}
