//! The per-node SM runtime and the migration machinery.
//!
//! Mirrors the four components of the real platform (§5.1 of the paper):
//! an **admission manager** (bounded resident SMs), a **code cache**
//! (migrations to nodes holding the code brick ship only data), a
//! **scheduler** (a thread-switch delay before each execution step — the
//! 12–14 % share of retrieval latency), and the **tag space**.
//!
//! Migration cost per hop = connection establishment + serialization +
//! transfer (over the WiFi medium) + thread switch, with defaults tuned so
//! a routed one-hop retrieval (out + back) takes ≈ 761 ms and two hops
//! ≈ 1 422 ms, with the component break-up the paper reports.

use crate::program::{SmAction, SmContext, SmError, SmOutcome, SmProgram};
use crate::tag::{Tag, TagSpace, TagValue};
use phone::Phone;
use radio::wifi::WifiRadio;
use radio::NodeId;
use simkit::{DetRng, Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Calibration constants of the SM platform.
#[derive(Clone, Debug)]
pub struct SmParams {
    /// One-time serialization cost when an SM is injected at its origin.
    pub issuer_serialize: SimDuration,
    /// One-time dispatch cost when an SM is injected.
    pub issuer_thread: SimDuration,
    /// TCP connection establishment per migration (4–5 % share).
    pub connect: SimDuration,
    /// Fixed serialization cost per migration (26–33 % share with the
    /// per-byte part).
    pub serialize_base: SimDuration,
    /// Serialization cost per byte shipped.
    pub serialize_per_byte: SimDuration,
    /// Fixed transfer overhead per migration beyond the WiFi airtime
    /// (J2ME-era socket stack; 51–54 % share together with airtime).
    pub transfer_base: SimDuration,
    /// Scheduler dispatch (thread switch) on arrival (12–14 % share).
    pub thread_switch: SimDuration,
    /// Size of the SM's execution control state on the wire.
    pub control_state_size: usize,
    /// Latency of publishing a tag (Table 1: 0.130 ms — a hashtable put).
    pub publish_mean: SimDuration,
    /// Publish latency standard deviation.
    pub publish_std: SimDuration,
    /// Code-cache capacity (bricks per node).
    pub code_cache_capacity: usize,
    /// Admission manager: maximum SMs resident at a node.
    pub max_resident_sms: u32,
    /// Relative jitter applied to each migration leg.
    pub jitter: f64,
}

impl Default for SmParams {
    fn default() -> Self {
        SmParams {
            issuer_serialize: SimDuration::from_millis(60),
            issuer_thread: SimDuration::from_millis(40),
            connect: SimDuration::from_millis(15),
            serialize_base: SimDuration::from_millis(86),
            serialize_per_byte: SimDuration::from_micros(2),
            transfer_base: SimDuration::from_millis(175),
            thread_switch: SimDuration::from_millis(25),
            control_state_size: 256,
            publish_mean: SimDuration::from_micros(130),
            publish_std: SimDuration::from_micros(4),
            code_cache_capacity: 16,
            max_resident_sms: 8,
            jitter: 0.02,
        }
    }
}

/// The tag every participating node exposes (paper §5.2: "the
/// `WiFiReference` expresses its willingness to participate in the Contory
/// ad hoc network by exposing the tag `contory`").
pub const PARTICIPATION_TAG: &str = "contory";

struct NodeState {
    wifi: WifiRadio,
    phone: Phone,
    tags: TagSpace,
    routes: BTreeMap<String, Vec<NodeId>>,
    code_cache: VecDeque<&'static str>,
    resident: u32,
    rng: DetRng,
}

impl NodeState {
    fn code_cached(&self, name: &str) -> bool {
        self.code_cache.iter().any(|&n| n == name)
    }

    fn cache_code(&mut self, name: &'static str, capacity: usize) {
        if self.code_cached(name) {
            return;
        }
        if self.code_cache.len() >= capacity {
            self.code_cache.pop_front();
        }
        self.code_cache.push_back(name);
    }
}

struct PlatformInner {
    sim: Sim,
    params: SmParams,
    nodes: BTreeMap<NodeId, Rc<RefCell<NodeState>>>,
    next_sm: u64,
}

/// An injected SM travelling the network.
struct SmInstance {
    id: u64,
    origin: NodeId,
    program: Box<dyn SmProgram>,
    hop_cnt: u32,
    migration_failed: Option<NodeId>,
    cancelled: Rc<Cell<bool>>,
    callback: Rc<RefCell<Option<Box<dyn FnOnce(SmOutcome)>>>>,
    /// Path the runtime replays for the `Return` action (outbound visits).
    path: Vec<NodeId>,
    /// Root obskit span covering this SM's whole journey; per-hop
    /// connect/serialize/transfer/thread-switch spans parent to it.
    span: Option<obskit::SpanId>,
}

/// The Smart Messages platform for one simulated network.
#[derive(Clone)]
pub struct SmPlatform {
    inner: Rc<RefCell<PlatformInner>>,
}

impl SmPlatform {
    /// Creates a platform.
    pub fn new(sim: &Sim, params: SmParams) -> Self {
        SmPlatform {
            inner: Rc::new(RefCell::new(PlatformInner {
                sim: sim.clone(),
                params,
                nodes: BTreeMap::new(),
                next_sm: 0,
            })),
        }
    }

    /// Installs the SM runtime on a node. The node immediately exposes
    /// the `"contory"` participation tag.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is already installed on this node.
    pub fn install(&self, wifi: &WifiRadio, phone: &Phone, seed: u64) -> SmNode {
        let node = wifi.node();
        let mut tags = TagSpace::new();
        tags.publish(Tag::new(
            PARTICIPATION_TAG,
            TagValue::text("1"),
            self.sim().now(),
        ));
        let state = Rc::new(RefCell::new(NodeState {
            wifi: wifi.clone(),
            phone: phone.clone(),
            tags,
            routes: BTreeMap::new(),
            code_cache: VecDeque::new(),
            resident: 0,
            rng: DetRng::new(seed),
        }));
        {
            let mut inner = self.inner.borrow_mut();
            let prev = inner.nodes.insert(node, state);
            assert!(prev.is_none(), "SM runtime already installed on {node}");
        }
        SmNode {
            platform: self.clone(),
            node,
        }
    }

    fn sim(&self) -> Sim {
        self.inner.borrow().sim.clone()
    }

    fn params(&self) -> SmParams {
        self.inner.borrow().params.clone()
    }

    fn state_of(&self, node: NodeId) -> Option<Rc<RefCell<NodeState>>> {
        self.inner.borrow().nodes.get(&node).cloned()
    }

    /// Adjacent nodes of `of` that participate in the SM network right
    /// now: WiFi-joined neighbors with a live `"contory"` tag.
    fn participating_neighbors(&self, of: NodeId) -> Vec<NodeId> {
        let Some(state) = self.state_of(of) else {
            return Vec::new();
        };
        let wifi_neighbors = state.borrow().wifi.neighbors();
        let now = self.sim().now();
        wifi_neighbors
            .into_iter()
            .filter(|n| {
                self.state_of(*n).is_some_and(|s| {
                    let s = s.borrow();
                    s.phone.is_on() && s.tags.exposes(PARTICIPATION_TAG, now)
                })
            })
            .collect()
    }

    /// Whether `node` currently has `code_name` in its code cache
    /// (exposed for the code-cache ablation bench).
    pub fn code_cached(&self, node: NodeId, code_name: &str) -> bool {
        self.state_of(node)
            .is_some_and(|s| s.borrow().code_cached(code_name))
    }

    /// One execution step of `sm` at `node`, after the scheduler's
    /// thread-switch delay has already been paid.
    fn exec(&self, mut sm: SmInstance, node: NodeId) {
        if sm.cancelled.get() {
            self.leave(node);
            return;
        }
        let Some(state_rc) = self.state_of(node) else {
            self.fail(sm, SmError::Unreachable(node));
            return;
        };
        if !state_rc.borrow().phone.is_on() {
            self.leave(node);
            self.fail(sm, SmError::Unreachable(node));
            return;
        }
        let neighbors = self.participating_neighbors(node);
        let now = self.sim().now();
        let action = {
            let mut st = state_rc.borrow_mut();
            let st = &mut *st; // split field borrows through the RefMut
            let mut ctx = SmContext {
                node,
                origin: sm.origin,
                hop_cnt: sm.hop_cnt,
                now,
                tags: &mut st.tags,
                neighbors,
                routes: &mut st.routes,
                migration_failed: sm.migration_failed.take(),
            };
            sm.program.run(&mut ctx)
        };
        match action {
            SmAction::Migrate(next) => {
                self.migrate(sm, node, next, true);
            }
            SmAction::Return => {
                if node == sm.origin {
                    self.complete(sm, node);
                } else {
                    // `path` is the origin→parent chain of the current
                    // node; walk it backwards hop by hop.
                    let Some(&next) = sm.path.last() else {
                        let origin = sm.origin;
                        self.leave(node);
                        self.fail(sm, SmError::Unreachable(origin));
                        return;
                    };
                    sm.path.pop();
                    self.return_hop(sm, node, next);
                }
            }
            SmAction::Complete => {
                if node == sm.origin {
                    self.complete(sm, node);
                } else {
                    self.leave(node);
                    self.fail(sm, SmError::LostOffOrigin(node));
                }
            }
        }
    }

    /// Runtime-managed homeward hop: migrate without running the program
    /// until the origin is reached.
    fn return_hop(&self, sm: SmInstance, from: NodeId, to: NodeId) {
        self.migrate(sm, from, to, false);
    }

    /// Performs one migration. If `resume` the program runs at the target;
    /// otherwise the runtime continues the `Return` walk.
    fn migrate(&self, mut sm: SmInstance, from: NodeId, to: NodeId, resume: bool) {
        let params = self.params();
        let Some(from_state) = self.state_of(from) else {
            self.fail(sm, SmError::Unreachable(from));
            return;
        };
        // Wire size: control state + data bricks + code bricks unless the
        // target already caches the code.
        let code_needed = !self
            .state_of(to)
            .is_some_and(|s| s.borrow().code_cached(sm.program.code_name()));
        let wire = params.control_state_size
            + sm.program.data_size()
            + if code_needed { sm.program.code_size() } else { 0 };
        let nominal = params.connect
            + params.serialize_base
            + params.serialize_per_byte * wire as u64
            + params.transfer_base;
        let pre = {
            let mut st = from_state.borrow_mut();
            st.rng.jitter(nominal, params.jitter)
        };
        // Span attribution: the jittered pre-send cost is split over the
        // connect and serialize components proportionally (the jitter is
        // applied to their sum); the transfer span opens where the
        // transfer_base share begins and closes when the WiFi hop
        // delivers, so it covers TCP-stack overhead plus airtime — the
        // paper's 51–54 % "transfer" attribution.
        obskit::count("sm_migrations", 1);
        obskit::count("sm_wire_bytes", wire as u64);
        obskit::count(
            if code_needed {
                "sm_code_cache_misses"
            } else {
                "sm_code_cache_hits"
            },
            1,
        );
        let t0 = self.sim().now();
        let scale = {
            let nominal_us = nominal.as_micros();
            let f = if nominal_us == 0 {
                1.0
            } else {
                pre.as_micros() as f64 / nominal_us as f64
            };
            move |d: SimDuration| {
                SimDuration::from_micros((d.as_micros() as f64 * f).round() as u64)
            }
        };
        let connect_d = scale(params.connect);
        let serialize_d = scale(params.serialize_base + params.serialize_per_byte * wire as u64);
        let hop_label = format!("hop:{from}->{to}");
        let c_span = obskit::start(obskit::Phase::Connect, &hop_label, sm.span, t0);
        obskit::end(c_span, t0 + connect_d);
        let s_span =
            obskit::start(obskit::Phase::Serialize, &hop_label, sm.span, t0 + connect_d);
        obskit::end(s_span, t0 + connect_d + serialize_d);
        let t_span = obskit::start(
            obskit::Phase::Transfer,
            &hop_label,
            sm.span,
            t0 + connect_d + serialize_d,
        );
        let wifi = from_state.borrow().wifi.clone();
        self.leave(from);
        let platform = self.clone();
        let sim = self.sim();
        sim.schedule_in(pre, move || {
            if sm.cancelled.get() {
                obskit::end(t_span, platform.sim().now());
                return;
            }
            let platform2 = platform.clone();
            wifi.send(to, wire, Rc::new(()), move |res| {
                obskit::end(t_span, platform2.sim().now());
                if res.is_err() {
                    obskit::count("sm_migration_failures", 1);
                }
                match res {
                    Ok(()) => {
                        sm.hop_cnt += 1;
                        if resume {
                            // Maintain the origin→parent chain: moving to
                            // our parent is a backtrack (pop); anything
                            // else deepens the path (push).
                            if sm.path.last() == Some(&to) {
                                sm.path.pop();
                            } else {
                                sm.path.push(from);
                            }
                        }
                        platform2.arrive(sm, to, from, resume);
                    }
                    Err(_e) => {
                        // Bounce: resume at the source so the program can
                        // pick an alternative.
                        sm.migration_failed = Some(to);
                        platform2.arrive_back(sm, from, resume);
                    }
                }
            });
        });
    }

    /// SM arrives at `to` (from `from`): admission control, code caching,
    /// scheduling.
    fn arrive(&self, mut sm: SmInstance, to: NodeId, from: NodeId, resume: bool) {
        if sm.cancelled.get() {
            return;
        }
        let params = self.params();
        let Some(state_rc) = self.state_of(to) else {
            self.fail(sm, SmError::Unreachable(to));
            return;
        };
        {
            let mut st = state_rc.borrow_mut();
            if st.resident >= params.max_resident_sms {
                drop(st);
                // Admission denied: bounce to where we came from, undoing
                // the path mutation of this migration.
                obskit::count("sm_admission_denied", 1);
                obskit::event(
                    obskit::Phase::Admission,
                    &format!("deny:{to}"),
                    sm.span,
                    self.sim().now(),
                );
                if resume {
                    if sm.path.last() == Some(&from) {
                        sm.path.pop();
                    } else {
                        sm.path.push(to);
                    }
                }
                sm.migration_failed = Some(to);
                self.arrive_back(sm, from, resume);
                return;
            }
            st.resident += 1;
            st.cache_code(sm.program.code_name(), params.code_cache_capacity);
        }
        obskit::count("sm_admitted", 1);
        let platform = self.clone();
        let dispatch = params.thread_switch;
        let now = self.sim().now();
        let ts_span = obskit::start(
            obskit::Phase::ThreadSwitch,
            &format!("dispatch:{to}"),
            sm.span,
            now,
        );
        obskit::end(ts_span, now + dispatch);
        self.sim().schedule_in(dispatch, move || {
            if resume {
                platform.exec(sm, to);
            } else if to == sm.origin {
                platform.complete(sm, to);
            } else {
                // Continue the homeward walk.
                let Some(&next) = sm.path.last() else {
                    platform.leave(to);
                    platform.fail(sm, SmError::Unreachable(to));
                    return;
                };
                let mut sm = sm;
                sm.path.pop();
                platform.return_hop(sm, to, next);
            }
        });
    }

    /// A failed migration returns control to the source node (no extra
    /// admission — the SM never left).
    fn arrive_back(&self, sm: SmInstance, at: NodeId, resume: bool) {
        if sm.cancelled.get() {
            return;
        }
        if let Some(st) = self.state_of(at) {
            st.borrow_mut().resident += 1;
        }
        obskit::count("sm_bounces", 1);
        let platform = self.clone();
        let dispatch = self.params().thread_switch;
        let now = self.sim().now();
        let ts_span = obskit::start(
            obskit::Phase::ThreadSwitch,
            &format!("bounce:{at}"),
            sm.span,
            now,
        );
        obskit::end(ts_span, now + dispatch);
        self.sim().schedule_in(dispatch, move || {
            if resume {
                platform.exec(sm, at);
            } else {
                // Homeward walk hit a dead hop: the SM is lost.
                let origin = sm.origin;
                platform.leave(at);
                platform.fail(sm, SmError::Unreachable(origin));
            }
        });
    }

    fn leave(&self, node: NodeId) {
        if let Some(st) = self.state_of(node) {
            let mut st = st.borrow_mut();
            st.resident = st.resident.saturating_sub(1);
        }
    }

    fn complete(&self, sm: SmInstance, node: NodeId) {
        self.leave(node);
        if sm.cancelled.get() {
            return;
        }
        sm.cancelled.set(true);
        obskit::end(sm.span, self.sim().now());
        obskit::count("sm_completed", 1);
        obskit::observe("sm_hop_count", sm.hop_cnt as u64);
        let payload = sm.program.finish();
        if let Some(cb) = sm.callback.borrow_mut().take() {
            cb(SmOutcome::Completed(payload));
        }
    }

    fn fail(&self, sm: SmInstance, err: SmError) {
        if sm.cancelled.get() {
            return;
        }
        sm.cancelled.set(true);
        obskit::end(sm.span, self.sim().now());
        obskit::count("sm_failed", 1);
        if let Some(cb) = sm.callback.borrow_mut().take() {
            cb(SmOutcome::Failed(err));
        }
    }
}

impl fmt::Debug for SmPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmPlatform")
            .field("nodes", &self.inner.borrow().nodes.len())
            .finish()
    }
}

/// Handle to the SM runtime on one node.
#[derive(Clone)]
pub struct SmNode {
    platform: SmPlatform,
    node: NodeId,
}

impl SmNode {
    /// The node this runtime runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning platform.
    pub fn platform(&self) -> &SmPlatform {
        &self.platform
    }

    fn state(&self) -> Rc<RefCell<NodeState>> {
        self.platform
            .state_of(self.node)
            // `install` is the only way to obtain an SmNode handle, so the
            // platform map always holds this node.
            .expect("SM runtime not installed") // lint:allow(panic-reachable) install-time invariant
    }

    /// Publishes a tag in the local tag space. Completion (a hashtable
    /// put, ≈ 0.13 ms — Table 1's WiFi-based `publishCxtItem`) via `cb`.
    pub fn publish_tag(&self, tag: Tag, cb: impl FnOnce() + 'static) {
        let params = self.platform.params();
        let dur = {
            let state = self.state();
            let mut st = state.borrow_mut();
            st.rng.gauss_duration(params.publish_mean, params.publish_std)
        };
        obskit::count("sm_tag_publishes", 1);
        obskit::observe("sm_publish_us", dur.as_micros());
        obskit::event(
            obskit::Phase::Publish,
            &format!("tag:{}@{}", tag.name, self.node),
            None,
            self.platform.sim().now(),
        );
        let state = self.state();
        self.platform.sim().schedule_in(dur, move || {
            state.borrow_mut().tags.publish(tag);
            cb();
        });
    }

    /// Publishes a tag synchronously (for setup code and tests).
    pub fn publish_tag_now(&self, tag: Tag) {
        self.state().borrow_mut().tags.publish(tag);
    }

    /// Removes a tag from the local tag space.
    pub fn remove_tag(&self, name: &str) {
        self.state().borrow_mut().tags.remove(name);
    }

    /// Reads a local tag (respecting expiry and access).
    pub fn read_tag(&self, name: &str, key: Option<&str>) -> Option<Tag> {
        let now = self.platform.sim().now();
        self.state().borrow().tags.read(name, now, key).cloned()
    }

    /// Names of live local tags.
    pub fn tag_names(&self) -> Vec<String> {
        let now = self.platform.sim().now();
        self.state()
            .borrow()
            .tags
            .names(now)
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// Adjacent participating nodes right now.
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.platform.participating_neighbors(self.node)
    }

    /// Clears this node's content-route table (used by ablations).
    pub fn clear_routes(&self) {
        self.state().borrow_mut().routes.clear();
    }

    /// Injects an SM at this node. The outcome (completion, failure, or
    /// timeout) is delivered exactly once via `cb`.
    pub fn inject(
        &self,
        program: Box<dyn SmProgram>,
        timeout: SimDuration,
        cb: impl FnOnce(SmOutcome) + 'static,
    ) {
        let params = self.platform.params();
        let sim = self.platform.sim();
        let cancelled = Rc::new(Cell::new(false));
        let callback: Rc<RefCell<Option<Box<dyn FnOnce(SmOutcome)>>>> =
            Rc::new(RefCell::new(Some(Box::new(cb))));
        let id = {
            let mut inner = self.platform.inner.borrow_mut();
            inner.next_sm += 1;
            inner.next_sm
        };
        obskit::count("sm_injected", 1);
        let now = sim.now();
        let root = obskit::start(
            obskit::Phase::Migrate,
            &format!("sm:{id}@{}", self.node),
            None,
            now,
        );
        // Issuer-side one-time costs (paper: 60 ms serialization + 40 ms
        // dispatch before the first hop leaves the phone).
        let iser = obskit::start(obskit::Phase::Serialize, "issuer", root, now);
        obskit::end(iser, now + params.issuer_serialize);
        let ithr = obskit::start(
            obskit::Phase::ThreadSwitch,
            "issuer_dispatch",
            root,
            now + params.issuer_serialize,
        );
        obskit::end(ithr, now + params.issuer_serialize + params.issuer_thread);
        let sm = SmInstance {
            id,
            origin: self.node,
            program,
            hop_cnt: 0,
            migration_failed: None,
            cancelled: cancelled.clone(),
            callback: callback.clone(),
            path: Vec::new(),
            span: root,
        };
        let _ = sm.id;
        // Timeout watchdog.
        {
            let cancelled = cancelled.clone();
            let callback = callback.clone();
            let sim2 = sim.clone();
            sim.schedule_in(timeout, move || {
                if cancelled.get() {
                    return;
                }
                cancelled.set(true);
                obskit::end(root, sim2.now());
                obskit::count("sm_timeouts", 1);
                if let Some(cb) = callback.borrow_mut().take() {
                    cb(SmOutcome::TimedOut);
                }
            });
        }
        // Injection overhead, then first execution at the origin.
        let platform = self.platform.clone();
        let node = self.node;
        if let Some(st) = self.platform.state_of(node) {
            st.borrow_mut().resident += 1;
        }
        sim.schedule_in(params.issuer_serialize + params.issuer_thread, move || {
            platform.exec(sm, node);
        });
    }
}

impl fmt::Debug for SmNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmNode").field("node", &self.node).finish()
    }
}
