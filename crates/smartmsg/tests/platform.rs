//! Integration tests for the Smart Messages platform over the simulated
//! WiFi ad hoc medium, checking the paper's §5.2/§6.1 behaviours.

use phone::{Phone, PhoneConfig, PhoneModel};
use radio::wifi::{WifiMedium, WifiParams};
use radio::{NodeId, Position, World};
use simkit::{Sim, SimDuration, SimTime};
use smartmsg::finder::{Finder, FinderResult, FinderSpec, NumNodes};
use smartmsg::{SmNode, SmOutcome, SmParams, SmPlatform, Tag, TagValue};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

struct Rig {
    sim: Sim,
    world: World,
    wifi: WifiMedium,
    platform: SmPlatform,
}

impl Rig {
    fn new() -> Self {
        let sim = Sim::new();
        let world = World::new(&sim);
        let wifi = WifiMedium::new(&sim, &world, WifiParams::default());
        let platform = SmPlatform::new(&sim, SmParams::default());
        Rig {
            sim,
            world,
            wifi,
            platform,
        }
    }

    /// Adds a communicator at (x, y) with WiFi up and the SM runtime
    /// installed.
    fn node(&self, x: f64, y: f64) -> SmNode {
        let id = self.world.add_node(Position::new(x, y));
        let phone = Phone::new(
            &self.sim,
            PhoneConfig {
                model: PhoneModel::Nokia9500,
                ..PhoneConfig::default()
            },
        );
        let radio = self.wifi.attach(id, &phone, id.0 as u64 + 50);
        radio.power_on(|| {});
        self.platform.install(&radio, &phone, id.0 as u64 + 500)
    }

    /// A line of `n` nodes spaced 80 m apart (range is 100 m, so only
    /// adjacent nodes hear each other).
    fn line(&self, n: usize) -> Vec<SmNode> {
        let nodes: Vec<SmNode> = (0..n).map(|i| self.node(i as f64 * 80.0, 0.0)).collect();
        self.sim.run_for(SimDuration::from_secs(5)); // WiFi joins
        nodes
    }
}

fn run_finder(rig: &Rig, issuer: &SmNode, spec: FinderSpec) -> (Vec<FinderResult>, SimDuration) {
    let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    let t0 = rig.sim.now();
    issuer.inject(
        Box::new(Finder::new(spec)),
        SimDuration::from_secs(120),
        move |outcome| *o.borrow_mut() = Some(outcome),
    );
    while out.borrow().is_none() {
        assert!(rig.sim.step(), "simulation drained without an outcome");
    }
    let elapsed = rig.sim.now() - t0;
    let outcome = out.borrow_mut().take().unwrap();
    let results = outcome
        .completed_as::<Vec<FinderResult>>()
        .unwrap_or_else(|| panic!("finder did not complete: {outcome:?}"));
    (results.as_ref().clone(), elapsed)
}

fn temp_tag(now: SimTime) -> Tag {
    Tag::new(
        "temperature",
        TagValue::with_data("14.0C,0.2C,trusted", Rc::new(14.0f64), 136),
        now,
    )
}

#[test]
fn publish_tag_latency_matches_table1() {
    // Table 1: WiFi-based publishCxtItem = 0.130 ms (a hashtable put).
    let rig = Rig::new();
    let nodes = rig.line(1);
    let t0 = rig.sim.now();
    let done_at: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
    let d = done_at.clone();
    let sim = rig.sim.clone();
    nodes[0].publish_tag(temp_tag(t0), move || d.set(Some(sim.now())));
    rig.sim.run_for(SimDuration::from_millis(10));
    let ms = (done_at.get().expect("publish completed") - t0).as_millis_f64();
    assert!((0.10..0.16).contains(&ms), "publish took {ms} ms");
    assert!(nodes[0].read_tag("temperature", None).is_some());
}

#[test]
fn one_hop_retrieval_latency_matches_table1() {
    // Table 1: WiFi-based one-hop getCxtItem ≈ 761 ms (routed).
    let rig = Rig::new();
    let nodes = rig.line(2);
    nodes[1].publish_tag_now(temp_tag(rig.sim.now()));
    // Warm-up: builds the route and populates code caches.
    let (r, _) = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    assert_eq!(r.len(), 1);
    let (results, elapsed) = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].provider, nodes[1].node());
    assert_eq!(results[0].found_depth, 1);
    let ms = elapsed.as_millis_f64();
    assert!((700.0..830.0).contains(&ms), "one-hop retrieval {ms} ms");
}

#[test]
fn two_hop_retrieval_latency_matches_table1() {
    // Table 1: WiFi-based two-hop getCxtItem ≈ 1422 ms (three
    // communicators arranged in a line, as in the paper).
    let rig = Rig::new();
    let nodes = rig.line(3);
    nodes[2].publish_tag_now(temp_tag(rig.sim.now()));
    let _ = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    let (results, elapsed) = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].provider, nodes[2].node());
    assert_eq!(results[0].found_depth, 2);
    let ms = elapsed.as_millis_f64();
    assert!((1300.0..1550.0).contains(&ms), "two-hop retrieval {ms} ms");
}

#[test]
fn route_build_costs_about_twice_the_routed_retrieval() {
    // Branchy topology: the issuer has a decoy branch explored first.
    //   decoy2 - decoy1 - issuer - relay - provider
    // Cold query explores the decoys; warm query follows the route.
    let rig = Rig::new();
    let issuer = rig.node(0.0, 0.0);
    let decoy1 = rig.node(-80.0, 0.0);
    let _decoy2 = rig.node(-160.0, 0.0);
    let _relay = rig.node(80.0, 0.0);
    let provider = rig.node(160.0, 0.0);
    rig.sim.run_for(SimDuration::from_secs(5));
    let _ = decoy1;
    provider.publish_tag_now(temp_tag(rig.sim.now()));
    let (r_cold, cold) = run_finder(&rig, &issuer, FinderSpec::first_match("temperature", 3));
    assert_eq!(r_cold.len(), 1);
    let (r_warm, warm) = run_finder(&rig, &issuer, FinderSpec::first_match("temperature", 3));
    assert_eq!(r_warm.len(), 1);
    let ratio = cold.as_secs_f64() / warm.as_secs_f64();
    assert!(
        (1.5..2.6).contains(&ratio),
        "route build should cost ~2x: cold {cold}, warm {warm}, ratio {ratio:.2}"
    );
}

#[test]
fn num_nodes_all_gathers_every_provider() {
    let rig = Rig::new();
    let nodes = rig.line(4);
    for n in &nodes[1..] {
        n.publish_tag_now(temp_tag(rig.sim.now()));
    }
    let spec = FinderSpec {
        num_nodes: NumNodes::All,
        ..FinderSpec::first_match("temperature", 5)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert_eq!(results.len(), 3);
    let mut providers: Vec<NodeId> = results.iter().map(|r| r.provider).collect();
    providers.sort();
    let mut expect: Vec<NodeId> = nodes[1..].iter().map(|n| n.node()).collect();
    expect.sort();
    assert_eq!(providers, expect);
}

#[test]
fn num_hops_bounds_the_search() {
    let rig = Rig::new();
    let nodes = rig.line(4);
    // Only the farthest node has the tag, 3 hops away.
    nodes[3].publish_tag_now(temp_tag(rig.sim.now()));
    let spec = FinderSpec {
        num_nodes: NumNodes::All,
        ..FinderSpec::first_match("temperature", 2)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert!(results.is_empty(), "3-hop provider must not be found at numHops=2");
}

#[test]
fn filter_rejects_stale_tags() {
    let rig = Rig::new();
    let nodes = rig.line(2);
    nodes[1].publish_tag_now(temp_tag(rig.sim.now()));
    rig.sim.run_for(SimDuration::from_secs(60));
    // FRESHNESS 30 sec: the tag is now 60 s old.
    let spec = FinderSpec {
        filter: Some(Rc::new(|tag: &Tag, now: SimTime| {
            tag.age(now) <= SimDuration::from_secs(30)
        })),
        num_nodes: NumNodes::All,
        ..FinderSpec::first_match("temperature", 3)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert!(results.is_empty());
    // Republishing makes it fresh again.
    nodes[1].publish_tag_now(temp_tag(rig.sim.now()));
    let spec = FinderSpec {
        filter: Some(Rc::new(|tag: &Tag, now: SimTime| {
            tag.age(now) <= SimDuration::from_secs(30)
        })),
        ..FinderSpec::first_match("temperature", 3)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert_eq!(results.len(), 1);
}

#[test]
fn authenticated_tags_need_the_key() {
    let rig = Rig::new();
    let nodes = rig.line(2);
    nodes[1].publish_tag_now(temp_tag(rig.sim.now()).with_key("regatta-2005"));
    let (results, _) = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    assert!(results.is_empty(), "no key, no data");
    let spec = FinderSpec {
        key: Some("regatta-2005".into()),
        ..FinderSpec::first_match("temperature", 3)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert_eq!(results.len(), 1);
}

#[test]
fn target_entity_only_matches_that_node() {
    let rig = Rig::new();
    let nodes = rig.line(3);
    nodes[1].publish_tag_now(temp_tag(rig.sim.now()));
    nodes[2].publish_tag_now(temp_tag(rig.sim.now()));
    let spec = FinderSpec {
        target_entity: Some(nodes[2].node()),
        num_nodes: NumNodes::All,
        ..FinderSpec::first_match("temperature", 4)
    };
    let (results, _) = run_finder(&rig, &nodes[0], spec);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].provider, nodes[2].node());
}

#[test]
fn finder_times_out_when_unreachable() {
    let rig = Rig::new();
    let nodes = rig.line(8);
    // Long fruitless exploration with a short timeout.
    let out: Rc<RefCell<Option<SmOutcome>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    nodes[0].inject(
        Box::new(Finder::new(FinderSpec {
            num_nodes: NumNodes::All,
            ..FinderSpec::first_match("nosuchtag", 7)
        })),
        SimDuration::from_millis(900),
        move |outcome| *o.borrow_mut() = Some(outcome),
    );
    rig.sim.run_until_idle();
    assert!(matches!(out.borrow_mut().take(), Some(SmOutcome::TimedOut)));
}

#[test]
fn code_gets_cached_along_the_way() {
    let rig = Rig::new();
    let nodes = rig.line(3);
    nodes[2].publish_tag_now(temp_tag(rig.sim.now()));
    assert!(!rig.platform.code_cached(nodes[1].node(), "sm-finder-v1"));
    let _ = run_finder(&rig, &nodes[0], FinderSpec::first_match("temperature", 3));
    assert!(rig.platform.code_cached(nodes[1].node(), "sm-finder-v1"));
    assert!(rig.platform.code_cached(nodes[2].node(), "sm-finder-v1"));
}

#[test]
fn dead_intermediate_node_is_routed_around_or_reported() {
    // issuer - relay - provider, plus a side path issuer - alt - provider.
    //   relay at (80, 0); alt at (40, 69) so issuer-alt ~79m, alt-provider ~92m.
    let rig = Rig::new();
    let issuer = rig.node(0.0, 0.0);
    let relay = rig.node(80.0, 0.0);
    let alt = rig.node(78.0, 55.0);
    let provider = rig.node(160.0, 0.0);
    let _ = alt;
    rig.sim.run_for(SimDuration::from_secs(5));
    assert!(rig
        .world
        .in_range(alt.node(), provider.node(), 100.0));
    provider.publish_tag_now(temp_tag(rig.sim.now()));
    // Build route through whichever branch, then kill the relay.
    let (r, _) = run_finder(&rig, &issuer, FinderSpec::first_match("temperature", 3));
    assert_eq!(r.len(), 1);
    // Kill the relay's wifi by moving it far away.
    rig.world.set_position(relay.node(), Position::new(9_000.0, 0.0));
    let (results, _) = run_finder(
        &rig,
        &issuer,
        FinderSpec {
            num_nodes: NumNodes::All,
            ..FinderSpec::first_match("temperature", 3)
        },
    );
    assert_eq!(results.len(), 1, "should find the provider via the alt path");
}

#[test]
fn sm_latency_breakup_matches_paper_shares() {
    // §6.1: connection 4–5 %, serialization 26–33 %, thread switching
    // 12–14 %, transfer 51–54 % of the total latency. Computed from the
    // same parameters the platform uses.
    let p = SmParams::default();
    let wifi = WifiParams::default();
    let wire = 256 + 205; // control state + query, code cached
    let per_mig_connect = p.connect.as_secs_f64();
    let per_mig_serialize =
        p.serialize_base.as_secs_f64() + p.serialize_per_byte.as_secs_f64() * wire as f64;
    let per_mig_transfer = p.transfer_base.as_secs_f64() + wifi.transfer_time(wire).as_secs_f64();
    let per_mig_thread = p.thread_switch.as_secs_f64();
    let issuer = p.issuer_serialize.as_secs_f64() + p.issuer_thread.as_secs_f64();
    let total = issuer
        + 2.0 * (per_mig_connect + per_mig_serialize + per_mig_transfer + per_mig_thread);
    let conn_share = 2.0 * per_mig_connect / total;
    let ser_share = (p.issuer_serialize.as_secs_f64() + 2.0 * per_mig_serialize) / total;
    let thread_share = (p.issuer_thread.as_secs_f64() + 2.0 * per_mig_thread) / total;
    let transfer_share = 2.0 * per_mig_transfer / total;
    assert!((0.035..=0.055).contains(&conn_share), "connection {conn_share:.3}");
    assert!((0.26..=0.34).contains(&ser_share), "serialization {ser_share:.3}");
    assert!((0.11..=0.145).contains(&thread_share), "thread {thread_share:.3}");
    assert!((0.50..=0.56).contains(&transfer_share), "transfer {transfer_share:.3}");
    // and the total is the paper's ~761 ms one-hop retrieval
    assert!((0.72..=0.80).contains(&total), "total {total:.3} s");
}
