//! benchkit — machine-readable perf observability over the paper's §6
//! evaluation suite.
//!
//! The eight bench binaries that regenerate the paper's tables and
//! figures used to print human tables straight into `results/*.txt`;
//! there was no machine-readable perf trajectory and no gate that
//! caught a latency/energy regression before it landed. benchkit closes
//! that gap:
//!
//! * [`Scenario`] — one trait unifying all eight §6 regenerators
//!   (name, seed, paper reference, `run` into typed [`Measurement`]s
//!   with units and paper reference values);
//! * [`RunCtx`] — the per-run collector: measurements, tolerance-band
//!   [`Check`]s, notes, text artifacts, and the simulation cost tally;
//!   the harness installs an [`obskit::Obs`] around every run and
//!   captures the metrics snapshot plus span-derived phase break-ups
//!   into the report;
//! * [`Report`] / [`ScenarioReport`] — one structured source of truth
//!   that renders both the human tables (`results/*.txt`) and the
//!   versioned `BENCH_contory.json` (schema [`report::SCHEMA`]);
//! * [`Baseline`] — the checked-in `results/baseline.json` with
//!   per-metric tolerance bands; `bench_all --check` diffs current vs.
//!   baseline and fails on out-of-band regressions, the perf sibling of
//!   the lintkit and obs gates.
//!
//! # Determinism
//!
//! Everything is seed-driven and sim-clock-only, and every exporter
//! renders from ordered containers — two same-seed `bench_all` runs
//! write byte-identical `BENCH_contory.json` files (asserted by the
//! determinism suite). The crate is dependency-free beyond `simkit` and
//! `obskit`; JSON comes from the hand-rolled [`json`] module because the
//! build environment is offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod json;
pub mod measure;
pub mod report;
pub mod scenario;

pub use baseline::{Baseline, BaselineMetric, Violation, BASELINE_SCHEMA};
pub use json::Json;
pub use measure::{Measurement, Unit};
pub use report::{render_measurement_table, Report, ScenarioReport, SCHEMA};
pub use scenario::{run_scenario, Check, RunCtx, Scenario};

/// Runs every scenario in order and assembles the combined report.
pub fn run_all(scenarios: &[Box<dyn Scenario>]) -> Report {
    let mut report = Report::new();
    for s in scenarios {
        report.scenarios.push(run_scenario(s.as_ref()));
    }
    report
}

/// Convenience for the thin per-scenario bins: run one scenario and
/// return its report together with the rendered text.
pub fn run_and_render(s: &dyn Scenario) -> (ScenarioReport, String) {
    let report = run_scenario(s);
    let text = report.render_text();
    (report, text)
}
