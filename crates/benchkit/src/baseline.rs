//! The perf regression gate: a checked-in baseline with per-metric
//! tolerance bands, diffed against the current run by `bench_all
//! --check`.
//!
//! `results/baseline.json` (schema `contory-bench-baseline/1`) pins one
//! `(scenario, id)` entry per measurement with the value measured when
//! the baseline was written and the tolerances the gate allows:
//! a metric passes iff
//!
//! ```text
//! |current - baseline| <= rel_tol * |baseline| + abs_tol
//! ```
//!
//! Tolerances come from each [`Measurement`]'s `gate_rel_tol` /
//! `gate_abs_tol`, so the scenario that knows a metric's noise floor
//! sets its band — the same spirit (and failure mode) as the lintkit
//! and obs gates: out-of-band means the gate fails loudly, in-band
//! means the perf trajectory is still inside what the repo promised.

use crate::json::Json;
use crate::measure::Unit;
use crate::report::Report;

/// Schema tag stamped into `results/baseline.json`.
pub const BASELINE_SCHEMA: &str = "contory-bench-baseline/1";

/// One pinned metric.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineMetric {
    /// Scenario name the metric belongs to.
    pub scenario: String,
    /// Measurement id inside the scenario.
    pub id: String,
    /// Unit recorded at pin time (a unit change is a gate failure: the
    /// metric's meaning shifted).
    pub unit: Unit,
    /// Value at pin time.
    pub value: f64,
    /// Allowed relative drift (fraction of `|value|`).
    pub rel_tol: f64,
    /// Allowed absolute drift on top of the relative band.
    pub abs_tol: f64,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Pinned metrics in file order.
    pub metrics: Vec<BaselineMetric>,
}

/// One gate violation found by [`Baseline::check`].
#[derive(Clone, Debug)]
pub enum Violation {
    /// The current run no longer produces a pinned metric.
    Missing {
        /// Scenario name.
        scenario: String,
        /// Measurement id.
        id: String,
    },
    /// The metric's unit changed since the baseline was pinned.
    UnitChanged {
        /// Scenario name.
        scenario: String,
        /// Measurement id.
        id: String,
        /// Unit at pin time.
        baseline: Unit,
        /// Unit now.
        current: Unit,
    },
    /// The metric drifted outside its tolerance band.
    OutOfBand {
        /// Scenario name.
        scenario: String,
        /// Measurement id.
        id: String,
        /// Value at pin time.
        baseline: f64,
        /// Value now.
        current: f64,
        /// Maximum absolute drift the band allows.
        allowed: f64,
        /// Unit of the metric.
        unit: Unit,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Missing { scenario, id } => {
                write!(f, "{scenario}/{id}: pinned in the baseline but missing from this run")
            }
            Violation::UnitChanged {
                scenario,
                id,
                baseline,
                current,
            } => write!(
                f,
                "{scenario}/{id}: unit changed {baseline} -> {current} (re-pin the baseline)"
            ),
            Violation::OutOfBand {
                scenario,
                id,
                baseline,
                current,
                allowed,
                unit,
            } => write!(
                f,
                "{scenario}/{id}: {current:.4} {unit} vs baseline {baseline:.4} {unit} \
                 (drift {:.4} > allowed {allowed:.4})",
                (current - baseline).abs()
            ),
        }
    }
}

impl Baseline {
    /// Pins every measurement of `report` at its current value, carrying
    /// each measurement's gate tolerances.
    pub fn from_report(report: &Report) -> Baseline {
        let mut metrics = Vec::new();
        for s in &report.scenarios {
            for m in &s.measurements {
                metrics.push(BaselineMetric {
                    scenario: s.name.clone(),
                    id: m.id.clone(),
                    unit: m.unit,
                    value: m.value,
                    rel_tol: m.gate_rel_tol,
                    abs_tol: m.gate_abs_tol,
                });
            }
        }
        Baseline { metrics }
    }

    /// Renders the baseline file (pretty JSON, byte-deterministic).
    pub fn to_json_string(&self) -> String {
        let mut o = Json::obj();
        o.set("schema", Json::str(BASELINE_SCHEMA));
        o.set(
            "metrics",
            Json::Arr(
                self.metrics
                    .iter()
                    .map(|m| {
                        let mut e = Json::obj();
                        e.set("scenario", Json::str(&m.scenario));
                        e.set("id", Json::str(&m.id));
                        e.set("unit", Json::str(m.unit.as_str()));
                        e.set("value", Json::num(m.value));
                        e.set("rel_tol", Json::num(m.rel_tol));
                        e.set("abs_tol", Json::num(m.abs_tol));
                        e
                    })
                    .collect(),
            ),
        );
        o.render()
    }

    /// Parses a baseline file.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(BASELINE_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported baseline schema '{other}'")),
            None => return Err("baseline missing 'schema'".to_owned()),
        }
        let entries = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| "baseline missing 'metrics' array".to_owned())?;
        let mut metrics = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let field = |k: &str| {
                e.get(k)
                    .ok_or_else(|| format!("baseline metric #{i} missing '{k}'"))
            };
            let num = |k: &str| {
                field(k)?
                    .as_f64()
                    .ok_or_else(|| format!("baseline metric #{i}: '{k}' not a number"))
            };
            let text = |k: &str| {
                Ok::<String, String>(
                    field(k)?
                        .as_str()
                        .ok_or_else(|| format!("baseline metric #{i}: '{k}' not a string"))?
                        .to_owned(),
                )
            };
            let unit_s = text("unit")?;
            let unit = Unit::parse(&unit_s)
                .ok_or_else(|| format!("baseline metric #{i}: unknown unit '{unit_s}'"))?;
            metrics.push(BaselineMetric {
                scenario: text("scenario")?,
                id: text("id")?,
                unit,
                value: num("value")?,
                rel_tol: num("rel_tol")?,
                abs_tol: num("abs_tol")?,
            });
        }
        Ok(Baseline { metrics })
    }

    /// Diffs `report` against the baseline; an empty vector means the
    /// gate passes. New (unpinned) measurements are allowed — they only
    /// start gating once the baseline is re-pinned.
    pub fn check(&self, report: &Report) -> Vec<Violation> {
        let mut violations = Vec::new();
        for b in &self.metrics {
            let Some(m) = report
                .scenario(&b.scenario)
                .and_then(|s| s.measurement(&b.id))
            else {
                violations.push(Violation::Missing {
                    scenario: b.scenario.clone(),
                    id: b.id.clone(),
                });
                continue;
            };
            if m.unit != b.unit {
                violations.push(Violation::UnitChanged {
                    scenario: b.scenario.clone(),
                    id: b.id.clone(),
                    baseline: b.unit,
                    current: m.unit,
                });
                continue;
            }
            let allowed = b.rel_tol * b.value.abs() + b.abs_tol;
            if (m.value - b.value).abs() > allowed {
                violations.push(Violation::OutOfBand {
                    scenario: b.scenario.clone(),
                    id: b.id.clone(),
                    baseline: b.value,
                    current: m.value,
                    allowed,
                    unit: b.unit,
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measurement;
    use crate::report::ScenarioReport;

    fn report_with(value: f64) -> Report {
        let mut s = ScenarioReport::new("table1_latency", "T1", "Table 1", 101);
        s.measurements.push(
            Measurement::scalar("get_bt_1hop", "getCxtItem BT", Unit::Millis, value)
                .with_gate_rel_tol(0.10),
        );
        let mut r = Report::new();
        r.scenarios.push(s);
        r
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let base = Baseline::from_report(&report_with(31.8));
        let text = base.to_json_string();
        let back = Baseline::parse(&text).expect("parse");
        assert_eq!(back.metrics, base.metrics);
        assert!(text.contains(BASELINE_SCHEMA));
    }

    /// The acceptance-criterion test: the gate passes in-band and
    /// *demonstrably fails* when a tolerance band is violated.
    #[test]
    fn gate_passes_in_band_and_fails_out_of_band() {
        let base = Baseline::from_report(&report_with(31.8));
        // Identical run: clean.
        assert!(base.check(&report_with(31.8)).is_empty());
        // Drift inside the 10 % band: clean.
        assert!(base.check(&report_with(33.0)).is_empty());
        // A 50 % latency regression: the gate fires.
        let violations = base.check(&report_with(47.7));
        assert_eq!(violations.len(), 1);
        let text = violations[0].to_string();
        assert!(text.contains("table1_latency/get_bt_1hop"), "{text}");
        assert!(matches!(violations[0], Violation::OutOfBand { .. }));
    }

    #[test]
    fn gate_fails_on_missing_metric_and_unit_change() {
        let base = Baseline::from_report(&report_with(31.8));
        // Missing measurement.
        let empty = Report::new();
        let violations = base.check(&empty);
        assert!(matches!(violations[0], Violation::Missing { .. }));
        // Unit change.
        let mut changed = report_with(31.8);
        changed.scenarios[0].measurements[0].unit = Unit::Secs;
        let violations = base.check(&changed);
        assert!(matches!(violations[0], Violation::UnitChanged { .. }));
    }

    #[test]
    fn abs_tol_covers_near_zero_metrics() {
        let mut s = ScenarioReport::new("sm_breakup", "SM", "§6.1", 11);
        s.measurements.push(
            Measurement::scalar("obs_share_connect", "share", Unit::Percent, 4.0)
                .with_gate_rel_tol(0.0)
                .with_gate_abs_tol(3.0),
        );
        let mut r = Report::new();
        r.scenarios.push(s);
        let base = Baseline::from_report(&r);
        r.scenarios[0].measurements[0].value = 6.5; // +2.5 pp: inside
        assert!(base.check(&r).is_empty());
        r.scenarios[0].measurements[0].value = 7.5; // +3.5 pp: outside
        assert_eq!(base.check(&r).len(), 1);
    }

    #[test]
    fn parse_rejects_bad_schema_and_units() {
        assert!(Baseline::parse("{\"schema\":\"nope\",\"metrics\":[]}").is_err());
        let bad_unit = "{\"schema\":\"contory-bench-baseline/1\",\"metrics\":[\
            {\"scenario\":\"a\",\"id\":\"b\",\"unit\":\"furlongs\",\
             \"value\":1,\"rel_tol\":0.1,\"abs_tol\":0}]}";
        assert!(Baseline::parse(bad_unit).is_err());
    }
}
