//! Report assembly and rendering: one [`ScenarioReport`] per scenario,
//! one [`Report`] per `bench_all` run.
//!
//! The human tables in `results/*.txt` and the machine-readable
//! `BENCH_contory.json` are rendered *from the same structured data*,
//! so they cannot drift apart — the drift between `results/`,
//! `EXPERIMENTS.md` and the code's actual measurements is what this
//! module exists to end.

use crate::json::Json;
use crate::measure::Measurement;
use crate::scenario::Check;
use std::fmt::Write as _;

/// Schema tag stamped into `BENCH_contory.json`.
pub const SCHEMA: &str = "contory-bench/1";

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Stable scenario name.
    pub name: String,
    /// Human title.
    pub title: String,
    /// Paper reference (`"Table 1"`, `"Fig. 5"`, …).
    pub paper_ref: String,
    /// Base seed.
    pub seed: u64,
    /// Total simulator events processed across the scenario's testbeds
    /// (accumulated via [`crate::RunCtx::tally_sim`]).
    pub sim_events: u64,
    /// Total virtual time simulated, in seconds.
    pub sim_time_s: f64,
    /// Typed measurements in push order.
    pub measurements: Vec<Measurement>,
    /// Tolerance-band checks in push order.
    pub checks: Vec<Check>,
    /// Prose notes.
    pub notes: Vec<String>,
    /// Free-form text artifacts (title, body) — text report only.
    pub artifacts: Vec<(String, String)>,
    /// Parsed obskit metrics snapshot (`Registry::snapshot_json`).
    pub obs_metrics: Json,
    /// Span-derived per-phase totals in milliseconds (nonzero phases
    /// only, taxonomy order).
    pub obs_phases: Vec<(String, f64)>,
    /// Number of spans the run recorded.
    pub obs_span_count: u64,
}

impl ScenarioReport {
    /// Creates an empty report shell.
    pub fn new(name: &str, title: &str, paper_ref: &str, seed: u64) -> ScenarioReport {
        ScenarioReport {
            name: name.to_owned(),
            title: title.to_owned(),
            paper_ref: paper_ref.to_owned(),
            seed,
            sim_events: 0,
            sim_time_s: 0.0,
            measurements: Vec::new(),
            checks: Vec::new(),
            notes: Vec::new(),
            artifacts: Vec::new(),
            obs_metrics: Json::Null,
            obs_phases: Vec::new(),
            obs_span_count: 0,
        }
    }

    /// Finds a measurement by id.
    pub fn measurement(&self, id: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.id == id)
    }

    /// Descriptions of every failed check.
    pub fn failed_checks(&self) -> Vec<String> {
        self.checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| {
                format!(
                    "{}/{}: {} = {} outside {}",
                    self.name,
                    c.id,
                    c.label,
                    crate::json::fmt_f64(c.value),
                    c.band_text()
                )
            })
            .collect()
    }

    /// JSON export (stable key and element order).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("name", Json::str(&self.name));
        o.set("title", Json::str(&self.title));
        o.set("paper_ref", Json::str(&self.paper_ref));
        o.set("seed", Json::num(self.seed as f64));
        o.set("sim_events", Json::num(self.sim_events as f64));
        o.set("sim_time_s", Json::num(self.sim_time_s));
        o.set(
            "measurements",
            Json::Arr(self.measurements.iter().map(Measurement::to_json).collect()),
        );
        o.set(
            "checks",
            Json::Arr(self.checks.iter().map(Check::to_json).collect()),
        );
        o.set(
            "notes",
            Json::Arr(self.notes.iter().map(Json::str).collect()),
        );
        let mut obs = Json::obj();
        obs.set("span_count", Json::num(self.obs_span_count as f64));
        let mut phases = Json::obj();
        for (name, ms) in &self.obs_phases {
            phases.set(name, Json::num(*ms));
        }
        obs.set("phase_totals_ms", phases);
        obs.set("metrics", self.obs_metrics.clone());
        o.set("obskit", obs);
        o
    }

    /// Renders the full human report: header, measurement table, check
    /// list, notes, artifacts. This is what `results/<name>.txt` holds.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let _ = writeln!(
            out,
            "paper ref: {} | scenario: {} | seed: {} | sim events: {} | sim time: {:.0} s",
            self.paper_ref, self.name, self.seed, self.sim_events, self.sim_time_s
        );
        out.push('\n');
        out.push_str(&render_measurement_table(&self.measurements));
        if !self.checks.is_empty() {
            let _ = writeln!(out, "\nchecks (tolerance bands):");
            for c in &self.checks {
                let _ = writeln!(
                    out,
                    "  [{}] {} ({}): {} in {}",
                    if c.pass { "PASS" } else { "FAIL" },
                    c.label,
                    c.id,
                    crate::json::fmt_f64(c.value),
                    c.band_text()
                );
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\nnotes:");
            for n in &self.notes {
                let _ = writeln!(out, "  {n}");
            }
        }
        if !self.obs_phases.is_empty() || self.obs_span_count > 0 {
            let _ = writeln!(
                out,
                "\nobskit: {} spans; phase totals (ms):",
                self.obs_span_count
            );
            for (name, ms) in &self.obs_phases {
                let _ = writeln!(out, "  {name:<14} {ms:>12.3}");
            }
        }
        for (title, body) in &self.artifacts {
            let _ = writeln!(out, "\n--- {title} ---");
            let _ = writeln!(out, "{}", body.trim_end_matches('\n'));
        }
        out
    }
}

/// Renders the measurement comparison table (the old `print_table`
/// layout, returned as a `String` so library code never prints).
pub fn render_measurement_table(rows: &[Measurement]) -> String {
    let mut out = String::new();
    let cells: Vec<(String, String, String, String)> = rows
        .iter()
        .map(|m| {
            (
                m.label.clone(),
                format!("{} {}", m.measured_text(), m.unit),
                m.paper_column(),
                m.note_column(),
            )
        })
        .collect();
    let w_label = cells.iter().map(|c| c.0.len()).chain([9]).max().unwrap_or(9);
    let w_meas = cells.iter().map(|c| c.1.len()).chain([8]).max().unwrap_or(8);
    let w_paper = cells.iter().map(|c| c.2.len()).chain([5]).max().unwrap_or(5);
    let _ = writeln!(
        out,
        "{:<w_label$}  {:>w_meas$}  {:>w_paper$}  note",
        "operation", "measured", "paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(w_label + w_meas + w_paper + 10));
    for (label, meas, paper, note) in &cells {
        let _ = writeln!(out, "{label:<w_label$}  {meas:>w_meas$}  {paper:>w_paper$}  {note}");
    }
    out
}

/// One `bench_all` run: every scenario's report under one schema.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-scenario reports in registration order.
    pub scenarios: Vec<ScenarioReport>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Finds a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Descriptions of every failed check across all scenarios.
    pub fn failed_checks(&self) -> Vec<String> {
        self.scenarios
            .iter()
            .flat_map(ScenarioReport::failed_checks)
            .collect()
    }

    /// The versioned `BENCH_contory.json` document.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", Json::str(SCHEMA));
        o.set(
            "paper",
            Json::str("Contory: A Middleware for the Provisioning of Context Information on Smart Phones (Middleware 2006)"),
        );
        o.set(
            "scenarios",
            Json::Arr(self.scenarios.iter().map(ScenarioReport::to_json).collect()),
        );
        o
    }

    /// Rendered JSON document (pretty, byte-deterministic).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Unit;

    fn toy_report() -> ScenarioReport {
        let mut r = ScenarioReport::new("toy", "Toy", "Table 0", 42);
        r.measurements.push(
            Measurement::scalar("m", "a metric", Unit::Millis, 1.5).with_paper(1.4),
        );
        r.checks.push(Check {
            id: "c".into(),
            label: "a check".into(),
            value: 2.0,
            lo: Some(0.0),
            hi: Some(5.0),
            unit: Unit::Secs,
            pass: true,
        });
        r.notes.push("hello".into());
        r.artifacts.push(("plot".into(), "###".into()));
        r
    }

    #[test]
    fn text_and_json_come_from_same_data() {
        let r = toy_report();
        let text = r.render_text();
        assert!(text.contains("=== Toy ==="));
        assert!(text.contains("a metric"));
        assert!(text.contains("[PASS] a check"));
        assert!(text.contains("--- plot ---"));
        let j = r.to_json();
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(j.get("measurements").and_then(Json::as_arr).unwrap().len(), 1);
        assert_eq!(j.get("checks").and_then(Json::as_arr).unwrap().len(), 1);
    }

    #[test]
    fn report_json_has_schema() {
        let mut rep = Report::new();
        rep.scenarios.push(toy_report());
        let doc = Json::parse(&rep.to_json_string()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("scenarios").and_then(Json::as_arr).unwrap().len(), 1);
    }

    #[test]
    fn failed_checks_surface_scenario_and_band() {
        let mut r = toy_report();
        r.checks.push(Check {
            id: "gap".into(),
            label: "gap SLO".into(),
            value: 50.0,
            lo: None,
            hi: Some(45.0),
            unit: Unit::Secs,
            pass: false,
        });
        let mut rep = Report::new();
        rep.scenarios.push(r);
        let failed = rep.failed_checks();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].contains("toy/gap"), "{failed:?}");
        assert!(failed[0].contains("45"));
    }
}
