//! Typed measurements: the unit vocabulary and the per-row record every
//! scenario produces.
//!
//! A [`Measurement`] carries the measured statistic (mean, 90 % CI
//! half-width, extrema, sample count — usually lifted straight from a
//! [`simkit::stats::Summary`]), the paper's reference value where the
//! paper reports one, and the regression-gate tolerances the baseline
//! checker applies (see `baseline.rs`).

use crate::json::Json;
use simkit::stats::Summary;

/// Closed unit vocabulary for measurements. The golden schema test
/// asserts every unit string in `BENCH_contory.json` parses back through
/// [`Unit::parse`], so exporters cannot drift into ad-hoc unit spellings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Milliseconds.
    Millis,
    /// Seconds.
    Secs,
    /// Joules.
    Joules,
    /// Joules per delivered context item.
    JoulesPerItem,
    /// Milliwatts.
    Milliwatts,
    /// Milliamps.
    Milliamps,
    /// Percent (0–100).
    Percent,
    /// Dimensionless count.
    Count,
    /// Dimensionless ratio ("×").
    Ratio,
    /// Events (or items) per second — throughput rows of the scale
    /// scenarios.
    PerSec,
}

impl Unit {
    /// Stable unit string used in exports and table headers.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Millis => "ms",
            Unit::Secs => "s",
            Unit::Joules => "J",
            Unit::JoulesPerItem => "J/item",
            Unit::Milliwatts => "mW",
            Unit::Milliamps => "mA",
            Unit::Percent => "%",
            Unit::Count => "count",
            Unit::Ratio => "x",
            Unit::PerSec => "/s",
        }
    }

    /// Inverse of [`Unit::as_str`].
    pub fn parse(s: &str) -> Option<Unit> {
        Some(match s {
            "ms" => Unit::Millis,
            "s" => Unit::Secs,
            "J" => Unit::Joules,
            "J/item" => Unit::JoulesPerItem,
            "mW" => Unit::Milliwatts,
            "mA" => Unit::Milliamps,
            "%" => Unit::Percent,
            "count" => Unit::Count,
            "x" => Unit::Ratio,
            "/s" => Unit::PerSec,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One measured quantity of a scenario run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Stable snake_case identifier (the baseline joins on
    /// `scenario/id`).
    pub id: String,
    /// Human row label (the paper's operation/condition wording).
    pub label: String,
    /// Unit of `value`.
    pub unit: Unit,
    /// Measured value (mean when `n > 1`).
    pub value: f64,
    /// 90 % confidence-interval half-width (0 for single samples).
    pub ci90: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub n: u64,
    /// The paper's reference value, when the paper reports one.
    pub paper: Option<f64>,
    /// Verbatim paper-column text (e.g. `"140.359 [0.337]"`); derived
    /// from `paper` when absent.
    pub paper_text: Option<String>,
    /// Relative tolerance for the PASS/WARN verdict against `paper`.
    pub paper_tol: f64,
    /// Free-form note rendered in the table's note column.
    pub note: String,
    /// True for lower-bound rows (the paper's `> x` WiFi energy cells).
    pub lower_bound: bool,
    /// Relative tolerance the baseline regression gate allows for this
    /// metric (fraction of the baseline value).
    pub gate_rel_tol: f64,
    /// Absolute tolerance the baseline regression gate allows on top of
    /// the relative band (useful near zero and for percent shares).
    pub gate_abs_tol: f64,
}

impl Measurement {
    fn base(id: &str, label: &str, unit: Unit) -> Measurement {
        Measurement {
            id: id.to_owned(),
            label: label.to_owned(),
            unit,
            value: 0.0,
            ci90: 0.0,
            min: 0.0,
            max: 0.0,
            n: 0,
            paper: None,
            paper_text: None,
            paper_tol: 0.15,
            note: String::new(),
            lower_bound: false,
            gate_rel_tol: 0.25,
            gate_abs_tol: 0.0,
        }
    }

    /// Builds a measurement from a [`Summary`] (mean / CI / extrema / n).
    pub fn from_summary(id: &str, label: &str, unit: Unit, s: &Summary) -> Measurement {
        let mut m = Measurement::base(id, label, unit);
        m.value = s.mean();
        m.ci90 = s.ci90_half();
        m.n = s.count();
        if s.count() > 0 {
            m.min = s.min();
            m.max = s.max();
        }
        m
    }

    /// Builds a single-sample measurement.
    pub fn scalar(id: &str, label: &str, unit: Unit, value: f64) -> Measurement {
        let mut m = Measurement::base(id, label, unit);
        m.value = value;
        m.min = value;
        m.max = value;
        m.n = 1;
        m
    }

    /// Attaches the paper's reference value (paper column and verdict).
    pub fn with_paper(mut self, value: f64) -> Measurement {
        self.paper = Some(value);
        self
    }

    /// Attaches the verbatim paper-column text (e.g. the paper's own
    /// `avg [ci]` cell); implies nothing about `paper`.
    pub fn with_paper_text(mut self, text: impl Into<String>) -> Measurement {
        self.paper_text = Some(text.into());
        self
    }

    /// Sets the relative tolerance for the PASS/WARN verdict.
    pub fn with_paper_tol(mut self, tol: f64) -> Measurement {
        self.paper_tol = tol;
        self
    }

    /// Sets the note-column text.
    pub fn with_note(mut self, note: impl Into<String>) -> Measurement {
        self.note = note.into();
        self
    }

    /// Marks the row as a lower bound (`> value`).
    pub fn as_lower_bound(mut self) -> Measurement {
        self.lower_bound = true;
        self
    }

    /// Sets the baseline regression gate's relative tolerance.
    pub fn with_gate_rel_tol(mut self, tol: f64) -> Measurement {
        self.gate_rel_tol = tol;
        self
    }

    /// Sets the baseline regression gate's absolute tolerance.
    pub fn with_gate_abs_tol(mut self, tol: f64) -> Measurement {
        self.gate_abs_tol = tol;
        self
    }

    /// Signed deviation from the paper's value in percent, when a paper
    /// value is attached.
    pub fn delta_pct(&self) -> Option<f64> {
        self.paper
            .filter(|p| *p != 0.0)
            .map(|p| 100.0 * (self.value - p) / p)
    }

    /// `measured` column text: `avg [ci]` for multi-sample rows, plain
    /// value otherwise, integer-formatted counts, `> ` prefix for lower
    /// bounds.
    pub fn measured_text(&self) -> String {
        let v = match self.unit {
            Unit::Count => format!("{:.0}", self.value),
            _ => format!("{:.3}", self.value),
        };
        let core = if self.n > 1 {
            format!("{v} [{:.3}]", self.ci90)
        } else {
            v
        };
        if self.lower_bound {
            format!("> {core}")
        } else {
            core
        }
    }

    /// `paper` column text.
    pub fn paper_column(&self) -> String {
        match (&self.paper_text, self.paper) {
            (Some(t), _) => t.clone(),
            (None, Some(p)) => format!("{p:.3}"),
            (None, None) => "-".to_owned(),
        }
    }

    /// PASS/WARN verdict against the paper value within `paper_tol`,
    /// when a paper value is attached.
    pub fn verdict(&self) -> Option<String> {
        let delta = self.delta_pct()?;
        let ok = delta.abs() <= 100.0 * self.paper_tol;
        Some(format!(
            "{} ({delta:+.1}%)",
            if ok { "PASS" } else { "WARN" }
        ))
    }

    /// Note-column text: verdict plus the free-form note.
    pub fn note_column(&self) -> String {
        match (self.verdict(), self.note.is_empty()) {
            (Some(v), false) => format!("{v}; {}", self.note),
            (Some(v), true) => v,
            (None, false) => self.note.clone(),
            (None, true) => String::new(),
        }
    }

    /// JSON export of the row (stable key order).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("id", Json::str(&self.id));
        o.set("label", Json::str(&self.label));
        o.set("unit", Json::str(self.unit.as_str()));
        o.set("value", Json::num(self.value));
        o.set("ci90", Json::num(self.ci90));
        o.set("min", Json::num(self.min));
        o.set("max", Json::num(self.max));
        o.set("n", Json::num(self.n as f64));
        o.set("paper", Json::opt_num(self.paper));
        o.set("delta_pct", Json::opt_num(self.delta_pct()));
        o.set("lower_bound", Json::Bool(self.lower_bound));
        o.set("note", Json::str(&self.note));
        o.set("gate_rel_tol", Json::num(self.gate_rel_tol));
        o.set("gate_abs_tol", Json::num(self.gate_abs_tol));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_strings_roundtrip() {
        for u in [
            Unit::Millis,
            Unit::Secs,
            Unit::Joules,
            Unit::JoulesPerItem,
            Unit::Milliwatts,
            Unit::Milliamps,
            Unit::Percent,
            Unit::Count,
            Unit::Ratio,
            Unit::PerSec,
        ] {
            assert_eq!(Unit::parse(u.as_str()), Some(u));
        }
        assert_eq!(Unit::parse("furlongs"), None);
    }

    #[test]
    fn from_summary_lifts_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let m = Measurement::from_summary("lat", "latency", Unit::Millis, &s);
        assert_eq!(m.value, 2.0);
        assert_eq!(m.n, 3);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert!(m.ci90 > 0.0);
        assert!(m.measured_text().starts_with("2.000 ["));
    }

    #[test]
    fn verdict_pass_and_warn() {
        let pass = Measurement::scalar("a", "a", Unit::Millis, 100.0)
            .with_paper(102.0)
            .with_paper_tol(0.05);
        assert!(pass.verdict().unwrap().starts_with("PASS"));
        let warn = Measurement::scalar("b", "b", Unit::Millis, 100.0)
            .with_paper(200.0)
            .with_paper_tol(0.05);
        assert!(warn.verdict().unwrap().starts_with("WARN"));
        assert!((warn.delta_pct().unwrap() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_and_count_formatting() {
        let m = Measurement::scalar("e", "energy", Unit::Joules, 1.25).as_lower_bound();
        assert_eq!(m.measured_text(), "> 1.250");
        let c = Measurement::scalar("n", "episodes", Unit::Count, 5.0);
        assert_eq!(c.measured_text(), "5");
    }

    #[test]
    fn json_has_schema_fields() {
        let m = Measurement::scalar("x", "X", Unit::Percent, 31.2).with_paper(29.5);
        let j = m.to_json();
        for key in [
            "id",
            "label",
            "unit",
            "value",
            "ci90",
            "min",
            "max",
            "n",
            "paper",
            "delta_pct",
            "lower_bound",
            "note",
            "gate_rel_tol",
            "gate_abs_tol",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("unit").and_then(Json::as_str), Some("%"));
    }
}
