//! The [`Scenario`] trait and the [`RunCtx`] collector every scenario
//! records into.
//!
//! A scenario is one of the paper's §6 regenerators (a table, a figure,
//! an in-text measurement set or an ablation). The harness installs an
//! [`obskit::Obs`] collector around [`Scenario::run`], so everything the
//! provisioning layers record during the run — counters, gauges,
//! histograms, spans — is captured into the scenario's report next to
//! the typed measurements the scenario pushes explicitly.

use crate::json::Json;
use crate::measure::{Measurement, Unit};
use crate::report::ScenarioReport;
use obskit::{Obs, Phase};

/// One §6 regenerator behind a common harness interface.
pub trait Scenario {
    /// Stable snake_case scenario name (`table1_latency`, …); JSON key
    /// and `results/<name>.txt` stem.
    fn name(&self) -> &'static str;

    /// Human title (table/figure caption).
    fn title(&self) -> &'static str;

    /// Which part of the paper this regenerates (`"Table 1"`,
    /// `"Fig. 5"`, `"§6.1 in-text"`, `"ablation"`).
    fn paper_ref(&self) -> &'static str;

    /// Base seed of the scenario's deterministic testbeds (internal
    /// testbeds may derive offsets from it).
    fn seed(&self) -> u64;

    /// Runs the scenario, recording measurements, tolerance-band checks
    /// and notes into `ctx`.
    fn run(&self, ctx: &mut RunCtx);
}

/// A tolerance-band check: `lo <= value <= hi` with either bound
/// optional. This is the *one* assertion mechanism shared by the obs
/// gate (in-scenario bands like the §6.1 phase shares and the Fig. 5
/// 45 s gap SLO) and the bench gate (baseline diffing) — a failed band
/// fails the bench binary and `bench_all --check` alike.
#[derive(Clone, Debug)]
pub struct Check {
    /// Stable snake_case check id.
    pub id: String,
    /// Human description.
    pub label: String,
    /// Observed value.
    pub value: f64,
    /// Inclusive lower bound, if any.
    pub lo: Option<f64>,
    /// Inclusive upper bound, if any.
    pub hi: Option<f64>,
    /// Unit of `value`.
    pub unit: Unit,
    /// Whether the value landed inside the band.
    pub pass: bool,
}

impl Check {
    /// Renders the band as `[lo, hi]` with `-inf`/`+inf` for open ends.
    pub fn band_text(&self) -> String {
        let lo = self.lo.map_or("-inf".to_owned(), |v| format!("{v}"));
        let hi = self.hi.map_or("+inf".to_owned(), |v| format!("{v}"));
        format!("[{lo}, {hi}] {}", self.unit)
    }

    /// JSON export (stable key order).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("id", Json::str(&self.id));
        o.set("label", Json::str(&self.label));
        o.set("value", Json::num(self.value));
        o.set("lo", Json::opt_num(self.lo));
        o.set("hi", Json::opt_num(self.hi));
        o.set("unit", Json::str(self.unit.as_str()));
        o.set("pass", Json::Bool(self.pass));
        o
    }
}

/// The collector a scenario records into while it runs.
///
/// Also constructible directly (outside [`crate::run_scenario`]) so
/// tests — e.g. the determinism transcript — can assemble a report from
/// an existing run and render the same JSON.
pub struct RunCtx {
    obs: Obs,
    report: ScenarioReport,
}

impl RunCtx {
    /// Creates an empty collector with fresh [`Obs`] instrumentation.
    pub fn new(name: &str, title: &str, paper_ref: &str, seed: u64) -> RunCtx {
        RunCtx {
            obs: Obs::new(),
            report: ScenarioReport::new(name, title, paper_ref, seed),
        }
    }

    /// The obskit collector the harness installs around the run.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Records a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.report.measurements.push(m);
    }

    /// Records a tolerance-band check (`lo <= value <= hi`, bounds
    /// inclusive and optional) and returns whether it passed. Failed
    /// checks fail the scenario's bench binary and `bench_all`.
    pub fn check_band(
        &mut self,
        id: &str,
        label: &str,
        value: f64,
        lo: Option<f64>,
        hi: Option<f64>,
        unit: Unit,
    ) -> bool {
        let pass = lo.is_none_or(|l| value >= l) && hi.is_none_or(|h| value <= h);
        self.report.checks.push(Check {
            id: id.to_owned(),
            label: label.to_owned(),
            value,
            lo,
            hi,
            unit,
            pass,
        });
        pass
    }

    /// Records a boolean check as a `[1, 1]` band on `cond as f64`.
    pub fn check_true(&mut self, id: &str, label: &str, cond: bool) -> bool {
        self.check_band(
            id,
            label,
            if cond { 1.0 } else { 0.0 },
            Some(1.0),
            Some(1.0),
            Unit::Count,
        )
    }

    /// Appends a prose note (rendered in the text report *and* exported
    /// in JSON).
    pub fn note(&mut self, line: impl Into<String>) {
        self.report.notes.push(line.into());
    }

    /// Attaches a free-form text artifact (ASCII power plots, raw
    /// report dumps). Rendered in the text report only — artifacts are
    /// bulky and already derivable, so the JSON stays structured.
    pub fn artifact(&mut self, title: &str, body: impl Into<String>) {
        self.report.artifacts.push((title.to_owned(), body.into()));
    }

    /// Accumulates a finished testbed's simulation cost (event count and
    /// final virtual time) into the report.
    pub fn tally_sim(&mut self, sim: &simkit::Sim) {
        self.tally_events(sim.events_processed(), sim.now());
    }

    /// Accumulates simulation cost from a run not driven by a classic
    /// [`simkit::Sim`] (the partitioned `ShardSim` engine reports its
    /// counters through this).
    pub fn tally_events(&mut self, events: u64, end: simkit::SimTime) {
        self.report.sim_events += events;
        self.report.sim_time_s += end.as_secs_f64();
    }

    /// Captures the obskit collector into the report and returns it.
    pub fn finish(self) -> ScenarioReport {
        let mut report = self.report;
        report.obs_span_count = self.obs.span_count() as u64;
        report.obs_metrics = match Json::parse(&self.obs.metrics_json()) {
            Ok(v) => v,
            Err(_) => Json::Null, // unreachable: our own exporter
        };
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let total_ms = self.obs.phase_total(phase).as_millis_f64();
            if total_ms > 0.0 {
                phases.push((phase.as_str().to_owned(), total_ms));
            }
        }
        report.obs_phases = phases;
        report
    }
}

/// Runs one scenario under a fresh obskit collector and returns its
/// report.
pub fn run_scenario(s: &dyn Scenario) -> ScenarioReport {
    let mut ctx = RunCtx::new(s.name(), s.title(), s.paper_ref(), s.seed());
    {
        let _guard = ctx.obs.clone().install();
        s.run(&mut ctx);
    }
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;
    impl Scenario for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn title(&self) -> &'static str {
            "Toy scenario"
        }
        fn paper_ref(&self) -> &'static str {
            "none"
        }
        fn seed(&self) -> u64 {
            7
        }
        fn run(&self, ctx: &mut RunCtx) {
            obskit::count("toy_runs", 1);
            obskit::observe("toy_lat_us", 1234);
            let root = obskit::start(
                obskit::Phase::Transfer,
                "t",
                None,
                simkit::SimTime::ZERO,
            );
            obskit::end(root, simkit::SimTime::from_millis(4));
            ctx.push(Measurement::scalar("m", "metric", Unit::Millis, 4.0));
            assert!(ctx.check_band("b", "band", 4.0, Some(1.0), Some(10.0), Unit::Millis));
            ctx.note("a note");
        }
    }

    #[test]
    fn run_scenario_captures_obs() {
        let r = run_scenario(&Toy);
        assert_eq!(r.name, "toy");
        assert_eq!(r.seed, 7);
        assert_eq!(r.measurements.len(), 1);
        assert_eq!(r.checks.len(), 1);
        assert!(r.checks[0].pass);
        assert_eq!(r.obs_span_count, 1);
        assert_eq!(
            r.obs_metrics
                .get("counters")
                .and_then(|c| c.get("toy_runs"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(r.obs_phases, vec![("transfer".to_owned(), 4.0)]);
    }

    #[test]
    fn same_seed_reports_render_identically() {
        let a = run_scenario(&Toy).to_json().render();
        let b = run_scenario(&Toy).to_json().render();
        assert_eq!(a, b);
    }

    #[test]
    fn check_band_bounds_inclusive_and_open() {
        let mut ctx = RunCtx::new("x", "x", "none", 0);
        assert!(ctx.check_band("a", "a", 45.0, None, Some(45.0), Unit::Secs));
        assert!(!ctx.check_band("b", "b", 45.001, None, Some(45.0), Unit::Secs));
        assert!(ctx.check_band("c", "c", 1e9, Some(1.0), None, Unit::Count));
        assert!(ctx.check_true("d", "d", true));
        assert!(!ctx.check_true("e", "e", false));
        let r = ctx.finish();
        assert_eq!(r.failed_checks().len(), 2);
    }
}
