//! Minimal deterministic JSON: a value tree, a pretty writer and a
//! recursive-descent parser.
//!
//! The build environment is offline (no serde); everything benchkit
//! emits or reads — `BENCH_contory.json`, `results/baseline.json`, the
//! embedded obskit metrics snapshot — goes through this module. Objects
//! are ordered `(key, value)` vectors, so the *writer* controls key
//! order and the output is byte-deterministic for a given tree; the
//! parser preserves encounter order, which keeps parse→render
//! round-trips stable too.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite floats render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an *ordered* key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// `Num` when present, `Null` otherwise.
    pub fn opt_num(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }

    /// Sets `key` on an object (replacing an existing entry in place).
    ///
    /// No-op on non-objects.
    pub fn set(&mut self, key: &str, v: Json) {
        if let Json::Obj(entries) = self {
            if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                e.1 = v;
            } else {
                entries.push((key.to_owned(), v));
            }
        }
    }

    /// Looks a key up on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object-entries accessor.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the tree pretty-printed (2-space indent, `\n` line ends,
    /// trailing newline). Byte-deterministic for a given tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the tree on one line (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write_into(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.write_into(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and a short
    /// description.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a float as a JSON number. Rust's shortest round-trip `{}`
/// formatting is deterministic; non-finite values become `null` (JSON
/// has no NaN/Inf).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogates are not expected in our own
                            // output; map unpaired ones to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        b => return Err(format!("unknown escape '\\{}'", b as char)),
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let mut doc = Json::obj();
        doc.set("schema", Json::str("contory-bench/1"));
        doc.set("n", Json::num(3.0));
        doc.set("half", Json::num(0.5));
        doc.set("neg", Json::num(-42.25));
        doc.set("flag", Json::Bool(true));
        doc.set("nothing", Json::Null);
        doc.set(
            "arr",
            Json::Arr(vec![Json::num(1.0), Json::str("x\n\"y\""), Json::obj()]),
        );
        let text = doc.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
        // Render is idempotent → byte-determinism through round-trips.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn set_replaces_in_place() {
        let mut o = Json::obj();
        o.set("a", Json::num(1.0));
        o.set("b", Json::num(2.0));
        o.set("a", Json::num(9.0));
        assert_eq!(o.get("a").and_then(Json::as_f64), Some(9.0));
        assert_eq!(o.as_obj().unwrap().len(), 2);
        assert_eq!(o.as_obj().unwrap()[0].0, "a", "order preserved on replace");
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
        assert_eq!(Json::Num(1.0).render_compact(), "1");
        assert_eq!(Json::Num(0.078).render_compact(), "0.078");
    }

    #[test]
    fn parses_nested_metrics_snapshot_shape() {
        let text = "{\"counters\":{\"a\":1},\"gauges\":{\"g\":-0.5},\
                    \"histograms\":{\"h\":{\"count\":2,\"p50\":7,\"p90\":127,\"p99\":127}}}";
        let v = Json::parse(text).expect("parse");
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("p90"))
                .and_then(Json::as_f64),
            Some(127.0)
        );
    }
}
