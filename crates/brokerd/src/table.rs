//! Subscription tables, sharded by interned context type.
//!
//! A broker holds one [`SubscriptionTable`] split into `N` internal
//! shards; a subscription or retained packet for type `t` lives on shard
//! `t.0 % N`. Sharding bounds the scan cost of the hot path (an arriving
//! packet only consults one shard) and — because [`Sym`] ids are dense
//! and partition-independent — the shard count never changes any output:
//! match order is always subscription-id order, sweep order is always
//! `(shard, type, id)` order over a `BTreeMap`. The fleet determinism
//! test runs the same scenario at table shard counts 1 and 4 and asserts
//! byte-identical reports.
//!
//! Three subscription modes mirror the CQL clauses: **one-shot**
//! (plain `SELECT`, answered once), **periodic** (`EVERY`/freshness,
//! re-delivered from retained context on a cadence) and **event**
//! (`EVENT`, pushed on every matching arrival). Every subscription
//! carries a `DURATION`-derived expiry, swept alongside retained
//! packets.

use crate::packet::ContextPacket;
use contory::vocab::Sym;
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a registered subscription, unique per broker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u64);

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// Delivery semantics of a subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubMode {
    /// Answered from the next matching arrival (or retained context),
    /// then removed.
    OneShot,
    /// Re-delivered from retained context every `period`.
    Periodic(SimDuration),
    /// Pushed on every matching arrival.
    Event,
}

/// One registered subscription.
#[derive(Clone, Debug)]
pub struct Subscription {
    /// Broker-unique handle.
    pub id: SubId,
    /// Opaque subscriber identity (device actor, TCP session, …).
    pub subscriber: u64,
    /// Context type subscribed to.
    pub cxt_type: Sym,
    /// Delivery semantics.
    pub mode: SubMode,
    /// `DURATION`-derived expiry; the sweep removes the subscription
    /// after this instant.
    pub expires_at: SimTime,
    /// Next periodic delivery due (periodic mode only).
    pub next_due: SimTime,
}

/// What an expiry sweep removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Subscriptions past their duration.
    pub subscriptions: usize,
    /// Retained packets past their expiry.
    pub packets: usize,
}

struct Shard {
    subs: BTreeMap<Sym, Vec<Subscription>>,
    retained: BTreeMap<Sym, ContextPacket>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            subs: BTreeMap::new(),
            retained: BTreeMap::new(),
        }
    }
}

/// A broker's subscription state, sharded by interned context type.
pub struct SubscriptionTable {
    shards: Vec<Shard>,
    next_id: u64,
    live: usize,
}

impl SubscriptionTable {
    /// Creates a table with `shards` internal shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        SubscriptionTable {
            shards: (0..n).map(|_| Shard::new()).collect(),
            next_id: 0,
            live: 0,
        }
    }

    /// Internal shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding a type's subscriptions and retained packet.
    fn shard_of(&self, sym: Sym) -> usize {
        usize::from(sym.0) % self.shards.len()
    }

    /// Registers a subscription and returns its handle.
    pub fn subscribe(
        &mut self,
        subscriber: u64,
        cxt_type: Sym,
        mode: SubMode,
        expires_at: SimTime,
        now: SimTime,
    ) -> SubId {
        let id = SubId(self.next_id);
        self.next_id += 1;
        let next_due = match mode {
            SubMode::Periodic(period) => now + period,
            _ => now,
        };
        let shard = self.shard_of(cxt_type);
        if let Some(slot) = self.shards.get_mut(shard) {
            slot.subs.entry(cxt_type).or_default().push(Subscription {
                id,
                subscriber,
                cxt_type,
                mode,
                expires_at,
                next_due,
            });
            self.live += 1;
        }
        id
    }

    /// Lease renewal: if a subscription for the same `(subscriber,
    /// type, mode)` is live, extends its expiry (never shortens it) and
    /// returns `(existing id, true)`; otherwise registers a fresh
    /// subscription and returns `(new id, false)`. The idempotent form
    /// of [`SubscriptionTable::subscribe`] that periodic
    /// re-subscription needs — calling it on a cadence never stacks
    /// duplicate subscriptions.
    pub fn renew_or_subscribe(
        &mut self,
        subscriber: u64,
        cxt_type: Sym,
        mode: SubMode,
        expires_at: SimTime,
        now: SimTime,
    ) -> (SubId, bool) {
        let shard = self.shard_of(cxt_type);
        if let Some(subs) = self
            .shards
            .get_mut(shard)
            .and_then(|s| s.subs.get_mut(&cxt_type))
        {
            for s in subs.iter_mut() {
                if s.subscriber == subscriber && s.mode == mode && now <= s.expires_at {
                    s.expires_at = s.expires_at.max(expires_at);
                    return (s.id, true);
                }
            }
        }
        (
            self.subscribe(subscriber, cxt_type, mode, expires_at, now),
            false,
        )
    }

    /// Every live subscription, cloned, in subscription-id order —
    /// deterministic regardless of the internal shard count (the input
    /// to the anti-entropy table digest).
    pub fn live_entries(&self) -> Vec<Subscription> {
        let mut out = Vec::with_capacity(self.live);
        for shard in &self.shards {
            for subs in shard.subs.values() {
                out.extend(subs.iter().cloned());
            }
        }
        out.sort_by_key(|s| s.id);
        out
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        for shard in &mut self.shards {
            for subs in shard.subs.values_mut() {
                let before = subs.len();
                subs.retain(|s| s.id != id);
                if subs.len() < before {
                    self.live -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Live subscriptions across all shards.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Retains `packet` as the latest context of its type (replacing any
    /// older retained packet).
    pub fn retain(&mut self, packet: ContextPacket) {
        let shard = self.shard_of(packet.cxt_type);
        if let Some(slot) = self.shards.get_mut(shard) {
            slot.retained.insert(packet.cxt_type, packet);
        }
    }

    /// The retained packet of a type, if still valid at `now`.
    pub fn retained(&self, cxt_type: Sym, now: SimTime) -> Option<&ContextPacket> {
        self.shards
            .get(self.shard_of(cxt_type))?
            .retained
            .get(&cxt_type)
            .filter(|p| p.is_valid_at(now))
    }

    /// Matches an arrival against the type's subscriptions: event and
    /// one-shot subscribers still within their duration, in id order.
    /// Matched one-shots are removed (their single answer is spent).
    pub fn on_arrival(&mut self, cxt_type: Sym, now: SimTime) -> Vec<Subscription> {
        let shard = self.shard_of(cxt_type);
        let Some(subs) = self
            .shards
            .get_mut(shard)
            .and_then(|s| s.subs.get_mut(&cxt_type))
        else {
            return Vec::new();
        };
        let mut matched = Vec::new();
        subs.retain(|s| {
            if now > s.expires_at {
                return true; // expired: left for the sweep to count
            }
            match s.mode {
                SubMode::Event => {
                    matched.push(s.clone());
                    true
                }
                SubMode::OneShot => {
                    matched.push(s.clone());
                    false
                }
                SubMode::Periodic(_) => true,
            }
        });
        self.live -= matched.iter().filter(|s| s.mode == SubMode::OneShot).count();
        if !matched.is_empty() {
            obskit::count("broker_table_matched", matched.len() as u64);
        }
        obskit::gauge("broker_table_live_subs", self.live as f64);
        matched
    }

    /// Periodic subscriptions due at `now`: each is returned and its
    /// `next_due` advanced by its period. Results are in subscription-id
    /// order — shard-major collection order would leak the shard count
    /// into delivery order, breaking the partition-invariance contract.
    pub fn periodic_due(&mut self, now: SimTime) -> Vec<Subscription> {
        let mut due = Vec::new();
        for shard in &mut self.shards {
            for subs in shard.subs.values_mut() {
                for s in subs.iter_mut() {
                    if let SubMode::Periodic(period) = s.mode {
                        if s.next_due <= now && now <= s.expires_at {
                            due.push(s.clone());
                            s.next_due = s.next_due + period;
                        }
                    }
                }
            }
        }
        due.sort_by_key(|s| s.id);
        if !due.is_empty() {
            obskit::count("broker_table_periodic_due", due.len() as u64);
        }
        due
    }

    /// Removes expired subscriptions and retained packets,
    /// deterministically (shard index, then `BTreeMap` type order).
    pub fn sweep(&mut self, now: SimTime) -> SweepStats {
        let mut stats = SweepStats::default();
        for shard in &mut self.shards {
            for subs in shard.subs.values_mut() {
                let before = subs.len();
                subs.retain(|s| now <= s.expires_at);
                stats.subscriptions += before - subs.len();
            }
            shard.subs.retain(|_, v| !v.is_empty());
            let before = shard.retained.len();
            shard.retained.retain(|_, p| p.is_valid_at(now));
            stats.packets += before - shard.retained.len();
        }
        self.live -= stats.subscriptions;
        obskit::gauge("broker_table_live_subs", self.live as f64);
        stats
    }
}

impl fmt::Debug for SubscriptionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriptionTable")
            .field("shards", &self.shards.len())
            .field("live", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOREVER: SimTime = SimTime::from_secs(1_000_000);

    fn pkt(sym: Sym, at: u64, life: u64) -> ContextPacket {
        let mut p = ContextPacket::new(
            "t",
            1,
            SimTime::from_secs(at),
            SimDuration::from_secs(life),
            "src",
        );
        p.cxt_type = sym;
        p
    }

    #[test]
    fn event_subs_match_every_arrival_one_shots_once() {
        let mut tab = SubscriptionTable::new(4);
        let t = Sym(3);
        tab.subscribe(1, t, SubMode::Event, FOREVER, SimTime::ZERO);
        tab.subscribe(2, t, SubMode::OneShot, FOREVER, SimTime::ZERO);
        let first = tab.on_arrival(t, SimTime::from_secs(1));
        assert_eq!(first.len(), 2);
        let second = tab.on_arrival(t, SimTime::from_secs(2));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].subscriber, 1);
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn periodic_subs_fire_on_cadence_not_arrival() {
        let mut tab = SubscriptionTable::new(2);
        let t = Sym(0);
        tab.subscribe(7, t, SubMode::Periodic(SimDuration::from_secs(10)), FOREVER, SimTime::ZERO);
        assert!(tab.on_arrival(t, SimTime::from_secs(1)).is_empty());
        assert!(tab.periodic_due(SimTime::from_secs(9)).is_empty());
        let due = tab.periodic_due(SimTime::from_secs(10));
        assert_eq!(due.len(), 1);
        // Advanced: not due again until t=20.
        assert!(tab.periodic_due(SimTime::from_secs(15)).is_empty());
        assert_eq!(tab.periodic_due(SimTime::from_secs(20)).len(), 1);
    }

    #[test]
    fn sweep_removes_expired_subs_and_packets() {
        let mut tab = SubscriptionTable::new(4);
        tab.subscribe(1, Sym(0), SubMode::Event, SimTime::from_secs(5), SimTime::ZERO);
        tab.subscribe(2, Sym(1), SubMode::Event, FOREVER, SimTime::ZERO);
        tab.retain(pkt(Sym(0), 0, 3));
        tab.retain(pkt(Sym(1), 0, 100));
        let stats = tab.sweep(SimTime::from_secs(10));
        assert_eq!(stats, SweepStats { subscriptions: 1, packets: 1 });
        assert_eq!(tab.len(), 1);
        assert!(tab.retained(Sym(1), SimTime::from_secs(10)).is_some());
        assert!(tab.retained(Sym(0), SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn retained_respects_expiry_even_before_sweep() {
        let mut tab = SubscriptionTable::new(1);
        tab.retain(pkt(Sym(5), 0, 10));
        assert!(tab.retained(Sym(5), SimTime::from_secs(10)).is_some());
        assert!(tab.retained(Sym(5), SimTime::from_secs(11)).is_none());
    }

    #[test]
    fn shard_count_never_changes_match_results() {
        let run = |shards: usize| {
            let mut tab = SubscriptionTable::new(shards);
            for sub in 0..20u64 {
                let t = Sym((sub % 7) as u16);
                let mode = match sub % 3 {
                    0 => SubMode::Event,
                    1 => SubMode::OneShot,
                    _ => SubMode::Periodic(SimDuration::from_secs(5)),
                };
                tab.subscribe(sub, t, mode, FOREVER, SimTime::ZERO);
            }
            let mut log = Vec::new();
            for step in 1..5u64 {
                let now = SimTime::from_secs(step);
                for t in 0..7u16 {
                    for m in tab.on_arrival(Sym(t), now) {
                        log.push(format!("arr {} {} {}", step, m.id, m.subscriber));
                    }
                }
                for m in tab.periodic_due(SimTime::from_secs(step * 5)) {
                    log.push(format!("due {} {} {}", step, m.id, m.subscriber));
                }
            }
            log
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(16));
    }

    #[test]
    fn renewal_extends_instead_of_stacking() {
        let mut tab = SubscriptionTable::new(4);
        let t = Sym(2);
        let mode = SubMode::Periodic(SimDuration::from_secs(5));
        let (id, renewed) =
            tab.renew_or_subscribe(9, t, mode, SimTime::from_secs(30), SimTime::ZERO);
        assert!(!renewed);
        let (again, renewed) =
            tab.renew_or_subscribe(9, t, mode, SimTime::from_secs(60), SimTime::from_secs(10));
        assert!(renewed);
        assert_eq!(id, again);
        assert_eq!(tab.len(), 1);
        // Renewal never shortens a lease.
        tab.renew_or_subscribe(9, t, mode, SimTime::from_secs(40), SimTime::from_secs(11));
        assert_eq!(tab.live_entries()[0].expires_at, SimTime::from_secs(60));
        // A different mode or subscriber is a distinct lease.
        let (other, renewed) =
            tab.renew_or_subscribe(9, t, SubMode::Event, SimTime::from_secs(60), SimTime::ZERO);
        assert!(!renewed);
        assert_ne!(id, other);
        assert_eq!(tab.len(), 2);
        // After expiry the lease is gone: renewal re-registers.
        tab.sweep(SimTime::from_secs(100));
        let (fresh, renewed) =
            tab.renew_or_subscribe(9, t, mode, SimTime::from_secs(200), SimTime::from_secs(100));
        assert!(!renewed);
        assert_ne!(fresh, id);
    }

    #[test]
    fn live_entries_are_id_ordered_across_shard_counts() {
        let fill = |shards: usize| {
            let mut tab = SubscriptionTable::new(shards);
            for sub in 0..17u64 {
                tab.subscribe(sub, Sym((sub % 5) as u16), SubMode::Event, FOREVER, SimTime::ZERO);
            }
            tab.live_entries()
                .iter()
                .map(|s| (s.id, s.subscriber, s.cxt_type))
                .collect::<Vec<_>>()
        };
        assert_eq!(fill(1), fill(4));
        let ids: Vec<u64> = fill(3).iter().map(|(id, _, _)| id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unsubscribe_is_idempotent() {
        let mut tab = SubscriptionTable::new(2);
        let id = tab.subscribe(1, Sym(0), SubMode::Event, FOREVER, SimTime::ZERO);
        assert!(tab.unsubscribe(id));
        assert!(!tab.unsubscribe(id));
        assert!(tab.is_empty());
    }
}
