//! Bounded dedup windows for idempotent at-least-once delivery.
//!
//! Chaos links duplicate packets and federation retries re-send them;
//! both hand the broker the *same* [`PacketSeq`]. A [`DedupWindow`]
//! remembers, per publisher origin, the highest sequence number seen
//! plus a fixed-width bitmap of the [`SEQ_WINDOW`] sequence numbers
//! below it, and answers "have I admitted this exact packet before?" in
//! O(log origins).
//!
//! Sizing rationale: the window must cover the worst-case reorder
//! spread — how many *newer* packets from the same origin can overtake
//! a straggler. That is bounded by (reorder delay / publish period) ×
//! duplication factor; with the chaos defaults (≤ 250 ms reorder bound,
//! ≥ 3.75 s min publish period) the spread is ≪ 10, so 128 leaves two
//! orders of magnitude of slack while keeping per-origin state at one
//! `u128` + two `u64`s. Sequence numbers that fall *below* the window
//! are treated as duplicates: suppressing a very late straggler is
//! always safe (at-least-once has already been satisfied by a younger
//! copy or the origin re-sent it), whereas delivering it could violate
//! the zero-duplicate contract.
//!
//! Origin count is bounded too ([`DedupWindow::new`]): when full, the
//! least-recently-touched origin is evicted (deterministic tie-break on
//! origin id), so a broker tracking millions of publishers stays at a
//! fixed memory ceiling.

use crate::packet::PacketSeq;
use std::collections::BTreeMap;

/// Width of the per-origin bitmap: how many sequence numbers below the
/// highest-seen are individually tracked.
pub const SEQ_WINDOW: u64 = 128;

/// What a [`DedupWindow::observe`] call concluded about a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqVerdict {
    /// First sighting — deliver it.
    Fresh,
    /// Already admitted (or below the window) — suppress, ack positively.
    Duplicate,
}

#[derive(Clone, Copy, Debug)]
struct OriginWindow {
    /// Highest sequence number admitted from this origin.
    high: u64,
    /// Bit `i` set ⇔ sequence `high - 1 - i` was admitted.
    below: u128,
    /// Monotone touch stamp for least-recently-used eviction.
    touched: u64,
}

/// A bounded, deterministic duplicate detector keyed on
/// [`PacketSeq`]. Unsequenced packets ([`PacketSeq::NONE`]) bypass it:
/// legacy traffic keeps pre-chaos semantics.
#[derive(Clone, Debug)]
pub struct DedupWindow {
    origins: BTreeMap<u64, OriginWindow>,
    max_origins: usize,
    touch: u64,
    suppressed: u64,
    admitted: u64,
}

impl DedupWindow {
    /// A window tracking at most `max_origins` publishers (≥ 1).
    pub fn new(max_origins: usize) -> Self {
        DedupWindow {
            origins: BTreeMap::new(),
            max_origins: max_origins.max(1),
            touch: 0,
            suppressed: 0,
            admitted: 0,
        }
    }

    /// Pure lookup: would [`DedupWindow::observe`] call this a
    /// duplicate? Mutates nothing — callers that must interleave other
    /// checks (e.g. capacity) between the verdict and the recording use
    /// this first and `observe` only on commit.
    pub fn seen(&self, seq: PacketSeq) -> bool {
        if !seq.is_some() {
            return false;
        }
        match self.origins.get(&seq.origin) {
            None => false,
            Some(w) => {
                if seq.n > w.high {
                    false
                } else if seq.n == w.high {
                    true
                } else {
                    let gap = w.high - seq.n - 1;
                    gap >= SEQ_WINDOW || w.below & (1u128 << gap) != 0
                }
            }
        }
    }

    /// Classifies one packet and records it. Exactly-once filtering on
    /// an at-least-once stream: the first copy of each `(origin, n)` is
    /// `Fresh`, every later copy `Duplicate`.
    pub fn observe(&mut self, seq: PacketSeq) -> SeqVerdict {
        if !seq.is_some() {
            // Legacy/unsequenced traffic is never suppressed.
            return SeqVerdict::Fresh;
        }
        self.touch += 1;
        let stamp = self.touch;
        let verdict = match self.origins.get_mut(&seq.origin) {
            None => {
                self.evict_to_fit();
                self.origins.insert(
                    seq.origin,
                    OriginWindow {
                        high: seq.n,
                        below: 0,
                        touched: stamp,
                    },
                );
                SeqVerdict::Fresh
            }
            Some(win) => {
                win.touched = stamp;
                if seq.n == win.high {
                    SeqVerdict::Duplicate
                } else if seq.n > win.high {
                    let shift = seq.n - win.high;
                    win.below = if shift >= SEQ_WINDOW {
                        0
                    } else {
                        win.below << shift
                    };
                    if shift - 1 < SEQ_WINDOW {
                        win.below |= 1u128 << (shift - 1);
                    }
                    win.high = seq.n;
                    SeqVerdict::Fresh
                } else {
                    let gap = win.high - seq.n - 1;
                    if gap >= SEQ_WINDOW {
                        // Below the window: suppressing is always safe.
                        SeqVerdict::Duplicate
                    } else if win.below & (1u128 << gap) != 0 {
                        SeqVerdict::Duplicate
                    } else {
                        win.below |= 1u128 << gap;
                        SeqVerdict::Fresh
                    }
                }
            }
        };
        match verdict {
            SeqVerdict::Fresh => self.admitted += 1,
            SeqVerdict::Duplicate => self.suppressed += 1,
        }
        verdict
    }

    fn evict_to_fit(&mut self) {
        while self.origins.len() >= self.max_origins {
            let victim = self
                .origins
                .iter()
                .min_by_key(|(origin, w)| (w.touched, **origin))
                .map(|(origin, _)| *origin);
            match victim {
                Some(o) => {
                    self.origins.remove(&o);
                }
                None => break,
            }
        }
    }

    /// Sequenced packets admitted as fresh.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Duplicate copies suppressed.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Origins currently tracked.
    pub fn origins(&self) -> usize {
        self.origins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(origin: u64, n: u64) -> PacketSeq {
        PacketSeq::new(origin, n)
    }

    #[test]
    fn first_copy_fresh_every_later_copy_duplicate() {
        let mut w = DedupWindow::new(16);
        assert_eq!(w.observe(seq(1, 1)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(1, 1)), SeqVerdict::Duplicate);
        assert_eq!(w.observe(seq(1, 2)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(1, 1)), SeqVerdict::Duplicate);
        assert_eq!(w.observe(seq(1, 2)), SeqVerdict::Duplicate);
        assert_eq!((w.admitted(), w.suppressed()), (2, 3));
    }

    #[test]
    fn reordered_arrivals_within_the_window_stay_fresh_once() {
        let mut w = DedupWindow::new(16);
        // Arrive 5, 3, 4, 3, 5, 1 — each n fresh exactly once.
        assert_eq!(w.observe(seq(9, 5)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(9, 3)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(9, 4)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(9, 3)), SeqVerdict::Duplicate);
        assert_eq!(w.observe(seq(9, 5)), SeqVerdict::Duplicate);
        assert_eq!(w.observe(seq(9, 1)), SeqVerdict::Fresh);
    }

    #[test]
    fn below_window_stragglers_are_suppressed_not_delivered() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.observe(seq(2, 1_000)), SeqVerdict::Fresh);
        // 1_000 - 1 - gap >= window ⇒ too old to track individually.
        assert_eq!(
            w.observe(seq(2, 1_000 - SEQ_WINDOW - 1)),
            SeqVerdict::Duplicate
        );
        // Just inside the window is still individually tracked.
        assert_eq!(w.observe(seq(2, 1_000 - SEQ_WINDOW)), SeqVerdict::Fresh);
    }

    #[test]
    fn big_forward_jumps_clear_the_bitmap_safely() {
        let mut w = DedupWindow::new(4);
        assert_eq!(w.observe(seq(3, 1)), SeqVerdict::Fresh);
        assert_eq!(w.observe(seq(3, 1 + 10 * SEQ_WINDOW)), SeqVerdict::Fresh);
        // The old high fell below the window ⇒ duplicate by policy.
        assert_eq!(w.observe(seq(3, 1)), SeqVerdict::Duplicate);
    }

    #[test]
    fn origin_eviction_is_lru_and_bounded() {
        let mut w = DedupWindow::new(2);
        w.observe(seq(10, 1));
        w.observe(seq(20, 1));
        w.observe(seq(10, 2)); // touch 10 so 20 is the LRU
        w.observe(seq(30, 1)); // evicts 20
        assert_eq!(w.origins(), 2);
        // 20 was forgotten: its old seq reads as fresh again (bounded
        // memory trades exactness for forgotten origins only). This
        // re-admission in turn evicts 10, now the LRU.
        assert_eq!(w.observe(seq(20, 1)), SeqVerdict::Fresh);
        assert_eq!(w.origins(), 2);
        // 30 survived both evictions: still exact.
        assert_eq!(w.observe(seq(30, 1)), SeqVerdict::Duplicate);
    }

    #[test]
    fn unsequenced_traffic_bypasses_dedup() {
        let mut w = DedupWindow::new(2);
        for _ in 0..5 {
            assert_eq!(w.observe(PacketSeq::NONE), SeqVerdict::Fresh);
        }
        assert_eq!(w.origins(), 0);
        assert_eq!(w.suppressed(), 0);
    }
}
