//! Admission control and bounded-queue backpressure.
//!
//! A broker admits a publish only if (a) the packet satisfies the
//! hygiene contract — attributed, unexpired, source not blocked — and
//! (b) the bounded inbox has room. Everything else is refused with a
//! typed [`BrokerError`] that maps onto the middleware's [`RefError`],
//! so a shed publish surfaces through the *existing* retry/backoff/
//! failover machinery instead of inventing a parallel error path.
//!
//! Shedding is load signal, not data loss: the client retries (with
//! backoff) or the [`InfraCxtProvider`] fails over to a less-loaded
//! broker via the QoS score gossip carries — see
//! [`federation`](crate::federation).
//!
//! [`RefError`]: contory::refs::RefError
//! [`InfraCxtProvider`]: crate::cell::FederatedCell

use contory::refs::RefError;
use std::fmt;

/// Why a broker refused an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// The bounded inbox is full; the publish was shed (backpressure).
    QueueFull {
        /// Configured inbox capacity the publish ran into.
        capacity: usize,
    },
    /// The packet carries no source attribution.
    Unattributed,
    /// The packet was already past its expiry when it arrived.
    ExpiredOnArrival,
    /// The packet's source is blocked by the broker's access policy.
    SourceBlocked(String),
    /// The broker is down (scripted fault or shutdown).
    BrokerDown,
    /// A tracked federation forward ran out of retries without an ack.
    RetryExhausted {
        /// Attempts made before giving up (initial send excluded).
        attempts: u32,
    },
    /// The federation peer could not be reached at all (no transport).
    PeerUnreachable(crate::packet::BrokerId),
    /// No retained context and no provider for the requested type.
    NoSuchContext(String),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            BrokerError::Unattributed => f.write_str("publish refused: no source attribution"),
            BrokerError::ExpiredOnArrival => f.write_str("publish refused: expired on arrival"),
            BrokerError::SourceBlocked(s) => write!(f, "publish refused: source {s} blocked"),
            BrokerError::BrokerDown => f.write_str("broker down"),
            BrokerError::RetryExhausted { attempts } => {
                write!(f, "federation forward abandoned after {attempts} retries")
            }
            BrokerError::PeerUnreachable(b) => write!(f, "federation peer {b} unreachable"),
            BrokerError::NoSuchContext(t) => write!(f, "no context of type {t}"),
        }
    }
}

impl std::error::Error for BrokerError {}

/// Maps broker refusals onto the middleware's reference errors so they
/// ride the PR 1 retry/backoff/failover path unchanged: backpressure is
/// retryable ([`RefError::Timeout`]), hygiene violations are terminal
/// ([`RefError::Denied`]), downtime triggers failover
/// ([`RefError::Unavailable`]).
impl From<BrokerError> for RefError {
    fn from(e: BrokerError) -> RefError {
        match e {
            BrokerError::QueueFull { .. } | BrokerError::RetryExhausted { .. } => {
                RefError::Timeout
            }
            BrokerError::Unattributed
            | BrokerError::ExpiredOnArrival
            | BrokerError::SourceBlocked(_) => RefError::Denied(e.to_string()),
            BrokerError::BrokerDown | BrokerError::PeerUnreachable(_) => {
                RefError::Unavailable(e.to_string())
            }
            BrokerError::NoSuchContext(t) => RefError::NotFound(t),
        }
    }
}

/// Running admission counters (deterministic; folded into reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Publishes admitted into the inbox.
    pub admitted: u64,
    /// Publishes shed by backpressure.
    pub shed: u64,
    /// Publishes refused for missing attribution.
    pub unattributed: u64,
    /// Publishes refused as expired on arrival.
    pub expired: u64,
    /// Publishes refused by source blocking.
    pub blocked: u64,
}

impl AdmissionStats {
    /// Total refused for any reason.
    pub fn refused(&self) -> u64 {
        self.shed + self.unattributed + self.expired + self.blocked
    }

    /// Shed rate in parts-per-million of offered load (integer, so
    /// reports stay float-free).
    pub fn shed_ppm(&self) -> u64 {
        let offered = self.admitted + self.refused();
        if offered == 0 {
            0
        } else {
            self.shed * 1_000_000 / offered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_map_onto_the_failover_taxonomy() {
        assert_eq!(RefError::from(BrokerError::QueueFull { capacity: 8 }), RefError::Timeout);
        assert!(matches!(
            RefError::from(BrokerError::BrokerDown),
            RefError::Unavailable(_)
        ));
        assert!(matches!(
            RefError::from(BrokerError::Unattributed),
            RefError::Denied(_)
        ));
        assert!(matches!(
            RefError::from(BrokerError::NoSuchContext("t".into())),
            RefError::NotFound(_)
        ));
        // Retry exhaustion is retryable upstream; an unreachable peer
        // triggers failover like downtime.
        assert_eq!(
            RefError::from(BrokerError::RetryExhausted { attempts: 3 }),
            RefError::Timeout
        );
        assert!(matches!(
            RefError::from(BrokerError::PeerUnreachable(crate::packet::BrokerId(2))),
            RefError::Unavailable(_)
        ));
    }

    #[test]
    fn shed_ppm_is_integer_exact() {
        let stats = AdmissionStats {
            admitted: 75,
            shed: 25,
            ..AdmissionStats::default()
        };
        assert_eq!(stats.shed_ppm(), 250_000);
        assert_eq!(AdmissionStats::default().shed_ppm(), 0);
    }
}
