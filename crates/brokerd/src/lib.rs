//! # brokerd — the federated context-broker service
//!
//! Contory's third provisioning leg (`extInfra`, §4/Fig. 5) talks to a
//! *context infrastructure*: a service that absorbs published context,
//! matches it against subscriptions and survives when local sensing and
//! ad hoc networking fail. This crate is that service, grown from the
//! paper's single XML broker into the federated, QoS-aware design of the
//! cloud-brokering follow-up work: several brokers gossip load digests,
//! forward published context to each other, and are ranked by an integer
//! latency+load score when a phone must (re)select one.
//!
//! ## One core, three harnesses
//!
//! The broker itself is the *pure* [`BrokerNode`]: `(input, now) →`
//! [`Effect`]s, no clock, no socket, no thread. Three harnesses
//! interpret it:
//!
//! * [`fleet`] — brokers and 10k-device populations as
//!   [`simkit::shard::ShardSim`] actors; byte-identical across shard and
//!   thread counts, gated by the `broker_load` benchkit scenario;
//! * [`net`] — a real multi-threaded loopback TCP service
//!   (`std::net::TcpListener`, line protocol in [`wire`]) driven by a
//!   logical clock carried in every frame — no wall clock anywhere;
//! * [`cell`] — [`FederatedCell`], a `contory::refs::CellReference`
//!   backed by classic-sim broker nodes, which is how
//!   `InfraCxtProvider` reaches the federation and fails over between
//!   brokers inside the paper's 45 s SLO.
//!
//! ## The hygiene contract
//!
//! Every packet a broker touches carries a **mandatory expiry** and a
//! **mandatory source attribution** ([`ContextPacket`] cannot be built
//! without either); unattributed, expired or blocked publishes are
//! refused at [admission](admission) with typed errors that map onto the
//! middleware's retry/backoff/failover taxonomy, and expiry is enforced
//! at every read *and* by deterministic sweeps — the same contract
//! `contory::CxtRepository` now enforces device-side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cell;
pub mod dedup;
pub mod federation;
pub mod fleet;
pub mod net;
pub mod node;
pub mod packet;
pub mod table;
pub mod wire;

pub use admission::{AdmissionStats, BrokerError};
pub use cell::FederatedCell;
pub use dedup::{DedupWindow, SeqVerdict, SEQ_WINDOW};
pub use federation::{qos_score, LoadDigest, PeerStat, PeerView};
pub use fleet::{
    fault_edges, link_faults, link_label, restart_edges, run_fleet, run_fleet_profiled,
    FleetConfig, FleetEvent, FleetOutcome,
};
pub use node::{Admitted, BrokerNode, DirEntry, Effect, NodeConfig, NodeStats};
pub use packet::{BrokerId, ContextPacket, PacketError, PacketSeq, MAX_HOPS};
pub use table::{SubId, SubMode, Subscription, SubscriptionTable, SweepStats};
pub use wire::{pct_decode, pct_encode, Request, Response, WireError, MAX_FRAME_BYTES};
