//! Line-oriented wire codec for the loopback TCP service.
//!
//! One frame per line, ASCII, space-separated — trivially debuggable
//! with `nc` and free of serialization dependencies. Times travel as
//! **logical-clock microseconds**: the service has no wall clock (the
//! repo-wide determinism lint bans one), so every request carries the
//! client's logical `now` and the server's clock is the max it has
//! heard. Sources and type names are percent-free tokens; spaces are
//! rejected at encode time.
//!
//! Frames:
//!
//! ```text
//! PUB <type> <value_milli> <published_us> <expires_us> <source> [hops]
//! SUB <type> <oneshot|periodic|event> <period_us> <expires_us> <now_us>
//! UNSUB <sub_id>
//! FETCH <type> <now_us>
//! PING <now_us>
//! OK <token>
//! ERR <code> <detail>
//! EVT <sub_id> <type> <value_milli> <published_us> <expires_us> <source> <hops>
//! PONG <now_us>
//! ```
//!
//! `hops` is a comma-separated broker-id list, `-` when empty.

use crate::packet::{BrokerId, ContextPacket};
use crate::table::{SubId, SubMode};
use simkit::{SimDuration, SimTime};
use std::fmt;

/// A parsed request frame (client → broker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Publish a context packet.
    Pub(ContextPacket),
    /// Open a subscription.
    Sub {
        /// Context type.
        type_name: String,
        /// Delivery mode.
        mode: SubMode,
        /// Duration-derived expiry.
        expires_at: SimTime,
        /// Client logical clock.
        now: SimTime,
    },
    /// Cancel a subscription.
    Unsub(SubId),
    /// On-demand fetch of retained context.
    Fetch {
        /// Context type.
        type_name: String,
        /// Client logical clock.
        now: SimTime,
    },
    /// Clock advance / liveness probe.
    Ping(SimTime),
}

/// A response frame (broker → client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success carrying an opaque token (sub id, "pub", …).
    Ok(String),
    /// Typed refusal.
    Err {
        /// Stable machine-readable code.
        code: String,
        /// Human detail (no spaces guaranteed only for `code`).
        detail: String,
    },
    /// A delivery.
    Evt {
        /// Subscription being served.
        sub: SubId,
        /// The delivered packet.
        packet: ContextPacket,
    },
    /// Ping echo.
    Pong(SimTime),
}

/// Codec failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn token(parts: &[&str], i: usize, what: &str) -> Result<String, WireError> {
    parts
        .get(i)
        .map(|s| (*s).to_owned())
        .ok_or_else(|| err(format!("missing {what}")))
}

fn number(parts: &[&str], i: usize, what: &str) -> Result<u64, WireError> {
    token(parts, i, what)?
        .parse::<u64>()
        .map_err(|_| err(format!("bad {what}")))
}

fn signed(parts: &[&str], i: usize, what: &str) -> Result<i64, WireError> {
    token(parts, i, what)?
        .parse::<i64>()
        .map_err(|_| err(format!("bad {what}")))
}

fn encode_hops(hops: &[BrokerId]) -> String {
    if hops.is_empty() {
        "-".to_owned()
    } else {
        hops.iter()
            .map(|b| b.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn decode_hops(text: &str) -> Result<Vec<BrokerId>, WireError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| t.parse::<u16>().map(BrokerId).map_err(|_| err("bad hop id")))
        .collect()
}

fn check_token(t: &str, what: &str) -> Result<(), WireError> {
    if t.is_empty() || t.contains(' ') || t.contains('\n') {
        Err(err(format!("{what} must be a non-empty spaceless token")))
    } else {
        Ok(())
    }
}

fn decode_packet(parts: &[&str], at: usize) -> Result<ContextPacket, WireError> {
    let type_name = token(parts, at, "type")?;
    let value_milli = signed(parts, at + 1, "value")?;
    let published = SimTime::from_micros(number(parts, at + 2, "published_us")?);
    let expires = SimTime::from_micros(number(parts, at + 3, "expires_us")?);
    if expires < published {
        return Err(err("expiry precedes publish time"));
    }
    let source = token(parts, at + 4, "source")?;
    let hops = decode_hops(&token(parts, at + 5, "hops").unwrap_or_else(|_| "-".into()))?;
    let mut p = ContextPacket::new(
        type_name,
        value_milli,
        published,
        expires.since(published),
        source,
    );
    p.hops = hops;
    Ok(p)
}

fn encode_packet(p: &ContextPacket) -> Result<String, WireError> {
    check_token(&p.type_name, "type")?;
    check_token(&p.source, "source")?;
    Ok(format!(
        "{} {} {} {} {} {}",
        p.type_name,
        p.value_milli,
        p.published_at.as_micros(),
        p.expires_at.as_micros(),
        p.source,
        encode_hops(&p.hops),
    ))
}

impl Request {
    /// Encodes the request as one line (no trailing newline).
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            Request::Pub(p) => Ok(format!("PUB {}", encode_packet(p)?)),
            Request::Sub {
                type_name,
                mode,
                expires_at,
                now,
            } => {
                check_token(type_name, "type")?;
                let (mode_word, period) = match mode {
                    SubMode::OneShot => ("oneshot", 0),
                    SubMode::Periodic(p) => ("periodic", p.as_micros()),
                    SubMode::Event => ("event", 0),
                };
                Ok(format!(
                    "SUB {type_name} {mode_word} {period} {} {}",
                    expires_at.as_micros(),
                    now.as_micros(),
                ))
            }
            Request::Unsub(id) => Ok(format!("UNSUB {}", id.0)),
            Request::Fetch { type_name, now } => {
                check_token(type_name, "type")?;
                Ok(format!("FETCH {type_name} {}", now.as_micros()))
            }
            Request::Ping(now) => Ok(format!("PING {}", now.as_micros())),
        }
    }

    /// Parses one request line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("PUB") => Ok(Request::Pub(decode_packet(&parts, 1)?)),
            Some("SUB") => {
                let type_name = token(&parts, 1, "type")?;
                let mode_word = token(&parts, 2, "mode")?;
                let period = SimDuration::from_micros(number(&parts, 3, "period_us")?);
                let mode = match mode_word.as_str() {
                    "oneshot" => SubMode::OneShot,
                    "periodic" => {
                        if period.is_zero() {
                            return Err(err("periodic mode requires a non-zero period"));
                        }
                        SubMode::Periodic(period)
                    }
                    "event" => SubMode::Event,
                    other => return Err(err(format!("unknown mode {other}"))),
                };
                Ok(Request::Sub {
                    type_name,
                    mode,
                    expires_at: SimTime::from_micros(number(&parts, 4, "expires_us")?),
                    now: SimTime::from_micros(number(&parts, 5, "now_us")?),
                })
            }
            Some("UNSUB") => Ok(Request::Unsub(SubId(number(&parts, 1, "sub_id")?))),
            Some("FETCH") => Ok(Request::Fetch {
                type_name: token(&parts, 1, "type")?,
                now: SimTime::from_micros(number(&parts, 2, "now_us")?),
            }),
            Some("PING") => Ok(Request::Ping(SimTime::from_micros(number(
                &parts, 1, "now_us",
            )?))),
            Some(other) => Err(err(format!("unknown request {other}"))),
            None => Err(err("empty line")),
        }
    }
}

impl Response {
    /// Encodes the response as one line (no trailing newline).
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            Response::Ok(tok) => {
                check_token(tok, "token")?;
                Ok(format!("OK {tok}"))
            }
            Response::Err { code, detail } => {
                check_token(code, "code")?;
                let detail = if detail.is_empty() {
                    "-".to_owned()
                } else {
                    detail.replace([' ', '\n'], "_")
                };
                Ok(format!("ERR {code} {detail}"))
            }
            Response::Evt { sub, packet } => Ok(format!("EVT {} {}", sub.0, encode_packet(packet)?)),
            Response::Pong(now) => Ok(format!("PONG {}", now.as_micros())),
        }
    }

    /// Parses one response line.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("OK") => Ok(Response::Ok(token(&parts, 1, "token")?)),
            Some("ERR") => Ok(Response::Err {
                code: token(&parts, 1, "code")?,
                detail: token(&parts, 2, "detail").unwrap_or_else(|_| "-".into()),
            }),
            Some("EVT") => Ok(Response::Evt {
                sub: SubId(number(&parts, 1, "sub_id")?),
                packet: decode_packet(&parts, 2)?,
            }),
            Some("PONG") => Ok(Response::Pong(SimTime::from_micros(number(
                &parts, 1, "now_us",
            )?))),
            Some(other) => Err(err(format!("unknown response {other}"))),
            None => Err(err("empty line")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> ContextPacket {
        let mut p = ContextPacket::new(
            "wind",
            12_500,
            SimTime::from_micros(1_000_000),
            SimDuration::from_secs(30),
            "buoy-7",
        );
        p.hops = vec![BrokerId(0), BrokerId(2)];
        p
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Pub(sample_packet()),
            Request::Sub {
                type_name: "temperature".into(),
                mode: SubMode::Periodic(SimDuration::from_secs(5)),
                expires_at: SimTime::from_secs(3600),
                now: SimTime::from_secs(1),
            },
            Request::Sub {
                type_name: "noise".into(),
                mode: SubMode::Event,
                expires_at: SimTime::from_secs(60),
                now: SimTime::ZERO,
            },
            Request::Unsub(SubId(9)),
            Request::Fetch {
                type_name: "wind".into(),
                now: SimTime::from_secs(2),
            },
            Request::Ping(SimTime::from_micros(123)),
        ];
        for r in reqs {
            let line = r.encode().unwrap();
            assert_eq!(Request::decode(&line).unwrap(), r, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Ok("sub3".into()),
            Response::Err {
                code: "queue_full".into(),
                detail: "capacity_64".into(),
            },
            Response::Evt {
                sub: SubId(3),
                packet: sample_packet(),
            },
            Response::Pong(SimTime::from_secs(9)),
        ];
        for r in resps {
            let line = r.encode().unwrap();
            assert_eq!(Response::decode(&line).unwrap(), r, "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicking() {
        for bad in [
            "",
            "NOPE x",
            "PUB wind",
            "PUB wind abc 0 0 src -",
            "SUB t periodic 0 0 0",
            "SUB t warp 1 0 0",
            "PUB wind 1 10 5 src -", // expiry before publish
            "UNSUB xyz",
        ] {
            assert!(Request::decode(bad).is_err(), "accepted: {bad:?}");
        }
        assert!(Response::decode("EVT 1 t 1 0").is_err());
    }

    #[test]
    fn tokens_with_spaces_are_refused_at_encode_time() {
        let mut p = sample_packet();
        p.source = "two words".into();
        assert!(Request::Pub(p).encode().is_err());
    }
}
