//! Line-oriented wire codec for the loopback TCP service.
//!
//! One frame per line, ASCII, space-separated — trivially debuggable
//! with `nc` and free of serialization dependencies. Times travel as
//! **logical-clock microseconds**: the service has no wall clock (the
//! repo-wide determinism lint bans one), so every request carries the
//! client's logical `now` and the server's clock is the max it has
//! heard. Sources and type names are percent-free tokens; spaces are
//! rejected at encode time.
//!
//! Frames:
//!
//! ```text
//! PUB <type> <value_milli> <published_us> <expires_us> <source> [hops] [trace] [seq]
//! SUB <type> <oneshot|periodic|event> <period_us> <expires_us> <now_us>
//! UNSUB <sub_id>
//! FETCH <type> <now_us>
//! PING <now_us>
//! STATS <now_us>
//! TRACE <limit> <now_us>
//! OK <token>
//! ERR <code> <detail>
//! EVT <sub_id> <type> <value_milli> <published_us> <expires_us> <source> <hops> [trace]
//! PONG <now_us>
//! STATS <pct_text>
//! TRACE <count> <pct_line>...
//! ```
//!
//! `hops` is a comma-separated broker-id list, `-` when empty. `trace`
//! is an optional causal trace context in [`TraceCtx`] display form
//! (`<trace16hex>.<parent>.<hop>.<s|u>`); frames without it decode to
//! [`TraceCtx::NONE`], so pre-trace peers interoperate unchanged. `seq`
//! is an optional idempotency tag (`<origin>:<n>`, see
//! [`PacketSeq`]); when present the trace slot before it is always
//! filled (`-` for untraced packets), and frames without it decode to
//! [`PacketSeq::NONE`] so pre-chaos peers interoperate unchanged. The
//! `STATS`/`TRACE` response payloads are free text carried as single
//! percent-encoded tokens ([`pct_encode`]).
//!
//! Decoding is hardened: frames longer than [`MAX_FRAME_BYTES`] are
//! refused before parsing, every failure is a typed [`WireError`], and
//! no input — truncated, oversized or malformed — can panic the codec.

use crate::packet::{BrokerId, ContextPacket, PacketSeq};
use crate::table::{SubId, SubMode};
use simkit::{SimDuration, SimTime};
use std::fmt;
use tracekit::TraceCtx;

/// Hard cap on one frame (request or response line, without the
/// terminating newline). Oversized frames are refused before parsing so
/// a hostile client cannot make the broker buffer unbounded garbage.
pub const MAX_FRAME_BYTES: usize = 8192;

/// A parsed request frame (client → broker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Publish a context packet.
    Pub(ContextPacket),
    /// Open a subscription.
    Sub {
        /// Context type.
        type_name: String,
        /// Delivery mode.
        mode: SubMode,
        /// Duration-derived expiry.
        expires_at: SimTime,
        /// Client logical clock.
        now: SimTime,
    },
    /// Cancel a subscription.
    Unsub(SubId),
    /// On-demand fetch of retained context.
    Fetch {
        /// Context type.
        type_name: String,
        /// Client logical clock.
        now: SimTime,
    },
    /// Clock advance / liveness probe.
    Ping(SimTime),
    /// Live telemetry snapshot (Prometheus-style text).
    Stats {
        /// Client logical clock.
        now: SimTime,
    },
    /// Recent trace summaries.
    Trace {
        /// Maximum summaries to return.
        limit: u64,
        /// Client logical clock.
        now: SimTime,
    },
}

/// A response frame (broker → client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success carrying an opaque token (sub id, "pub", …).
    Ok(String),
    /// Typed refusal.
    Err {
        /// Stable machine-readable code.
        code: String,
        /// Human detail (no spaces guaranteed only for `code`).
        detail: String,
    },
    /// A delivery.
    Evt {
        /// Subscription being served.
        sub: SubId,
        /// The delivered packet.
        packet: ContextPacket,
    },
    /// Ping echo.
    Pong(SimTime),
    /// Telemetry snapshot: Prometheus-style text, percent-encoded on
    /// the wire.
    Stats(String),
    /// Recent trace summaries, one percent-encoded token per trace.
    Trace(Vec<String>),
}

/// Codec failure, typed so callers can branch without string-matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A required field is missing from the frame.
    Truncated {
        /// The field that was expected.
        what: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The field that was malformed.
        what: &'static str,
    },
    /// The frame exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Observed frame length.
        len: usize,
    },
    /// The leading verb is not one this codec knows.
    UnknownVerb(String),
    /// Anything else structurally wrong with the frame.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The transport died mid-frame: bytes arrived but the line never
    /// ended before the peer disconnected (or the read gave up). The
    /// partial frame is unusable and nothing sane can follow it.
    ConnLost {
        /// Bytes of the frame observed before the connection was lost.
        partial: usize,
        /// What ended the read (io error kind, or `eof`).
        detail: String,
    },
}

impl WireError {
    /// A stable machine-readable code, suitable for `ERR` frames.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::BadNumber { .. } => "bad_number",
            WireError::Oversized { .. } => "oversized",
            WireError::UnknownVerb(_) => "unknown_verb",
            WireError::Malformed { .. } => "malformed",
            WireError::ConnLost { .. } => "conn_lost",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "wire error: missing {what}"),
            WireError::BadNumber { what } => write!(f, "wire error: bad {what}"),
            WireError::Oversized { len } => {
                write!(f, "wire error: frame of {len} bytes exceeds {MAX_FRAME_BYTES}")
            }
            WireError::UnknownVerb(v) => write!(f, "wire error: unknown verb {v}"),
            WireError::Malformed { detail } => write!(f, "wire error: {detail}"),
            WireError::ConnLost { partial, detail } => {
                write!(f, "wire error: connection lost mid-frame after {partial} bytes ({detail})")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::Malformed {
        detail: detail.into(),
    }
}

fn token(parts: &[&str], i: usize, what: &'static str) -> Result<String, WireError> {
    parts
        .get(i)
        .map(|s| (*s).to_owned())
        .ok_or(WireError::Truncated { what })
}

fn number(parts: &[&str], i: usize, what: &'static str) -> Result<u64, WireError> {
    token(parts, i, what)?
        .parse::<u64>()
        .map_err(|_| WireError::BadNumber { what })
}

fn signed(parts: &[&str], i: usize, what: &'static str) -> Result<i64, WireError> {
    token(parts, i, what)?
        .parse::<i64>()
        .map_err(|_| WireError::BadNumber { what })
}

/// Percent-encodes free text into one spaceless ASCII token. Escapes
/// `%`, whitespace, controls and non-ASCII; the empty string becomes
/// `-` (and a literal lone `-` is escaped so the two never collide).
pub fn pct_encode(text: &str) -> String {
    if text.is_empty() {
        return "-".to_owned();
    }
    if text == "-" {
        return "%2d".to_owned();
    }
    let mut out = String::with_capacity(text.len());
    for b in text.bytes() {
        let escape = b == b'%' || b <= b' ' || b >= 0x7f;
        if escape {
            out.push('%');
            out.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
            out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
        } else {
            out.push(char::from(b));
        }
    }
    out
}

/// Decodes a [`pct_encode`]d token back into text.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] on dangling or non-hex escapes.
pub fn pct_decode(token: &str) -> Result<String, WireError> {
    if token == "-" {
        return Ok(String::new());
    }
    let bytes = token.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| malformed("dangling percent escape"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| malformed("escape decodes to invalid utf-8"))
}

fn encode_hops(hops: &[BrokerId]) -> String {
    if hops.is_empty() {
        "-".to_owned()
    } else {
        hops.iter()
            .map(|b| b.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn decode_hops(text: &str) -> Result<Vec<BrokerId>, WireError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| {
            t.parse::<u16>()
                .map(BrokerId)
                .map_err(|_| WireError::BadNumber { what: "hop id" })
        })
        .collect()
}

fn check_token(t: &str, what: &'static str) -> Result<(), WireError> {
    if t.is_empty() || t.contains(' ') || t.contains('\n') {
        Err(malformed(format!(
            "{what} must be a non-empty spaceless token"
        )))
    } else {
        Ok(())
    }
}

fn check_frame_len(line: &str) -> Result<(), WireError> {
    if line.len() > MAX_FRAME_BYTES {
        Err(WireError::Oversized { len: line.len() })
    } else {
        Ok(())
    }
}

fn decode_packet(parts: &[&str], at: usize) -> Result<ContextPacket, WireError> {
    let type_name = token(parts, at, "type")?;
    let value_milli = signed(parts, at + 1, "value")?;
    let published = SimTime::from_micros(number(parts, at + 2, "published_us")?);
    let expires = SimTime::from_micros(number(parts, at + 3, "expires_us")?);
    if expires < published {
        return Err(malformed("expiry precedes publish time"));
    }
    let source = token(parts, at + 4, "source")?;
    let hops = decode_hops(&token(parts, at + 5, "hops").unwrap_or_else(|_| "-".into()))?;
    // Trace is optional; `-` is an explicit "no trace" placeholder so
    // the later optional seq token can still occupy its slot.
    let trace = match parts.get(at + 6) {
        Some(&"-") | None => TraceCtx::NONE,
        Some(t) => t
            .parse::<TraceCtx>()
            .map_err(|e| malformed(e.to_string()))?,
    };
    let seq = match parts.get(at + 7) {
        Some(t) => decode_seq(t)?,
        None => PacketSeq::NONE,
    };
    if parts.len() > at + 8 {
        return Err(malformed("trailing tokens after sequence tag"));
    }
    let mut p = ContextPacket::new(
        type_name,
        value_milli,
        published,
        expires.since(published),
        source,
    );
    p.hops = hops;
    p.trace = trace;
    p.seq = seq;
    Ok(p)
}

fn decode_seq(text: &str) -> Result<PacketSeq, WireError> {
    let (origin, n) = text
        .split_once(':')
        .ok_or(WireError::Malformed {
            detail: "sequence tag must be origin:n".into(),
        })?;
    let origin = origin
        .parse::<u64>()
        .map_err(|_| WireError::BadNumber { what: "seq origin" })?;
    let n = n
        .parse::<u64>()
        .map_err(|_| WireError::BadNumber { what: "seq number" })?;
    Ok(PacketSeq { origin, n })
}

fn encode_packet(p: &ContextPacket) -> Result<String, WireError> {
    check_token(&p.type_name, "type")?;
    check_token(&p.source, "source")?;
    let mut line = format!(
        "{} {} {} {} {} {}",
        p.type_name,
        p.value_milli,
        p.published_at.as_micros(),
        p.expires_at.as_micros(),
        p.source,
        encode_hops(&p.hops),
    );
    // Optional trailing tokens, oldest first so legacy peers keep
    // parsing: a seq tag forces the trace slot to be filled (`-` when
    // untraced); a packet with neither stays on the legacy layout.
    if p.trace != TraceCtx::NONE || p.seq.is_some() {
        line.push(' ');
        if p.trace == TraceCtx::NONE {
            line.push('-');
        } else {
            line.push_str(&p.trace.to_string());
        }
    }
    if p.seq.is_some() {
        line.push(' ');
        line.push_str(&p.seq.to_string());
    }
    Ok(line)
}

impl Request {
    /// Encodes the request as one line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Refuses tokens containing spaces and frames over
    /// [`MAX_FRAME_BYTES`].
    pub fn encode(&self) -> Result<String, WireError> {
        let line = match self {
            Request::Pub(p) => format!("PUB {}", encode_packet(p)?),
            Request::Sub {
                type_name,
                mode,
                expires_at,
                now,
            } => {
                check_token(type_name, "type")?;
                let (mode_word, period) = match mode {
                    SubMode::OneShot => ("oneshot", 0),
                    SubMode::Periodic(p) => ("periodic", p.as_micros()),
                    SubMode::Event => ("event", 0),
                };
                format!(
                    "SUB {type_name} {mode_word} {period} {} {}",
                    expires_at.as_micros(),
                    now.as_micros(),
                )
            }
            Request::Unsub(id) => format!("UNSUB {}", id.0),
            Request::Fetch { type_name, now } => {
                check_token(type_name, "type")?;
                format!("FETCH {type_name} {}", now.as_micros())
            }
            Request::Ping(now) => format!("PING {}", now.as_micros()),
            Request::Stats { now } => format!("STATS {}", now.as_micros()),
            Request::Trace { limit, now } => {
                format!("TRACE {limit} {}", now.as_micros())
            }
        };
        check_frame_len(&line)?;
        Ok(line)
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`]; no input panics the codec.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        check_frame_len(line)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("PUB") => Ok(Request::Pub(decode_packet(&parts, 1)?)),
            Some("SUB") => {
                let type_name = token(&parts, 1, "type")?;
                let mode_word = token(&parts, 2, "mode")?;
                let period = SimDuration::from_micros(number(&parts, 3, "period_us")?);
                let mode = match mode_word.as_str() {
                    "oneshot" => SubMode::OneShot,
                    "periodic" => {
                        if period.is_zero() {
                            return Err(malformed("periodic mode requires a non-zero period"));
                        }
                        SubMode::Periodic(period)
                    }
                    "event" => SubMode::Event,
                    other => return Err(malformed(format!("unknown mode {other}"))),
                };
                Ok(Request::Sub {
                    type_name,
                    mode,
                    expires_at: SimTime::from_micros(number(&parts, 4, "expires_us")?),
                    now: SimTime::from_micros(number(&parts, 5, "now_us")?),
                })
            }
            Some("UNSUB") => Ok(Request::Unsub(SubId(number(&parts, 1, "sub_id")?))),
            Some("FETCH") => Ok(Request::Fetch {
                type_name: token(&parts, 1, "type")?,
                now: SimTime::from_micros(number(&parts, 2, "now_us")?),
            }),
            Some("PING") => Ok(Request::Ping(SimTime::from_micros(number(
                &parts, 1, "now_us",
            )?))),
            Some("STATS") => Ok(Request::Stats {
                now: SimTime::from_micros(number(&parts, 1, "now_us")?),
            }),
            Some("TRACE") => Ok(Request::Trace {
                limit: number(&parts, 1, "limit")?,
                now: SimTime::from_micros(number(&parts, 2, "now_us")?),
            }),
            Some(other) => Err(WireError::UnknownVerb(other.to_owned())),
            None => Err(WireError::Truncated { what: "verb" }),
        }
    }
}

impl Response {
    /// Encodes the response as one line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Refuses tokens containing spaces and frames over
    /// [`MAX_FRAME_BYTES`].
    pub fn encode(&self) -> Result<String, WireError> {
        let line = match self {
            Response::Ok(tok) => {
                check_token(tok, "token")?;
                format!("OK {tok}")
            }
            Response::Err { code, detail } => {
                check_token(code, "code")?;
                let detail = if detail.is_empty() {
                    "-".to_owned()
                } else {
                    detail.replace([' ', '\n'], "_")
                };
                format!("ERR {code} {detail}")
            }
            Response::Evt { sub, packet } => format!("EVT {} {}", sub.0, encode_packet(packet)?),
            Response::Pong(now) => format!("PONG {}", now.as_micros()),
            Response::Stats(text) => format!("STATS {}", pct_encode(text)),
            Response::Trace(lines) => {
                let mut out = format!("TRACE {}", lines.len());
                for l in lines {
                    out.push(' ');
                    out.push_str(&pct_encode(l));
                }
                out
            }
        };
        check_frame_len(&line)?;
        Ok(line)
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`]; no input panics the codec.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        check_frame_len(line)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("OK") => Ok(Response::Ok(token(&parts, 1, "token")?)),
            Some("ERR") => Ok(Response::Err {
                code: token(&parts, 1, "code")?,
                detail: token(&parts, 2, "detail").unwrap_or_else(|_| "-".into()),
            }),
            Some("EVT") => Ok(Response::Evt {
                sub: SubId(number(&parts, 1, "sub_id")?),
                packet: decode_packet(&parts, 2)?,
            }),
            Some("PONG") => Ok(Response::Pong(SimTime::from_micros(number(
                &parts, 1, "now_us",
            )?))),
            Some("STATS") => Ok(Response::Stats(pct_decode(&token(
                &parts, 1, "stats text",
            )?)?)),
            Some("TRACE") => {
                let count = number(&parts, 1, "trace count")?;
                let lines = parts
                    .get(2..)
                    .unwrap_or(&[])
                    .iter()
                    .map(|t| pct_decode(t))
                    .collect::<Result<Vec<_>, _>>()?;
                if lines.len() as u64 != count {
                    return Err(malformed(format!(
                        "trace count {count} does not match {} lines",
                        lines.len()
                    )));
                }
                Ok(Response::Trace(lines))
            }
            Some(other) => Err(WireError::UnknownVerb(other.to_owned())),
            None => Err(WireError::Truncated { what: "verb" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> ContextPacket {
        let mut p = ContextPacket::new(
            "wind",
            12_500,
            SimTime::from_micros(1_000_000),
            SimDuration::from_secs(30),
            "buoy-7",
        );
        p.hops = vec![BrokerId(0), BrokerId(2)];
        p
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Pub(sample_packet()),
            Request::Pub(sample_packet().with_trace(TraceCtx::root(77, 0).child(9))),
            Request::Sub {
                type_name: "temperature".into(),
                mode: SubMode::Periodic(SimDuration::from_secs(5)),
                expires_at: SimTime::from_secs(3600),
                now: SimTime::from_secs(1),
            },
            Request::Sub {
                type_name: "noise".into(),
                mode: SubMode::Event,
                expires_at: SimTime::from_secs(60),
                now: SimTime::ZERO,
            },
            Request::Unsub(SubId(9)),
            Request::Fetch {
                type_name: "wind".into(),
                now: SimTime::from_secs(2),
            },
            Request::Ping(SimTime::from_micros(123)),
            Request::Stats {
                now: SimTime::from_secs(4),
            },
            Request::Trace {
                limit: 16,
                now: SimTime::from_secs(5),
            },
        ];
        for r in reqs {
            let line = r.encode().unwrap();
            assert_eq!(Request::decode(&line).unwrap(), r, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Ok("sub3".into()),
            Response::Err {
                code: "queue_full".into(),
                detail: "capacity_64".into(),
            },
            Response::Evt {
                sub: SubId(3),
                packet: sample_packet(),
            },
            Response::Evt {
                sub: SubId(4),
                packet: sample_packet().with_trace(TraceCtx::root(5, 0).hopped(31)),
            },
            Response::Pong(SimTime::from_secs(9)),
            Response::Stats("broker_published_total 4\nbroker_queue_depth 1\n".into()),
            Response::Stats(String::new()),
            Response::Trace(vec![
                "trace=00000000000000ab spans=5 deliveries=1".into(),
                "trace=00000000000000cd spans=2 deliveries=0".into(),
            ]),
            Response::Trace(Vec::new()),
        ];
        for r in resps {
            let line = r.encode().unwrap();
            assert_eq!(Response::decode(&line).unwrap(), r, "line: {line}");
        }
    }

    #[test]
    fn sequence_tags_ride_behind_the_trace_slot() {
        // seq with a trace: both tokens round-trip.
        let traced = sample_packet()
            .with_trace(TraceCtx::root(77, 0).child(9))
            .with_seq(PacketSeq::new(41, 7));
        let line = Request::Pub(traced.clone()).encode().unwrap();
        assert_eq!(line.split_whitespace().count(), 9, "line: {line}");
        assert_eq!(Request::decode(&line).unwrap(), Request::Pub(traced));

        // seq without a trace: the trace slot is `-`, not skipped.
        let untraced = sample_packet().with_seq(PacketSeq::new(41, 8));
        let line = Request::Pub(untraced.clone()).encode().unwrap();
        assert!(line.contains(" - 41:8"), "line: {line}");
        assert_eq!(Request::decode(&line).unwrap(), Request::Pub(untraced));

        // Malformed tags are typed errors.
        assert_eq!(
            Request::decode("PUB wind 1 0 5 src - - 41x8")
                .unwrap_err()
                .code(),
            "malformed"
        );
        assert_eq!(
            Request::decode("PUB wind 1 0 5 src - - a:8")
                .unwrap_err()
                .code(),
            "bad_number"
        );
        assert_eq!(
            Request::decode("PUB wind 1 0 5 src - - 1:2 extra")
                .unwrap_err()
                .code(),
            "malformed"
        );
    }

    #[test]
    fn untraced_packets_stay_on_the_legacy_layout() {
        // A NONE trace must not grow the frame: old peers keep parsing.
        let line = Request::Pub(sample_packet()).encode().unwrap();
        assert_eq!(line.split_whitespace().count(), 7, "line: {line}");
        // And a legacy frame without the trace token decodes to NONE.
        let decoded = Request::decode(&line).unwrap();
        match decoded {
            Request::Pub(p) => assert_eq!(p.trace, TraceCtx::NONE),
            other => panic!("expected PUB, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_typed_errors() {
        let cases: Vec<(&str, &str)> = vec![
            ("", "truncated"),
            ("PUB wind", "truncated"),
            ("NOPE x", "unknown_verb"),
            ("PUB wind abc 0 0 src -", "bad_number"),
            ("UNSUB xyz", "bad_number"),
            ("PUB wind 1 0 5 src 9,x", "bad_number"),
            ("SUB t periodic 0 0 0", "malformed"),
            ("SUB t warp 1 0 0", "malformed"),
            ("PUB wind 1 10 5 src -", "malformed"), // expiry before publish
            ("PUB wind 1 0 5 src - zz.0.0.s", "malformed"), // bad trace token
            ("PUB wind 1 0 5 src - 1.0.0.s extra", "malformed"),
            ("TRACE abc 0", "bad_number"),
        ];
        for (bad, code) in cases {
            let e = Request::decode(bad).expect_err(bad);
            assert_eq!(e.code(), code, "frame: {bad:?} err: {e}");
        }
        assert!(Response::decode("EVT 1 t 1 0").is_err());
        assert_eq!(
            Response::decode("TRACE 2 only%20one").unwrap_err().code(),
            "malformed"
        );
        assert_eq!(
            Response::decode("STATS bad%zz").unwrap_err().code(),
            "malformed"
        );
    }

    #[test]
    fn oversized_frames_are_refused_before_parsing() {
        let big = format!("PUB {} 1 0 5 src -", "x".repeat(MAX_FRAME_BYTES));
        assert_eq!(
            Request::decode(&big).unwrap_err(),
            WireError::Oversized { len: big.len() }
        );
        // Encode-side too: a response that cannot fit is refused, not
        // silently truncated.
        let huge = Response::Stats("y".repeat(MAX_FRAME_BYTES));
        assert!(matches!(
            huge.encode().unwrap_err(),
            WireError::Oversized { .. }
        ));
    }

    #[test]
    fn pct_encoding_round_trips_awkward_text() {
        for text in [
            "",
            "-",
            "plain",
            "two words",
            "line\nbreak",
            "100% déjà-vu",
            "%2d literal",
        ] {
            let tok = pct_encode(text);
            assert!(!tok.contains(' ') && !tok.contains('\n'), "token: {tok}");
            assert_eq!(pct_decode(&tok).unwrap(), text, "text: {text:?}");
        }
    }

    #[test]
    fn tokens_with_spaces_are_refused_at_encode_time() {
        let mut p = sample_packet();
        p.source = "two words".into();
        assert!(Request::Pub(p).encode().is_err());
    }
}
