//! The loopback TCP harness: the same [`BrokerNode`] core behind a real
//! multi-threaded `std::net::TcpListener` service.
//!
//! One accept thread per server, one reader + one writer thread per
//! connection, a line protocol ([`wire`](crate::wire)) on the socket.
//! Servers federate in-process: [`BrokerServer::federate`] links two
//! servers' nodes so `Forward` effects publish straight into the peer —
//! the same hop-guarded federation the sharded sim exercises, now under
//! real threads and real sockets.
//!
//! **There is no wall clock here.** The repo-wide determinism lint bans
//! `Instant::now`/`SystemTime::now`, so the service runs on a *logical*
//! clock: every request frame carries the client's `now_us`, and the
//! server's clock is the maximum it has heard (a `fetch_max` on a
//! `SeqCst` atomic). Expiry sweeps, periodic deliveries and retained
//! lookups all evaluate against that clock — time advances exactly when
//! clients say it does, which also makes the smoke test reproducible.

use crate::node::{BrokerNode, Effect, NodeConfig};
use crate::packet::{BrokerId, ContextPacket};
use crate::table::SubId;
use crate::wire::{Request, Response, WireError, MAX_FRAME_BYTES};
use simkit::SimTime;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;

/// The pseudo-subscription id `FETCH` results are delivered under.
pub const FETCH_SUB: SubId = SubId(u64::MAX);

/// Most trace summaries one `TRACE` response will carry, regardless of
/// the requested limit (keeps the response inside one frame).
pub const TRACE_LIMIT_MAX: u64 = 32;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared {
    node: Mutex<BrokerNode>,
    clock_us: AtomicU64,
    stop: AtomicBool,
    sessions: Mutex<BTreeMap<u64, mpsc::Sender<String>>>,
    peers: Mutex<BTreeMap<BrokerId, Weak<Shared>>>,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.clock_us.load(Ordering::SeqCst))
    }

    fn advance(&self, to: SimTime) -> SimTime {
        self.clock_us.fetch_max(to.as_micros(), Ordering::SeqCst);
        self.now()
    }
}

/// A broker running as a loopback TCP service.
pub struct BrokerServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl BrokerServer {
    /// Binds a broker on `127.0.0.1:0` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(id: BrokerId, cfg: NodeConfig) -> std::io::Result<BrokerServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            node: Mutex::new(BrokerNode::new(id, cfg)),
            clock_us: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sessions: Mutex::new(BTreeMap::new()),
            peers: Mutex::new(BTreeMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let session_seq = AtomicU64::new(1);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let session = session_seq.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || serve_session(&shared, stream, session));
            }
        });
        Ok(BrokerServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This broker's federation identity.
    pub fn id(&self) -> BrokerId {
        lock(&self.shared.node).id()
    }

    /// Links two servers as federation peers (both directions), with a
    /// nominal link latency feeding the QoS score.
    pub fn federate(a: &BrokerServer, b: &BrokerServer, latency_us: u64) {
        let (ida, idb) = (a.id(), b.id());
        let now_a = a.shared.now();
        let now_b = b.shared.now();
        lock(&a.shared.peers).insert(idb, Arc::downgrade(&b.shared));
        lock(&b.shared.peers).insert(ida, Arc::downgrade(&a.shared));
        lock(&a.shared.node).peers_mut().introduce(idb, latency_us, now_a);
        lock(&b.shared.node).peers_mut().introduce(ida, latency_us, now_b);
    }

    /// Broker counters (snapshot).
    pub fn stats(&self) -> crate::node::NodeStats {
        *lock(&self.shared.node).stats()
    }

    /// Stops accepting, wakes the accept loop and joins it. Session
    /// threads end when their clients disconnect.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        lock(&self.shared.sessions).clear();
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Publishes a forwarded packet into this server's node and pumps the
/// resulting effects. Hop guards bound the recursion.
fn accept_forward(shared: &Arc<Shared>, packet: ContextPacket, now: SimTime) {
    let now = shared.advance(now);
    let admitted = lock(&shared.node).publish(packet, now).is_ok();
    if admitted {
        pump(shared, now);
    }
}

/// Drains the node and routes every effect: deliveries to local session
/// writers, forwards to federated peers.
fn pump(shared: &Arc<Shared>, now: SimTime) {
    loop {
        let effects = {
            let mut node = lock(&shared.node);
            let mut effects = node.drain(now);
            effects.extend(node.periodic_fire(now));
            effects
        };
        if effects.is_empty() {
            return;
        }
        for effect in effects {
            match effect {
                Effect::Deliver {
                    subscriber,
                    sub,
                    packet,
                } => {
                    lock(&shared.node).note_delivery(packet.trace, now);
                    let line = Response::Evt { sub, packet }.encode();
                    if let Ok(line) = line {
                        let sessions = lock(&shared.sessions);
                        if let Some(tx) = sessions.get(&subscriber) {
                            let _ = tx.send(line);
                        }
                    }
                }
                Effect::Forward { to, packet } => {
                    let peer = lock(&shared.peers).get(&to).and_then(Weak::upgrade);
                    if let Some(peer) = peer {
                        accept_forward(&peer, packet, now);
                    }
                }
            }
        }
    }
}

fn handle_request(shared: &Arc<Shared>, session: u64, req: Request) -> Response {
    let response = match req {
        Request::Ping(t) => Response::Pong(shared.advance(t)),
        Request::Pub(packet) => {
            let now = shared.advance(packet.published_at);
            match lock(&shared.node).publish(packet, now) {
                Ok(()) => Response::Ok("pub".into()),
                Err(e) => Response::Err {
                    code: error_code(&e).into(),
                    detail: e.to_string(),
                },
            }
        }
        Request::Sub {
            type_name,
            mode,
            expires_at,
            now,
        } => {
            let now = shared.advance(now);
            let id = lock(&shared.node).subscribe(session, &type_name, mode, expires_at, now);
            Response::Ok(format!("sub{}", id.0))
        }
        Request::Unsub(id) => {
            if lock(&shared.node).unsubscribe(id) {
                Response::Ok("unsub".into())
            } else {
                Response::Err {
                    code: "no_such_sub".into(),
                    detail: format!("sub{}", id.0),
                }
            }
        }
        Request::Fetch { type_name, now } => {
            let now = shared.advance(now);
            match lock(&shared.node).fetch(&type_name, now) {
                Ok(packet) => Response::Evt {
                    sub: FETCH_SUB,
                    packet,
                },
                Err(e) => Response::Err {
                    code: error_code(&e).into(),
                    detail: e.to_string(),
                },
            }
        }
        Request::Stats { now } => {
            shared.advance(now);
            Response::Stats(lock(&shared.node).telemetry().snapshot())
        }
        Request::Trace { limit, now } => {
            shared.advance(now);
            // Bound the response to what fits one frame comfortably.
            let limit = limit.min(TRACE_LIMIT_MAX) as usize;
            let node = lock(&shared.node);
            let lines = tracekit::summaries(node.trace_log(), limit)
                .iter()
                .map(tracekit::TraceSummary::line)
                .collect();
            Response::Trace(lines)
        }
    };
    // Every request may have unblocked work (admissions, due periodics,
    // sweeps ride the same logical clock).
    let now = shared.now();
    lock(&shared.node).sweep(now);
    pump(shared, now);
    response
}

fn error_code(e: &crate::admission::BrokerError) -> &'static str {
    use crate::admission::BrokerError as E;
    match e {
        E::QueueFull { .. } => "queue_full",
        E::Unattributed => "unattributed",
        E::ExpiredOnArrival => "expired",
        E::SourceBlocked(_) => "blocked",
        E::BrokerDown => "down",
        E::NoSuchContext(_) => "not_found",
    }
}

/// Outcome of reading one frame off the socket.
enum FrameRead {
    /// A complete line within the frame cap (newline stripped).
    Line(String),
    /// The line exceeded [`MAX_FRAME_BYTES`]; it was drained off the
    /// socket so the session can continue, but never buffered whole.
    Oversized {
        /// Bytes observed before the line ended.
        len: usize,
    },
    /// The peer disconnected.
    Eof,
}

/// Reads one newline-terminated frame with a hard byte cap: a hostile
/// client sending an endless line costs at most one cap-sized buffer,
/// not unbounded memory.
fn read_frame(reader: &mut BufReader<TcpStream>) -> FrameRead {
    let cap = (MAX_FRAME_BYTES + 2) as u64;
    let mut line = String::new();
    let mut total = 0usize;
    let mut oversized = false;
    loop {
        line.clear();
        let n = match reader.by_ref().take(cap).read_line(&mut line) {
            Ok(0) => return FrameRead::Eof,
            Ok(n) => n,
            Err(_) => return FrameRead::Eof,
        };
        total += n;
        let complete = line.ends_with('\n');
        if complete || n < cap as usize {
            // Newline found, or true EOF mid-line (read_line only stops
            // short of the cap at a newline or EOF).
            return if oversized {
                FrameRead::Oversized { len: total }
            } else {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                FrameRead::Line(std::mem::take(&mut line))
            };
        }
        // Cap hit mid-line: remember, and keep draining to the newline.
        oversized = true;
    }
}

fn serve_session(shared: &Arc<Shared>, stream: TcpStream, session: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    lock(&shared.sessions).insert(session, tx.clone());
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            let _ = out.flush();
        }
    });

    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader) {
            FrameRead::Eof => break,
            FrameRead::Oversized { len } => {
                let e = WireError::Oversized { len };
                let refusal = Response::Err {
                    code: e.code().into(),
                    detail: e.to_string(),
                };
                let sent = refusal
                    .encode()
                    .is_ok_and(|encoded| tx.send(encoded).is_ok());
                if sent {
                    continue;
                }
                break;
            }
            FrameRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Ok(req) => handle_request(shared, session, req),
            Err(e) => Response::Err {
                code: e.code().into(),
                detail: e.to_string(),
            },
        };
        if let Ok(encoded) = response.encode() {
            if tx.send(encoded).is_err() {
                break;
            }
        }
    }
    lock(&shared.sessions).remove(&session);
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SubMode;
    use simkit::SimDuration;

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { reader, stream }
        }

        fn send(&mut self, req: &Request) {
            let line = req.encode().unwrap();
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> Response {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            Response::decode(line.trim_end()).unwrap()
        }
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pub_sub_round_trip_over_a_real_socket() {
        let server = BrokerServer::spawn(BrokerId(0), NodeConfig::default()).unwrap();
        let mut sub = Client::connect(server.addr());
        sub.send(&Request::Sub {
            type_name: "wind".into(),
            mode: SubMode::Event,
            expires_at: secs(1_000),
            now: secs(1),
        });
        assert_eq!(sub.recv(), Response::Ok("sub0".into()));

        let mut publisher = Client::connect(server.addr());
        publisher.send(&Request::Pub(ContextPacket::new(
            "wind",
            7_000,
            secs(2),
            SimDuration::from_secs(60),
            "buoy-1",
        )));
        assert_eq!(publisher.recv(), Response::Ok("pub".into()));

        match sub.recv() {
            Response::Evt { packet, .. } => {
                assert_eq!(packet.value_milli, 7_000);
                assert_eq!(packet.source, "buoy-1");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_trace_ops_requests_answer_over_the_socket() {
        let server = BrokerServer::spawn(BrokerId(7), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        c.send(&Request::Sub {
            type_name: "wind".into(),
            mode: SubMode::Event,
            expires_at: secs(1_000),
            now: secs(1),
        });
        assert_eq!(c.recv(), Response::Ok("sub0".into()));
        // A traced publish: sampled root, rate 0 ⇒ always sampled.
        c.send(&Request::Pub(
            ContextPacket::new("wind", 7_000, secs(2), SimDuration::from_secs(60), "buoy-1")
                .with_trace(tracekit::TraceCtx::root(0xfeed, 0)),
        ));
        // The delivery is pumped inside the request, so the EVT frame
        // reaches the (self-subscribed) session before the OK.
        assert!(matches!(c.recv(), Response::Evt { .. }));
        assert_eq!(c.recv(), Response::Ok("pub".into()));

        c.send(&Request::Stats { now: secs(3) });
        match c.recv() {
            Response::Stats(text) => {
                assert!(text.contains("broker_admitted_total 1"), "stats:\n{text}");
                assert!(text.contains("broker_delivered_total 1"), "stats:\n{text}");
                assert!(text.contains("broker_live_subscriptions 1"), "stats:\n{text}");
            }
            other => panic!("expected STATS, got {other:?}"),
        }

        c.send(&Request::Trace {
            limit: 8,
            now: secs(3),
        });
        match c.recv() {
            Response::Trace(lines) => {
                assert_eq!(lines.len(), 1, "lines: {lines:?}");
                assert!(lines[0].contains("deliveries=1"), "line: {}", lines[0]);
            }
            other => panic!("expected TRACE, got {other:?}"),
        }
    }

    #[test]
    fn oversized_lines_are_refused_without_killing_the_session() {
        let server = BrokerServer::spawn(BrokerId(8), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        let garbage = "G".repeat(MAX_FRAME_BYTES * 3);
        c.stream.write_all(garbage.as_bytes()).unwrap();
        c.stream.write_all(b"\n").unwrap();
        match c.recv() {
            Response::Err { code, .. } => assert_eq!(code, "oversized"),
            other => panic!("expected ERR, got {other:?}"),
        }
        // The session survives and keeps serving well-formed frames.
        c.send(&Request::Ping(secs(5)));
        assert_eq!(c.recv(), Response::Pong(secs(5)));
    }

    #[test]
    fn logical_clock_is_monotone_and_drives_expiry() {
        let server = BrokerServer::spawn(BrokerId(1), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        c.send(&Request::Pub(ContextPacket::new(
            "t",
            1,
            secs(10),
            SimDuration::from_secs(5),
            "s",
        )));
        assert_eq!(c.recv(), Response::Ok("pub".into()));
        // Clock never goes backwards.
        c.send(&Request::Ping(secs(3)));
        assert_eq!(c.recv(), Response::Pong(secs(10)));
        // Retained while valid…
        c.send(&Request::Fetch {
            type_name: "t".into(),
            now: secs(12),
        });
        assert!(matches!(c.recv(), Response::Evt { .. }));
        // …gone after expiry.
        c.send(&Request::Fetch {
            type_name: "t".into(),
            now: secs(30),
        });
        assert!(matches!(c.recv(), Response::Err { .. }));
    }
}
