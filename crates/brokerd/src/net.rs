//! The loopback TCP harness: the same [`BrokerNode`] core behind a real
//! multi-threaded `std::net::TcpListener` service.
//!
//! One accept thread per server, one reader + one writer thread per
//! connection, a line protocol ([`wire`](crate::wire)) on the socket.
//! Servers federate in-process: [`BrokerServer::federate`] links two
//! servers' nodes so `Forward` effects publish straight into the peer —
//! the same hop-guarded federation the sharded sim exercises, now under
//! real threads and real sockets.
//!
//! **There is no wall clock here.** The repo-wide determinism lint bans
//! `Instant::now`/`SystemTime::now`, so the service runs on a *logical*
//! clock: every request frame carries the client's `now_us`, and the
//! server's clock is the maximum it has heard (a `fetch_max` on a
//! `SeqCst` atomic). Expiry sweeps, periodic deliveries and retained
//! lookups all evaluate against that clock — time advances exactly when
//! clients say it does, which also makes the smoke test reproducible.

use crate::node::{Admitted, BrokerNode, Effect, NodeConfig};
use crate::packet::{BrokerId, ContextPacket};
use crate::table::SubId;
use crate::wire::{Request, Response, WireError, MAX_FRAME_BYTES};
use simkit::SimTime;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;

/// The pseudo-subscription id `FETCH` results are delivered under.
pub const FETCH_SUB: SubId = SubId(u64::MAX);

/// Per-poll socket read timeout. Not a wall-clock *read* — it bounds
/// how long one blocking `read` may park the session thread, so a dead
/// peer can never hang the reader forever and `stop` is honoured even
/// on idle sessions.
pub const READ_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(50);

/// Idle polls a session tolerates *mid-frame* before declaring the
/// connection lost: a peer that starts a frame and then stalls holds
/// reader-side state for at most `MIDFRAME_PATIENCE × READ_TIMEOUT`.
pub const MIDFRAME_PATIENCE: u32 = 100;

/// Most trace summaries one `TRACE` response will carry, regardless of
/// the requested limit (keeps the response inside one frame).
pub const TRACE_LIMIT_MAX: u64 = 32;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared {
    node: Mutex<BrokerNode>,
    clock_us: AtomicU64,
    stop: AtomicBool,
    sessions: Mutex<BTreeMap<u64, mpsc::Sender<String>>>,
    peers: Mutex<BTreeMap<BrokerId, Weak<Shared>>>,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.clock_us.load(Ordering::SeqCst))
    }

    fn advance(&self, to: SimTime) -> SimTime {
        self.clock_us.fetch_max(to.as_micros(), Ordering::SeqCst);
        self.now()
    }
}

/// A broker running as a loopback TCP service.
pub struct BrokerServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl BrokerServer {
    /// Binds a broker on `127.0.0.1:0` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(id: BrokerId, cfg: NodeConfig) -> std::io::Result<BrokerServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            node: Mutex::new(BrokerNode::new(id, cfg)),
            clock_us: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sessions: Mutex::new(BTreeMap::new()),
            peers: Mutex::new(BTreeMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let session_seq = AtomicU64::new(1);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let session = session_seq.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || serve_session(&shared, stream, session));
            }
        });
        Ok(BrokerServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This broker's federation identity.
    pub fn id(&self) -> BrokerId {
        lock(&self.shared.node).id()
    }

    /// Links two servers as federation peers (both directions), with a
    /// nominal link latency feeding the QoS score.
    pub fn federate(a: &BrokerServer, b: &BrokerServer, latency_us: u64) {
        let (ida, idb) = (a.id(), b.id());
        let now_a = a.shared.now();
        let now_b = b.shared.now();
        lock(&a.shared.peers).insert(idb, Arc::downgrade(&b.shared));
        lock(&b.shared.peers).insert(ida, Arc::downgrade(&a.shared));
        lock(&a.shared.node).peers_mut().introduce(idb, latency_us, now_a);
        lock(&b.shared.node).peers_mut().introduce(ida, latency_us, now_b);
    }

    /// Broker counters (snapshot).
    pub fn stats(&self) -> crate::node::NodeStats {
        *lock(&self.shared.node).stats()
    }

    /// Stops accepting, wakes the accept loop and joins it. Session
    /// threads end when their clients disconnect.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        lock(&self.shared.sessions).clear();
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Publishes a forwarded packet into this server's node and pumps the
/// resulting effects. Hop guards bound the recursion. Returns whether
/// the peer accepted the packet (fresh *or* duplicate — idempotent
/// at-least-once acks both).
fn accept_forward(shared: &Arc<Shared>, packet: ContextPacket, now: SimTime) -> bool {
    let now = shared.advance(now);
    let outcome = lock(&shared.node).publish(packet, now);
    if matches!(outcome, Ok(Admitted::Fresh)) {
        pump(shared, now);
    }
    outcome.is_ok()
}

/// Drains the node, re-fires due forward retries and routes every
/// effect: deliveries to local session writers, forwards to federated
/// peers (self-acked on synchronous success).
fn pump(shared: &Arc<Shared>, now: SimTime) {
    loop {
        let effects = {
            let mut node = lock(&shared.node);
            let mut effects = node.drain(now);
            effects.extend(node.periodic_fire(now));
            effects.extend(node.fwd_retries_due(now));
            effects
        };
        if effects.is_empty() {
            return;
        }
        for effect in effects {
            match effect {
                Effect::Deliver {
                    subscriber,
                    sub,
                    packet,
                } => {
                    lock(&shared.node).note_delivery(packet.trace, now);
                    let line = Response::Evt { sub, packet }.encode();
                    if let Ok(line) = line {
                        let sessions = lock(&shared.sessions);
                        if let Some(tx) = sessions.get(&subscriber) {
                            let _ = tx.send(line);
                        }
                    }
                }
                Effect::Forward { to, packet, fwd_id } => {
                    let peer = lock(&shared.peers).get(&to).and_then(Weak::upgrade);
                    match peer {
                        Some(peer) => {
                            // In-process federation is synchronous: a
                            // successful publish *is* the ack. A shed
                            // or a vanished peer leaves the pending
                            // entry to re-fire on a later pump.
                            if accept_forward(&peer, packet, now) && fwd_id != 0 {
                                lock(&shared.node).fwd_ack(fwd_id);
                            }
                        }
                        None => {}
                    }
                }
            }
        }
    }
}

fn handle_request(shared: &Arc<Shared>, session: u64, req: Request) -> Response {
    let response = match req {
        Request::Ping(t) => Response::Pong(shared.advance(t)),
        Request::Pub(packet) => {
            let now = shared.advance(packet.published_at);
            match lock(&shared.node).publish(packet, now) {
                Ok(Admitted::Fresh) => Response::Ok("pub".into()),
                // A duplicate is a *positive* ack — the at-least-once
                // sender must stop retrying — but distinguishable so
                // clients can count suppressions.
                Ok(Admitted::Duplicate) => Response::Ok("dup".into()),
                Err(e) => Response::Err {
                    code: error_code(&e).into(),
                    detail: e.to_string(),
                },
            }
        }
        Request::Sub {
            type_name,
            mode,
            expires_at,
            now,
        } => {
            let now = shared.advance(now);
            let id = lock(&shared.node).subscribe(session, &type_name, mode, expires_at, now);
            Response::Ok(format!("sub{}", id.0))
        }
        Request::Unsub(id) => {
            if lock(&shared.node).unsubscribe(id) {
                Response::Ok("unsub".into())
            } else {
                Response::Err {
                    code: "no_such_sub".into(),
                    detail: format!("sub{}", id.0),
                }
            }
        }
        Request::Fetch { type_name, now } => {
            let now = shared.advance(now);
            match lock(&shared.node).fetch(&type_name, now) {
                Ok(packet) => Response::Evt {
                    sub: FETCH_SUB,
                    packet,
                },
                Err(e) => Response::Err {
                    code: error_code(&e).into(),
                    detail: e.to_string(),
                },
            }
        }
        Request::Stats { now } => {
            shared.advance(now);
            Response::Stats(lock(&shared.node).telemetry().snapshot())
        }
        Request::Trace { limit, now } => {
            shared.advance(now);
            // Bound the response to what fits one frame comfortably.
            let limit = limit.min(TRACE_LIMIT_MAX) as usize;
            let node = lock(&shared.node);
            let lines = tracekit::summaries(node.trace_log(), limit)
                .iter()
                .map(tracekit::TraceSummary::line)
                .collect();
            Response::Trace(lines)
        }
    };
    // Every request may have unblocked work (admissions, due periodics,
    // sweeps ride the same logical clock).
    let now = shared.now();
    lock(&shared.node).sweep(now);
    pump(shared, now);
    response
}

fn error_code(e: &crate::admission::BrokerError) -> &'static str {
    use crate::admission::BrokerError as E;
    match e {
        E::QueueFull { .. } => "queue_full",
        E::Unattributed => "unattributed",
        E::ExpiredOnArrival => "expired",
        E::SourceBlocked(_) => "blocked",
        E::BrokerDown => "down",
        E::RetryExhausted { .. } => "retry_exhausted",
        E::PeerUnreachable(_) => "peer_unreachable",
        E::NoSuchContext(_) => "not_found",
    }
}

/// Outcome of reading one frame off the socket.
enum FrameRead {
    /// A complete line within the frame cap (newline stripped).
    Line(String),
    /// The line exceeded [`MAX_FRAME_BYTES`]; it was drained off the
    /// socket so the session can continue, but never buffered whole.
    Oversized {
        /// Bytes observed before the line ended.
        len: usize,
    },
    /// The peer disconnected cleanly, at a frame boundary.
    Eof,
    /// A read timed out with nothing buffered: the session is idle.
    /// The caller polls its stop flag and comes back.
    Idle,
    /// The transport died with a frame half-read (disconnect or stall
    /// mid-line): a typed [`WireError::ConnLost`], never a hang.
    Lost(WireError),
}

/// Reads one newline-terminated frame with a hard byte cap: a hostile
/// client sending an endless line costs at most one cap-sized buffer,
/// not unbounded memory. The socket carries [`READ_TIMEOUT`], so a
/// frame may arrive across several polls; partial bytes accumulate
/// until the newline, a clean idle timeout reports [`FrameRead::Idle`],
/// and a peer that dies (or stalls past [`MIDFRAME_PATIENCE`]) with a
/// frame half-read yields a typed loss instead of blocking forever.
fn read_frame(reader: &mut BufReader<TcpStream>) -> FrameRead {
    let cap = (MAX_FRAME_BYTES + 2) as u64;
    let mut line = String::new();
    let mut drained = 0usize;
    let mut oversized = false;
    let mut stalls = 0u32;
    loop {
        if oversized {
            // Discard without buffering the whole hostile line.
            drained += line.len();
            line.clear();
        }
        let room = cap.saturating_sub(line.len() as u64).max(1);
        match reader.by_ref().take(room).read_line(&mut line) {
            Ok(0) => {
                // EOF: clean only at a frame boundary.
                return if line.is_empty() && !oversized {
                    FrameRead::Eof
                } else {
                    FrameRead::Lost(WireError::ConnLost {
                        partial: drained + line.len(),
                        detail: "eof".into(),
                    })
                };
            }
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if line.is_empty() && !oversized {
                    return FrameRead::Idle;
                }
                stalls += 1;
                if stalls >= MIDFRAME_PATIENCE {
                    return FrameRead::Lost(WireError::ConnLost {
                        partial: drained + line.len(),
                        detail: "stalled mid-frame".into(),
                    });
                }
                continue;
            }
            Err(e) => {
                return FrameRead::Lost(WireError::ConnLost {
                    partial: drained + line.len(),
                    detail: e.kind().to_string(),
                });
            }
        }
        stalls = 0;
        if line.ends_with('\n') {
            return if oversized {
                FrameRead::Oversized {
                    len: drained + line.len(),
                }
            } else {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                FrameRead::Line(std::mem::take(&mut line))
            };
        }
        if line.len() as u64 >= cap {
            // Cap hit mid-line: remember, keep draining to the newline.
            oversized = true;
        }
        // Otherwise: partial frame buffered; poll for the rest.
    }
}

fn serve_session(shared: &Arc<Shared>, stream: TcpStream, session: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Bounded blocking reads: a dead or stalled peer can park this
    // thread for at most one poll interval before control returns.
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let (tx, rx) = mpsc::channel::<String>();
    lock(&shared.sessions).insert(session, tx.clone());
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            let _ = out.flush();
        }
    });

    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader) {
            FrameRead::Eof => break,
            FrameRead::Idle => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            FrameRead::Lost(e) => {
                // Typed, not hung: tell the peer if it can still hear,
                // then end the session — nothing sane follows half a
                // frame.
                let refusal = Response::Err {
                    code: e.code().into(),
                    detail: e.to_string(),
                };
                if let Ok(encoded) = refusal.encode() {
                    let _ = tx.send(encoded);
                }
                break;
            }
            FrameRead::Oversized { len } => {
                let e = WireError::Oversized { len };
                let refusal = Response::Err {
                    code: e.code().into(),
                    detail: e.to_string(),
                };
                let sent = refusal
                    .encode()
                    .is_ok_and(|encoded| tx.send(encoded).is_ok());
                if sent {
                    continue;
                }
                break;
            }
            FrameRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Ok(req) => handle_request(shared, session, req),
            Err(e) => Response::Err {
                code: e.code().into(),
                detail: e.to_string(),
            },
        };
        if let Ok(encoded) = response.encode() {
            if tx.send(encoded).is_err() {
                break;
            }
        }
    }
    lock(&shared.sessions).remove(&session);
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SubMode;
    use simkit::SimDuration;

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { reader, stream }
        }

        fn send(&mut self, req: &Request) {
            let line = req.encode().unwrap();
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> Response {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            Response::decode(line.trim_end()).unwrap()
        }
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pub_sub_round_trip_over_a_real_socket() {
        let server = BrokerServer::spawn(BrokerId(0), NodeConfig::default()).unwrap();
        let mut sub = Client::connect(server.addr());
        sub.send(&Request::Sub {
            type_name: "wind".into(),
            mode: SubMode::Event,
            expires_at: secs(1_000),
            now: secs(1),
        });
        assert_eq!(sub.recv(), Response::Ok("sub0".into()));

        let mut publisher = Client::connect(server.addr());
        publisher.send(&Request::Pub(ContextPacket::new(
            "wind",
            7_000,
            secs(2),
            SimDuration::from_secs(60),
            "buoy-1",
        )));
        assert_eq!(publisher.recv(), Response::Ok("pub".into()));

        match sub.recv() {
            Response::Evt { packet, .. } => {
                assert_eq!(packet.value_milli, 7_000);
                assert_eq!(packet.source, "buoy-1");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_trace_ops_requests_answer_over_the_socket() {
        let server = BrokerServer::spawn(BrokerId(7), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        c.send(&Request::Sub {
            type_name: "wind".into(),
            mode: SubMode::Event,
            expires_at: secs(1_000),
            now: secs(1),
        });
        assert_eq!(c.recv(), Response::Ok("sub0".into()));
        // A traced publish: sampled root, rate 0 ⇒ always sampled.
        c.send(&Request::Pub(
            ContextPacket::new("wind", 7_000, secs(2), SimDuration::from_secs(60), "buoy-1")
                .with_trace(tracekit::TraceCtx::root(0xfeed, 0)),
        ));
        // The delivery is pumped inside the request, so the EVT frame
        // reaches the (self-subscribed) session before the OK.
        assert!(matches!(c.recv(), Response::Evt { .. }));
        assert_eq!(c.recv(), Response::Ok("pub".into()));

        c.send(&Request::Stats { now: secs(3) });
        match c.recv() {
            Response::Stats(text) => {
                assert!(text.contains("broker_admitted_total 1"), "stats:\n{text}");
                assert!(text.contains("broker_delivered_total 1"), "stats:\n{text}");
                assert!(text.contains("broker_live_subscriptions 1"), "stats:\n{text}");
            }
            other => panic!("expected STATS, got {other:?}"),
        }

        c.send(&Request::Trace {
            limit: 8,
            now: secs(3),
        });
        match c.recv() {
            Response::Trace(lines) => {
                assert_eq!(lines.len(), 1, "lines: {lines:?}");
                assert!(lines[0].contains("deliveries=1"), "line: {}", lines[0]);
            }
            other => panic!("expected TRACE, got {other:?}"),
        }
    }

    #[test]
    fn oversized_lines_are_refused_without_killing_the_session() {
        let server = BrokerServer::spawn(BrokerId(8), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        let garbage = "G".repeat(MAX_FRAME_BYTES * 3);
        c.stream.write_all(garbage.as_bytes()).unwrap();
        c.stream.write_all(b"\n").unwrap();
        match c.recv() {
            Response::Err { code, .. } => assert_eq!(code, "oversized"),
            other => panic!("expected ERR, got {other:?}"),
        }
        // The session survives and keeps serving well-formed frames.
        c.send(&Request::Ping(secs(5)));
        assert_eq!(c.recv(), Response::Pong(secs(5)));
    }

    /// A raw loopback socket pair: `(server side, client side)`.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    #[test]
    fn mid_frame_disconnect_is_a_typed_conn_lost_not_a_hang() {
        let (server, mut client) = socket_pair();
        server.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(server);
        // Half a frame, then the peer dies.
        client.write_all(b"PUB wind 7").unwrap();
        client.flush().unwrap();
        drop(client);
        match read_frame(&mut reader) {
            FrameRead::Lost(WireError::ConnLost { partial, detail }) => {
                assert_eq!(partial, 10);
                assert_eq!(detail, "eof");
            }
            FrameRead::Line(l) => panic!("half frame surfaced as a line: {l:?}"),
            _ => panic!("expected ConnLost"),
        }
    }

    #[test]
    fn clean_disconnect_at_a_frame_boundary_is_eof() {
        let (server, mut client) = socket_pair();
        server.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(server);
        client.write_all(b"PING 5\n").unwrap();
        drop(client);
        assert!(matches!(read_frame(&mut reader), FrameRead::Line(l) if l == "PING 5"));
        assert!(matches!(read_frame(&mut reader), FrameRead::Eof));
    }

    #[test]
    fn idle_read_times_out_into_a_poll_not_a_block() {
        let (server, client) = socket_pair();
        server.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(server);
        // No bytes at all: the read returns (Idle) instead of parking
        // the thread until the peer speaks.
        assert!(matches!(read_frame(&mut reader), FrameRead::Idle));
        // A frame arriving across two writes is reassembled.
        let mut client = client;
        client.write_all(b"PING ").unwrap();
        client.flush().unwrap();
        client.write_all(b"9\n").unwrap();
        client.flush().unwrap();
        loop {
            match read_frame(&mut reader) {
                FrameRead::Idle => continue,
                FrameRead::Line(l) => {
                    assert_eq!(l, "PING 9");
                    break;
                }
                other => panic!("unexpected: {:?}", std::mem::discriminant(&other)),
            }
        }
    }

    #[test]
    fn session_survives_a_peer_dying_mid_frame() {
        let server = BrokerServer::spawn(BrokerId(9), NodeConfig::default()).unwrap();
        // One client dies mid-frame…
        {
            let mut dying = Client::connect(server.addr());
            dying.stream.write_all(b"PUB win").unwrap();
            dying.stream.flush().unwrap();
        }
        // …and the server keeps serving fresh sessions.
        let mut c = Client::connect(server.addr());
        c.send(&Request::Ping(secs(4)));
        assert_eq!(c.recv(), Response::Pong(secs(4)));
    }

    #[test]
    fn duplicate_publishes_answer_dup_over_the_wire() {
        let server = BrokerServer::spawn(BrokerId(3), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        let packet = ContextPacket::new("t", 1, secs(2), SimDuration::from_secs(60), "s")
            .with_seq(crate::packet::PacketSeq::new(4, 1));
        c.send(&Request::Pub(packet.clone()));
        assert_eq!(c.recv(), Response::Ok("pub".into()));
        c.send(&Request::Pub(packet));
        assert_eq!(c.recv(), Response::Ok("dup".into()));
    }

    #[test]
    fn logical_clock_is_monotone_and_drives_expiry() {
        let server = BrokerServer::spawn(BrokerId(1), NodeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        c.send(&Request::Pub(ContextPacket::new(
            "t",
            1,
            secs(10),
            SimDuration::from_secs(5),
            "s",
        )));
        assert_eq!(c.recv(), Response::Ok("pub".into()));
        // Clock never goes backwards.
        c.send(&Request::Ping(secs(3)));
        assert_eq!(c.recv(), Response::Pong(secs(10)));
        // Retained while valid…
        c.send(&Request::Fetch {
            type_name: "t".into(),
            now: secs(12),
        });
        assert!(matches!(c.recv(), Response::Evt { .. }));
        // …gone after expiry.
        c.send(&Request::Fetch {
            type_name: "t".into(),
            now: secs(30),
        });
        assert!(matches!(c.recv(), Response::Err { .. }));
    }
}
