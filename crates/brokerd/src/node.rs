//! The pure broker core: `(input, now) → effects`.
//!
//! [`BrokerNode`] owns a broker's entire state — interner, sharded
//! subscription table, bounded inbox, peer view, counters — and exposes
//! transition functions that never touch a clock, a socket or a thread.
//! Side effects come back as [`Effect`] values for the *harness* to
//! interpret:
//!
//! * the sharded simulation ([`fleet`](crate::fleet)) turns effects into
//!   `EventCtx::send`s between actors;
//! * the loopback TCP service ([`net`](crate::net)) turns them into
//!   `EVT` frames on subscriber sockets and lock-step forwards to peer
//!   servers;
//! * the classic-sim [`FederatedCell`](crate::cell::FederatedCell) turns
//!   them into `OnItems` callbacks for `InfraCxtProvider`.
//!
//! One core, three harnesses — the smoke test and the benchmark gate
//! therefore exercise the same matching, admission and federation code.
//!
//! `BrokerNode` is `Send` (no `Rc`, no interior mutability) so shard
//! workers may own brokers on any thread.

use crate::admission::{AdmissionStats, BrokerError};
use crate::dedup::DedupWindow;
use crate::federation::{LoadDigest, PeerView};
use crate::packet::{BrokerId, ContextPacket, MAX_HOPS};
use crate::table::{SubId, SubMode, SubscriptionTable, SweepStats};
use contory::vocab::{Interner, Sym};
use simkit::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tracekit::{Stage, TraceCtx, TraceLog};

/// Broker tunables.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Internal shard count of the subscription table.
    pub table_shards: usize,
    /// Bounded inbox capacity; publishes beyond it are shed.
    pub inbox_capacity: usize,
    /// Packets processed per [`BrokerNode::drain`] call (the service
    /// rate of the queueing model).
    pub drain_budget: usize,
    /// Gossip-plane trace sampling: one digest trace in
    /// `2^trace_sample_log2` is sampled (`0` ⇒ every digest).
    pub trace_sample_log2: u32,
    /// Publisher origins tracked by the dedup window (LRU-bounded).
    pub dedup_origins: usize,
    /// Ack timeout before a tracked federation forward is re-sent.
    pub fwd_timeout: SimDuration,
    /// Maximum re-sends of one forward after the initial attempt.
    /// `0` disables the retry machinery (legacy fire-and-forget).
    pub fwd_attempts: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            table_shards: 4,
            inbox_capacity: 64,
            drain_budget: 16,
            trace_sample_log2: 3,
            dedup_origins: 4096,
            fwd_timeout: SimDuration::from_millis(150),
            fwd_attempts: 0,
        }
    }
}

/// What admission concluded about an accepted publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admitted {
    /// First sighting: enqueued for fan-out.
    Fresh,
    /// The dedup window had already seen this [`PacketSeq`]: suppressed,
    /// but positively acknowledged so at-least-once senders stop
    /// retrying.
    ///
    /// [`PacketSeq`]: crate::packet::PacketSeq
    Duplicate,
}

/// A broker's durable view of one peer's subscription table, built from
/// anti-entropy digests carried on the gossip plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Logical version: emission time (µs) of the digest that carried
    /// this entry. Stale gossip never regresses it.
    pub version: u64,
    /// The peer's subscription-table digest at `version`.
    pub table_digest: u64,
    /// The peer's live subscription count at `version`.
    pub subscriptions: u64,
}

/// A federation forward awaiting its ack.
#[derive(Clone, Debug)]
struct PendingFwd {
    to: BrokerId,
    packet: ContextPacket,
    attempts_used: u32,
    next_retry: SimTime,
}

/// Deterministic 64-bit mixer for retry jitter (no RNG in the core).
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A side effect the harness must carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Deliver a packet to a local subscriber.
    Deliver {
        /// Subscriber identity as registered at subscribe time.
        subscriber: u64,
        /// The subscription being served.
        sub: SubId,
        /// The packet (hops included, for provenance).
        packet: ContextPacket,
    },
    /// Forward a packet to a federation peer.
    Forward {
        /// Destination broker.
        to: BrokerId,
        /// The packet, with this broker appended to its hop list.
        packet: ContextPacket,
        /// Retry-tracking handle: non-zero when the sender expects a
        /// [`BrokerNode::fwd_ack`] and will re-send on timeout; `0` for
        /// untracked (fire-and-forget) forwards.
        fwd_id: u64,
    },
}

/// Running broker counters (all deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Admission outcomes.
    pub admission: AdmissionStats,
    /// Deliveries effected to local subscribers.
    pub delivered: u64,
    /// Packets forwarded to peers.
    pub forwarded: u64,
    /// Forwards suppressed by the hop-list loop guard.
    pub loops_dropped: u64,
    /// Subscriptions expired by sweeps.
    pub subs_expired: u64,
    /// Retained packets expired by sweeps.
    pub packets_expired: u64,
    /// Gossip digests this broker emitted.
    pub gossip_sent: u64,
    /// Gossip digests heard and absorbed from peers.
    pub gossip_heard: u64,
    /// Duplicate publishes suppressed by the dedup window.
    pub dedup_suppressed: u64,
    /// Federation forwards re-sent after an ack timeout.
    pub retries: u64,
    /// Forwards abandoned after the retry budget ran out.
    pub retry_exhausted: u64,
    /// Lease renewals ([`BrokerNode::subscribe_renewing`] calls).
    pub resubscriptions: u64,
    /// Anti-entropy directory reconciliations (heard digests that
    /// changed this broker's view of a peer's table).
    pub anti_entropy_rounds: u64,
}

/// A federated context broker, as pure state + transitions.
#[derive(Debug)]
pub struct BrokerNode {
    id: BrokerId,
    cfg: NodeConfig,
    interner: Interner,
    table: SubscriptionTable,
    inbox: VecDeque<ContextPacket>,
    peers: PeerView,
    blocked: BTreeSet<String>,
    stats: NodeStats,
    trace: TraceLog,
    dedup: DedupWindow,
    pending_fwds: BTreeMap<u64, PendingFwd>,
    next_fwd_id: u64,
    directory: BTreeMap<BrokerId, DirEntry>,
}

impl BrokerNode {
    /// Creates a broker.
    pub fn new(id: BrokerId, cfg: NodeConfig) -> Self {
        let table = SubscriptionTable::new(cfg.table_shards);
        let dedup = DedupWindow::new(cfg.dedup_origins);
        BrokerNode {
            id,
            cfg,
            interner: Interner::new(),
            table,
            inbox: VecDeque::new(),
            peers: PeerView::new(),
            blocked: BTreeSet::new(),
            stats: NodeStats::default(),
            trace: TraceLog::new(),
            dedup,
            pending_fwds: BTreeMap::new(),
            next_fwd_id: 1,
            directory: BTreeMap::new(),
        }
    }

    /// This broker's federation identity.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Running counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The hop-event log trace assembly consumes (folded by the
    /// harness after a run, served live by the `TRACE` ops request).
    pub fn trace_log(&self) -> &TraceLog {
        &self.trace
    }

    /// This broker's id in the tracekit node namespace.
    fn trace_node(&self) -> u64 {
        u64::from(self.id.0)
    }

    /// Mirrors an active hop event onto the installed obskit collector
    /// (single-threaded harnesses only; a no-op when no collector is
    /// installed, i.e. on shard worker threads). The label carries the
    /// tracekit markers [`TraceLog::from_obskit_jsonl`] lifts.
    fn obs_hop(&self, ctx: TraceCtx, stage: Stage, span: u32, now: SimTime) {
        if span == 0 || !obskit::enabled() {
            return;
        }
        let phase = match stage {
            Stage::Admit | Stage::Shed => obskit::Phase::Admission,
            Stage::Federate | Stage::Gossip => obskit::Phase::Broker,
            Stage::Deliver => obskit::Phase::Deliver,
            _ => obskit::Phase::Dispatch,
        };
        let label = format!(
            "hop t={:016x} s={} n={} h={} sp={span} p={}",
            ctx.trace_id,
            stage.as_str(),
            self.trace_node(),
            ctx.hop,
            ctx.parent_span,
        );
        obskit::event(phase, &label, None, now);
    }

    /// Records the terminal deliver hop for a packet this broker
    /// served. Harnesses call it at the moment a delivery actually
    /// lands (EVT frame written, `OnItems` callback fired), so the
    /// deliver span carries the landing time, not the dispatch time.
    pub fn note_delivery(&mut self, trace: TraceCtx, now: SimTime) {
        let node = self.trace_node();
        let span = self.trace.record(trace, Stage::Deliver, node, now);
        self.obs_hop(trace, Stage::Deliver, span, now);
    }

    /// Builds a metrics registry snapshot of this broker's counters and
    /// gauges — the payload behind the `STATS` ops request. Plain data
    /// (`Send`, no thread-local), so the TCP harness can call it from
    /// any session thread.
    pub fn telemetry(&self) -> obskit::Registry {
        let mut reg = obskit::Registry::new();
        let s = &self.stats;
        reg.counter_add("broker_admitted_total", s.admission.admitted);
        reg.counter_add("broker_shed_total", s.admission.shed);
        reg.counter_add("broker_unattributed_total", s.admission.unattributed);
        reg.counter_add("broker_expired_on_arrival_total", s.admission.expired);
        reg.counter_add("broker_source_blocked_total", s.admission.blocked);
        reg.counter_add("broker_delivered_total", s.delivered);
        reg.counter_add("broker_forwarded_total", s.forwarded);
        reg.counter_add("broker_loops_dropped_total", s.loops_dropped);
        reg.counter_add("broker_subs_expired_total", s.subs_expired);
        reg.counter_add("broker_packets_expired_total", s.packets_expired);
        reg.counter_add("broker_gossip_sent_total", s.gossip_sent);
        reg.counter_add("broker_gossip_heard_total", s.gossip_heard);
        reg.counter_add("broker_dedup_suppressed_total", s.dedup_suppressed);
        reg.counter_add("broker_fwd_retries_total", s.retries);
        reg.counter_add("broker_retry_exhausted_total", s.retry_exhausted);
        reg.counter_add("broker_resubscriptions_total", s.resubscriptions);
        reg.counter_add("broker_anti_entropy_total", s.anti_entropy_rounds);
        reg.counter_add("broker_trace_spans_total", self.trace.len() as u64);
        reg.gauge_set("broker_queue_depth", self.inbox.len() as f64);
        reg.gauge_set("broker_live_subscriptions", self.table.len() as f64);
        reg.gauge_set("broker_federation_peers", self.peers.len() as f64);
        reg.gauge_set("broker_pending_forwards", self.pending_fwds.len() as f64);
        reg
    }

    /// Current inbox depth (the backpressure signal gossip advertises).
    pub fn queue_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Live subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.table.len()
    }

    /// Mutable access to the peer view (the harness wires topology).
    pub fn peers_mut(&mut self) -> &mut PeerView {
        &mut self.peers
    }

    /// Read access to the peer view.
    pub fn peers(&self) -> &PeerView {
        &self.peers
    }

    /// Blocks a source: its publishes are refused from now on.
    pub fn block_source(&mut self, source: impl Into<String>) {
        self.blocked.insert(source.into());
    }

    /// Interns a context-type name (admission-time cost only; every hot
    /// path below works on the dense id).
    pub fn intern(&mut self, type_name: &str) -> Sym {
        self.interner.intern(type_name)
    }

    /// The id of an already-seen type, without inserting.
    pub fn lookup(&self, type_name: &str) -> Option<Sym> {
        self.interner.get(type_name)
    }

    /// Registers a subscription.
    pub fn subscribe(
        &mut self,
        subscriber: u64,
        type_name: &str,
        mode: SubMode,
        expires_at: SimTime,
        now: SimTime,
    ) -> SubId {
        let sym = self.interner.intern(type_name);
        obskit::count("broker_subscribed", 1);
        self.table.subscribe(subscriber, sym, mode, expires_at, now)
    }

    /// Lease renewal: extends an existing subscription for the same
    /// `(subscriber, type, mode)` or — when the broker lost it (crash
    /// restart, expiry) — re-registers it. Returns the live handle and
    /// whether an existing lease was extended. Unlike
    /// [`BrokerNode::subscribe`], this never stacks a second identical
    /// subscription, so periodic re-subscription is idempotent.
    pub fn subscribe_renewing(
        &mut self,
        subscriber: u64,
        type_name: &str,
        mode: SubMode,
        expires_at: SimTime,
        now: SimTime,
    ) -> (SubId, bool) {
        let sym = self.interner.intern(type_name);
        let (id, renewed) = self
            .table
            .renew_or_subscribe(subscriber, sym, mode, expires_at, now);
        self.stats.resubscriptions += 1;
        obskit::count("broker_resubscribed", 1);
        (id, renewed)
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        self.table.unsubscribe(id)
    }

    /// Admission: vets the hygiene contract, the dedup window and the
    /// bounded inbox, then enqueues. Effects flow later, from
    /// [`BrokerNode::drain`]. Duplicates are suppressed *and*
    /// positively acknowledged (`Ok(Admitted::Duplicate)`) — refusing
    /// them would make at-least-once senders retry forever.
    pub fn publish(
        &mut self,
        mut packet: ContextPacket,
        now: SimTime,
    ) -> Result<Admitted, BrokerError> {
        let span = obskit::start(obskit::Phase::Admission, "publish", None, now);
        let outcome = self.admit(&mut packet, now);
        match &outcome {
            Ok(Admitted::Fresh) => {
                self.stats.admission.admitted += 1;
                obskit::count("broker_admitted", 1);
                let node = self.trace_node();
                let admit = self.trace.record(packet.trace, Stage::Admit, node, now);
                self.obs_hop(packet.trace, Stage::Admit, admit, now);
                let enq = self
                    .trace
                    .record(packet.trace.child(admit), Stage::Enqueue, node, now);
                // The packet waits in the inbox re-parented under its
                // enqueue hop, so the dispatch hop links to it.
                if enq != 0 {
                    packet.trace = packet.trace.child(enq);
                }
                obskit::gauge("broker_queue_depth", (self.inbox.len() + 1) as f64);
                self.inbox.push_back(packet);
            }
            Ok(Admitted::Duplicate) => {
                self.stats.dedup_suppressed += 1;
                obskit::count("broker_dedup_suppressed", 1);
                let node = self.trace_node();
                let sp = self.trace.record(packet.trace, Stage::DupSuppress, node, now);
                self.obs_hop(packet.trace, Stage::DupSuppress, sp, now);
            }
            Err(e) => {
                let node = self.trace_node();
                let shed = self.trace.record(packet.trace, Stage::Shed, node, now);
                self.obs_hop(packet.trace, Stage::Shed, shed, now);
                self.note_refusal(e);
            }
        }
        obskit::end(span, now);
        outcome
    }

    fn admit(&mut self, packet: &mut ContextPacket, now: SimTime) -> Result<Admitted, BrokerError> {
        if !packet.is_attributed() {
            return Err(BrokerError::Unattributed);
        }
        if !packet.is_valid_at(now) {
            return Err(BrokerError::ExpiredOnArrival);
        }
        if self.blocked.contains(&packet.source) {
            return Err(BrokerError::SourceBlocked(packet.source.clone()));
        }
        // The duplicate check runs before the capacity check — a
        // duplicate must be ackable even under backpressure — but the
        // window only *records* the packet once it is actually
        // enqueued, so a shed packet's retry is not mistaken for a
        // duplicate.
        if self.dedup.seen(packet.seq) {
            let _ = self.dedup.observe(packet.seq);
            return Ok(Admitted::Duplicate);
        }
        if self.inbox.len() >= self.cfg.inbox_capacity {
            return Err(BrokerError::QueueFull {
                capacity: self.cfg.inbox_capacity,
            });
        }
        let _ = self.dedup.observe(packet.seq);
        packet.cxt_type = self.interner.intern(&packet.type_name);
        Ok(Admitted::Fresh)
    }

    fn note_refusal(&mut self, e: &BrokerError) {
        match e {
            BrokerError::QueueFull { .. } => {
                self.stats.admission.shed += 1;
                obskit::count("broker_shed", 1);
            }
            BrokerError::Unattributed => {
                self.stats.admission.unattributed += 1;
                obskit::count("broker_unattributed", 1);
            }
            BrokerError::ExpiredOnArrival => {
                self.stats.admission.expired += 1;
                obskit::count("broker_expired_on_arrival", 1);
            }
            BrokerError::SourceBlocked(_) => {
                self.stats.admission.blocked += 1;
                obskit::count("broker_source_blocked", 1);
            }
            BrokerError::RetryExhausted { .. } => {
                self.stats.retry_exhausted += 1;
                obskit::count("broker_retry_exhausted", 1);
            }
            BrokerError::BrokerDown
            | BrokerError::PeerUnreachable(_)
            | BrokerError::NoSuchContext(_) => {}
        }
    }

    /// Service: processes up to `drain_budget` inbox packets — retain,
    /// match local subscribers, forward to peers — and returns the
    /// effects in deterministic order (inbox FIFO × subscription-id
    /// order × peer-id order).
    pub fn drain(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        let span = obskit::start(obskit::Phase::Dispatch, "drain", None, now);
        for _ in 0..self.cfg.drain_budget {
            let Some(mut packet) = self.inbox.pop_front() else {
                break;
            };
            if !packet.is_valid_at(now) {
                // Died waiting in the queue; counted with sweep expiry.
                self.stats.packets_expired += 1;
                obskit::count("broker_expired_in_queue", 1);
                continue;
            }
            let node = self.trace_node();
            let dispatch = self.trace.record(packet.trace, Stage::Dispatch, node, now);
            self.obs_hop(packet.trace, Stage::Dispatch, dispatch, now);
            if dispatch != 0 {
                packet.trace = packet.trace.child(dispatch);
            }
            self.fan_out(packet, now, &mut effects);
        }
        obskit::gauge("broker_queue_depth", self.inbox.len() as f64);
        obskit::end(span, now);
        effects
    }

    fn fan_out(&mut self, packet: ContextPacket, now: SimTime, effects: &mut Vec<Effect>) {
        // Local matching first (event + one-shot subscribers).
        for sub in self.table.on_arrival(packet.cxt_type, now) {
            self.stats.delivered += 1;
            obskit::count("broker_delivered", 1);
            effects.push(Effect::Deliver {
                subscriber: sub.subscriber,
                sub: sub.id,
                packet: packet.clone(),
            });
        }
        // Federation: forward to every peer not already on the hop list,
        // bounded by MAX_HOPS.
        if packet.hops.len() < MAX_HOPS {
            let stamped = packet.clone().with_hop(self.id);
            for peer in self.peers.brokers() {
                if stamped.visited(peer) {
                    self.stats.loops_dropped += 1;
                    obskit::count("broker_loops_dropped", 1);
                    continue;
                }
                self.stats.forwarded += 1;
                obskit::count("broker_forwarded", 1);
                let node = self.trace_node();
                let fed = self.trace.record(stamped.trace, Stage::Federate, node, now);
                self.obs_hop(stamped.trace, Stage::Federate, fed, now);
                let mut forward = stamped.clone();
                // The peer's admit hop parents under this federate hop,
                // one federation hop further from the publisher.
                if fed != 0 {
                    forward.trace = forward.trace.hopped(fed);
                }
                // Only sequenced packets are retry-tracked: re-sending
                // an unsequenced packet could double-deliver (no dedup
                // key), so legacy traffic stays fire-and-forget.
                let fwd_id = if self.cfg.fwd_attempts > 0 && forward.seq.is_some() {
                    let id = self.next_fwd_id;
                    self.next_fwd_id += 1;
                    self.pending_fwds.insert(
                        id,
                        PendingFwd {
                            to: peer,
                            packet: forward.clone(),
                            attempts_used: 0,
                            next_retry: now + self.cfg.fwd_timeout,
                        },
                    );
                    obskit::gauge("broker_pending_forwards", self.pending_fwds.len() as f64);
                    id
                } else {
                    0
                };
                effects.push(Effect::Forward {
                    to: peer,
                    packet: forward,
                    fwd_id,
                });
            }
        }
        self.table.retain(packet);
    }

    /// Acknowledges a tracked forward: the peer admitted (or
    /// dup-suppressed) the packet, so its retry entry is retired.
    /// Returns whether the id was still pending. Acks for `0` (an
    /// untracked forward) and unknown/duplicate ids are no-ops — acks
    /// ride chaos links too and may themselves be duplicated.
    pub fn fwd_ack(&mut self, fwd_id: u64) -> bool {
        if fwd_id == 0 {
            return false;
        }
        let was = self.pending_fwds.remove(&fwd_id).is_some();
        if was {
            obskit::gauge("broker_pending_forwards", self.pending_fwds.len() as f64);
        }
        was
    }

    /// Tracked forwards currently awaiting an ack.
    pub fn pending_forwards(&self) -> usize {
        self.pending_fwds.len()
    }

    /// Re-sends of tracked forwards whose ack timed out by `now`, with
    /// capped exponential backoff and deterministic jitter (hashed from
    /// the forward id and attempt number — no RNG in the core).
    /// Forwards that exhausted the retry budget are dropped and counted
    /// as [`BrokerError::RetryExhausted`].
    pub fn fwd_retries_due(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.pending_fwds.is_empty() {
            return effects;
        }
        let due: Vec<u64> = self
            .pending_fwds
            .iter()
            .filter(|(_, p)| p.next_retry <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let Some(mut p) = self.pending_fwds.remove(&id) else {
                continue;
            };
            if p.attempts_used >= self.cfg.fwd_attempts {
                self.note_refusal(&BrokerError::RetryExhausted {
                    attempts: p.attempts_used,
                });
                obskit::gauge("broker_pending_forwards", self.pending_fwds.len() as f64);
                continue;
            }
            p.attempts_used += 1;
            self.stats.retries += 1;
            obskit::count("broker_fwd_retries", 1);
            let node = self.trace_node();
            let sp = self.trace.record(p.packet.trace, Stage::Retry, node, now);
            self.obs_hop(p.packet.trace, Stage::Retry, sp, now);
            let timeout_us = self.cfg.fwd_timeout.as_micros().max(1);
            let backoff = timeout_us << p.attempts_used.min(4);
            let jitter = mix(id ^ (u64::from(p.attempts_used) << 56)) % (timeout_us / 4 + 1);
            p.next_retry = now + SimDuration::from_micros(backoff + jitter);
            effects.push(Effect::Forward {
                to: p.to,
                packet: p.packet.clone(),
                fwd_id: id,
            });
            self.pending_fwds.insert(id, p);
        }
        effects
    }

    /// Periodic deliveries due at `now`: each due periodic subscription
    /// is served from retained context (subscriptions whose type has no
    /// valid retained packet are skipped this round).
    pub fn periodic_fire(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        for sub in self.table.periodic_due(now) {
            let Some(packet) = self.table.retained(sub.cxt_type, now).cloned() else {
                continue;
            };
            self.stats.delivered += 1;
            obskit::count("broker_delivered", 1);
            effects.push(Effect::Deliver {
                subscriber: sub.subscriber,
                sub: sub.id,
                packet,
            });
        }
        effects
    }

    /// Expiry sweep over subscriptions and retained packets.
    pub fn sweep(&mut self, now: SimTime) -> SweepStats {
        let stats = self.table.sweep(now);
        self.stats.subs_expired += stats.subscriptions as u64;
        self.stats.packets_expired += stats.packets as u64;
        if stats.subscriptions + stats.packets > 0 {
            obskit::count("broker_swept", (stats.subscriptions + stats.packets) as u64);
        }
        stats
    }

    /// This broker's gossip digest at `now`. Each digest roots a
    /// gossip-plane trace, minted deterministically from
    /// `(broker, now)` — no RNG, so the sampled set is a pure function
    /// of the schedule.
    pub fn gossip_digest(&mut self, now: SimTime) -> LoadDigest {
        self.stats.gossip_sent += 1;
        obskit::count("broker_gossip_sent", 1);
        const GOSSIP_SALT: u64 = 0x6055_1bca_57a1_0000;
        let material = GOSSIP_SALT ^ (u64::from(self.id.0) << 44) ^ now.as_micros();
        let ctx = TraceCtx::root(material, self.cfg.trace_sample_log2);
        let node = self.trace_node();
        let span = self.trace.record(ctx, Stage::Gossip, node, now);
        self.obs_hop(ctx, Stage::Gossip, span, now);
        LoadDigest {
            broker: self.id,
            queue_depth: self.inbox.len() as u64,
            subscriptions: self.table.len() as u64,
            at: now,
            trace: if span != 0 { ctx.hopped(span) } else { ctx },
            table_digest: self.table_digest(),
        }
    }

    /// Folds a heard digest into the peer view and the anti-entropy
    /// directory. Versioning is by digest emission time, so chaos-link
    /// reordering and duplication never regress an entry — after a
    /// partition heals, one clean gossip round per peer reconciles
    /// every broker's view of every table.
    pub fn hear_gossip(&mut self, digest: &LoadDigest, now: SimTime) {
        if digest.broker != self.id {
            self.stats.gossip_heard += 1;
            obskit::count("broker_gossip_heard", 1);
            let node = self.trace_node();
            let span = self.trace.record(digest.trace, Stage::Gossip, node, now);
            self.obs_hop(digest.trace, Stage::Gossip, span, now);
            self.peers.absorb(digest, now);
            let version = digest.at.as_micros();
            let slot = self.directory.entry(digest.broker).or_default();
            if version > slot.version || (slot.version == 0 && version == 0) {
                let changed = slot.version == 0 || slot.table_digest != digest.table_digest;
                slot.version = version;
                slot.table_digest = digest.table_digest;
                slot.subscriptions = digest.subscriptions;
                if changed {
                    self.stats.anti_entropy_rounds += 1;
                    obskit::count("broker_anti_entropy", 1);
                }
            }
        }
    }

    /// Order-insensitive FNV digest of the live subscription table:
    /// folded over `(type name, subscriber, mode, expiry)` rows in
    /// subscription-id order. Type *names* (not interner-local ids)
    /// keep the digest comparable across brokers with different intern
    /// orders.
    pub fn table_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for sub in self.table.live_entries() {
            let name = self.interner.resolve(sub.cxt_type).unwrap_or("");
            fold(name.as_bytes());
            fold(&sub.subscriber.to_le_bytes());
            let (mode_tag, period) = match sub.mode {
                SubMode::OneShot => (0u8, 0u64),
                SubMode::Periodic(p) => (1, p.as_micros()),
                SubMode::Event => (2, 0),
            };
            fold(&[mode_tag]);
            fold(&period.to_le_bytes());
            fold(&sub.expires_at.as_micros().to_le_bytes());
        }
        h
    }

    /// The anti-entropy directory: this broker's latest view of each
    /// peer's subscription table.
    pub fn directory(&self) -> &BTreeMap<BrokerId, DirEntry> {
        &self.directory
    }

    /// Records the recovery hop of a crash-restarted broker. The
    /// harness calls it on the freshly rebuilt node at the restart
    /// instant; the trace root is minted deterministically from
    /// `(broker, now)` like the gossip plane's. Recovery is rare and
    /// load-bearing, so it is always sampled regardless of the
    /// configured packet sampling rate.
    pub fn note_recovery(&mut self, now: SimTime) {
        obskit::count("broker_recovered", 1);
        const RECOVER_SALT: u64 = 0x7ec0_4e7a_11fe_0000;
        let material = RECOVER_SALT ^ (u64::from(self.id.0) << 44) ^ now.as_micros();
        let ctx = TraceCtx::root(material, 0);
        let node = self.trace_node();
        let span = self.trace.record(ctx, Stage::Recover, node, now);
        self.obs_hop(ctx, Stage::Recover, span, now);
    }

    /// On-demand lookup of the freshest retained context for a type
    /// (the broker side of `fetch`). Lifetime enforcement applies.
    pub fn fetch(&self, type_name: &str, now: SimTime) -> Result<ContextPacket, BrokerError> {
        let sym = self
            .interner
            .get(type_name)
            .ok_or_else(|| BrokerError::NoSuchContext(type_name.to_owned()))?;
        self.table
            .retained(sym, now)
            .cloned()
            .ok_or_else(|| BrokerError::NoSuchContext(type_name.to_owned()))
    }

    /// Resolves an interned id back to its name (for wire encoding).
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    const FOREVER: SimTime = SimTime::from_secs(1_000_000);

    fn pkt(t: &str, at: u64) -> ContextPacket {
        ContextPacket::new(t, 1_000, SimTime::from_secs(at), SimDuration::from_secs(60), "src-a")
    }

    fn node() -> BrokerNode {
        BrokerNode::new(BrokerId(0), NodeConfig::default())
    }

    #[test]
    fn publish_then_drain_delivers_to_event_subscribers() {
        let mut n = node();
        n.subscribe(42, "wind", SubMode::Event, FOREVER, SimTime::ZERO);
        n.publish(pkt("wind", 1), SimTime::from_secs(1)).unwrap();
        let effects = n.drain(SimTime::from_secs(1));
        assert_eq!(effects.len(), 1);
        assert!(matches!(
            &effects[0],
            Effect::Deliver { subscriber: 42, .. }
        ));
        assert_eq!(n.stats().delivered, 1);
    }

    #[test]
    fn hygiene_is_enforced_at_admission() {
        let mut n = node();
        let mut anon = pkt("wind", 0);
        anon.source = String::new();
        assert_eq!(n.publish(anon, SimTime::ZERO), Err(BrokerError::Unattributed));
        let stale = pkt("wind", 0); // expires at t=60
        assert_eq!(
            n.publish(stale, SimTime::from_secs(100)),
            Err(BrokerError::ExpiredOnArrival)
        );
        n.block_source("src-a");
        assert!(matches!(
            n.publish(pkt("wind", 200), SimTime::from_secs(200)),
            Err(BrokerError::SourceBlocked(_))
        ));
        assert_eq!(n.stats().admission.refused(), 3);
        assert_eq!(n.stats().admission.admitted, 0);
    }

    #[test]
    fn bounded_inbox_sheds_beyond_capacity() {
        let mut n = BrokerNode::new(
            BrokerId(0),
            NodeConfig {
                inbox_capacity: 2,
                ..NodeConfig::default()
            },
        );
        let now = SimTime::from_secs(1);
        assert!(n.publish(pkt("a", 1), now).is_ok());
        assert!(n.publish(pkt("b", 1), now).is_ok());
        assert_eq!(
            n.publish(pkt("c", 1), now),
            Err(BrokerError::QueueFull { capacity: 2 })
        );
        assert_eq!(n.stats().admission.shed, 1);
        // Draining frees capacity again.
        n.drain(now);
        assert!(n.publish(pkt("c", 1), now).is_ok());
    }

    #[test]
    fn federation_forwards_once_and_never_loops() {
        let mut a = node();
        a.peers_mut().introduce(BrokerId(1), 10, SimTime::ZERO);
        a.publish(pkt("t", 1), SimTime::from_secs(1)).unwrap();
        let effects = a.drain(SimTime::from_secs(1));
        let forwards: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Forward { to, packet, .. } => Some((*to, packet.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(forwards.len(), 1);
        let (to, fwd) = &forwards[0];
        assert_eq!(*to, BrokerId(1));
        assert!(fwd.visited(BrokerId(0)));

        // The peer must not forward it back.
        let mut b = BrokerNode::new(BrokerId(1), NodeConfig::default());
        b.peers_mut().introduce(BrokerId(0), 10, SimTime::ZERO);
        b.publish(fwd.clone(), SimTime::from_secs(1)).unwrap();
        let back = b.drain(SimTime::from_secs(1));
        assert!(back.iter().all(|e| !matches!(e, Effect::Forward { .. })));
        assert_eq!(b.stats().loops_dropped, 1);
    }

    #[test]
    fn periodic_fire_serves_retained_context() {
        let mut n = node();
        n.subscribe(
            9,
            "temperature",
            SubMode::Periodic(SimDuration::from_secs(10)),
            FOREVER,
            SimTime::ZERO,
        );
        n.publish(pkt("temperature", 1), SimTime::from_secs(1)).unwrap();
        n.drain(SimTime::from_secs(1));
        assert!(n.periodic_fire(SimTime::from_secs(5)).is_empty());
        let fired = n.periodic_fire(SimTime::from_secs(10));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn fetch_respects_lifetime_and_sweep_counts() {
        let mut n = node();
        n.publish(pkt("wind", 0), SimTime::ZERO).unwrap(); // expires t=60
        n.drain(SimTime::ZERO);
        assert!(n.fetch("wind", SimTime::from_secs(30)).is_ok());
        assert!(matches!(
            n.fetch("wind", SimTime::from_secs(61)),
            Err(BrokerError::NoSuchContext(_))
        ));
        let swept = n.sweep(SimTime::from_secs(61));
        assert_eq!(swept.packets, 1);
        assert_eq!(n.stats().packets_expired, 1);
    }

    #[test]
    fn one_shot_is_answered_once() {
        let mut n = node();
        n.subscribe(5, "noise", SubMode::OneShot, FOREVER, SimTime::ZERO);
        n.publish(pkt("noise", 1), SimTime::from_secs(1)).unwrap();
        n.publish(pkt("noise", 2), SimTime::from_secs(2)).unwrap();
        let effects = n.drain(SimTime::from_secs(2));
        let deliveries = effects
            .iter()
            .filter(|e| matches!(e, Effect::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 1);
        assert_eq!(n.subscriptions(), 0);
    }

    #[test]
    fn duplicate_publishes_are_suppressed_but_positively_acked() {
        let mut n = node();
        let seq = crate::packet::PacketSeq::new(9, 1);
        let now = SimTime::from_secs(1);
        assert_eq!(n.publish(pkt("t", 1).with_seq(seq), now), Ok(Admitted::Fresh));
        assert_eq!(
            n.publish(pkt("t", 1).with_seq(seq), now),
            Ok(Admitted::Duplicate)
        );
        assert_eq!(n.stats().dedup_suppressed, 1);
        assert_eq!(n.stats().admission.admitted, 1);
        // Only one packet ever entered the inbox.
        assert_eq!(n.queue_depth(), 1);
        // Unsequenced publishes keep legacy semantics: never suppressed.
        assert_eq!(n.publish(pkt("t", 1), now), Ok(Admitted::Fresh));
        assert_eq!(n.publish(pkt("t", 1), now), Ok(Admitted::Fresh));
    }

    #[test]
    fn tracked_forwards_retry_with_backoff_then_exhaust() {
        let mut cfg = NodeConfig::default();
        cfg.fwd_attempts = 2;
        let mut n = BrokerNode::new(BrokerId(0), cfg);
        n.peers_mut().introduce(BrokerId(1), 10, SimTime::ZERO);
        let seq = crate::packet::PacketSeq::new(4, 7);
        n.publish(pkt("t", 1).with_seq(seq), SimTime::from_secs(1)).unwrap();
        let effects = n.drain(SimTime::from_secs(1));
        let fwd_id = effects
            .iter()
            .find_map(|e| match e {
                Effect::Forward { fwd_id, .. } => Some(*fwd_id),
                _ => None,
            })
            .expect("no forward");
        assert_ne!(fwd_id, 0, "sequenced forwards must be tracked");
        assert_eq!(n.pending_forwards(), 1);
        // Not yet due.
        assert!(n.fwd_retries_due(SimTime::from_secs(1)).is_empty());
        // Due: re-send 1 and 2, then exhaustion.
        let r1 = n.fwd_retries_due(SimTime::from_secs(10));
        assert_eq!(r1.len(), 1);
        let r2 = n.fwd_retries_due(SimTime::from_secs(20));
        assert_eq!(r2.len(), 1);
        assert!(n.fwd_retries_due(SimTime::from_secs(30)).is_empty());
        assert_eq!(n.pending_forwards(), 0);
        assert_eq!(n.stats().retries, 2);
        assert_eq!(n.stats().retry_exhausted, 1);
    }

    #[test]
    fn fwd_ack_clears_the_pending_entry() {
        let mut cfg = NodeConfig::default();
        cfg.fwd_attempts = 3;
        let mut n = BrokerNode::new(BrokerId(0), cfg);
        n.peers_mut().introduce(BrokerId(1), 10, SimTime::ZERO);
        let seq = crate::packet::PacketSeq::new(4, 8);
        n.publish(pkt("t", 1).with_seq(seq), SimTime::from_secs(1)).unwrap();
        let effects = n.drain(SimTime::from_secs(1));
        let fwd_id = effects
            .iter()
            .find_map(|e| match e {
                Effect::Forward { fwd_id, .. } => Some(*fwd_id),
                _ => None,
            })
            .unwrap();
        assert!(n.fwd_ack(fwd_id));
        assert!(!n.fwd_ack(fwd_id), "double-ack must be a no-op");
        assert_eq!(n.pending_forwards(), 0);
        assert!(n.fwd_retries_due(SimTime::from_secs(100)).is_empty());
        assert_eq!(n.stats().retries, 0);
    }

    #[test]
    fn unsequenced_forwards_stay_fire_and_forget() {
        let mut cfg = NodeConfig::default();
        cfg.fwd_attempts = 3;
        let mut n = BrokerNode::new(BrokerId(0), cfg);
        n.peers_mut().introduce(BrokerId(1), 10, SimTime::ZERO);
        n.publish(pkt("t", 1), SimTime::from_secs(1)).unwrap();
        let effects = n.drain(SimTime::from_secs(1));
        let fwd_id = effects
            .iter()
            .find_map(|e| match e {
                Effect::Forward { fwd_id, .. } => Some(*fwd_id),
                _ => None,
            })
            .unwrap();
        // Without an idempotence key a retry could double-deliver, so
        // the retry machinery refuses to track it.
        assert_eq!(fwd_id, 0);
        assert_eq!(n.pending_forwards(), 0);
    }

    #[test]
    fn anti_entropy_directory_absorbs_monotonically() {
        let mut a = node();
        let mut b = BrokerNode::new(BrokerId(1), NodeConfig::default());
        a.peers_mut().introduce(BrokerId(1), 10, SimTime::ZERO);
        b.peers_mut().introduce(BrokerId(0), 10, SimTime::ZERO);
        b.subscribe(7, "wind", SubMode::Event, FOREVER, SimTime::ZERO);
        let d1 = b.gossip_digest(SimTime::from_secs(1));
        assert_eq!(d1.table_digest, b.table_digest());
        a.hear_gossip(&d1, SimTime::from_secs(1));
        let entry = a.directory()[&BrokerId(1)];
        assert_eq!(entry.table_digest, b.table_digest());
        assert_eq!(entry.subscriptions, 1);
        assert_eq!(a.stats().anti_entropy_rounds, 1);
        // The peer's table changes; a newer digest reconciles the view.
        b.subscribe(8, "noise", SubMode::Event, FOREVER, SimTime::ZERO);
        let d2 = b.gossip_digest(SimTime::from_secs(5));
        a.hear_gossip(&d2, SimTime::from_secs(5));
        assert_eq!(a.directory()[&BrokerId(1)].table_digest, b.table_digest());
        assert_eq!(a.stats().anti_entropy_rounds, 2);
        // A stale (reordered/duplicated) digest never regresses it.
        a.hear_gossip(&d1, SimTime::from_secs(6));
        assert_eq!(a.directory()[&BrokerId(1)].table_digest, b.table_digest());
        assert_eq!(a.directory()[&BrokerId(1)].version, d2.at.as_micros());
        // An unchanged-digest re-hear is not an anti-entropy round.
        a.hear_gossip(&d2, SimTime::from_secs(7));
        assert_eq!(a.stats().anti_entropy_rounds, 2);
    }

    #[test]
    fn lease_renewal_survives_a_simulated_restart() {
        let mut n = node();
        let lease = SimTime::from_secs(100);
        let (id1, renewed1) =
            n.subscribe_renewing(5, "wind", SubMode::Event, lease, SimTime::ZERO);
        assert!(!renewed1);
        let (id2, renewed2) =
            n.subscribe_renewing(5, "wind", SubMode::Event, SimTime::from_secs(200), SimTime::from_secs(10));
        assert!(renewed2);
        assert_eq!(id1, id2);
        assert_eq!(n.subscriptions(), 1);
        // "Restart": a fresh node has lost the table; the same renewal
        // call re-registers instead of extending.
        let mut fresh = node();
        let (_, renewed3) =
            n_renew(&mut fresh, 5, "wind", SimTime::from_secs(300), SimTime::from_secs(20));
        assert!(!renewed3);
        assert_eq!(fresh.subscriptions(), 1);
    }

    fn n_renew(
        n: &mut BrokerNode,
        subscriber: u64,
        t: &str,
        expires: SimTime,
        now: SimTime,
    ) -> (crate::table::SubId, bool) {
        n.subscribe_renewing(subscriber, t, SubMode::Event, expires, now)
    }
}
