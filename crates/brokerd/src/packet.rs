//! The context packet: the broker-side representation of a published
//! [`CxtItem`], with the hygiene contract made unskippable.
//!
//! Two fields the middleware treats as optional metadata are *mandatory*
//! here, by construction: every packet carries an **expiry instant**
//! (brokers never retain or deliver stale context) and a **source
//! attribution** (the audit trail [`AccessController`] vets on
//! delivery). A third field the core has no use for — the **hop list**
//! — records which brokers federated the packet, bounding forwarding
//! loops and making the provenance of every delivery auditable.
//!
//! Values travel as fixed-point milli-units (`i64`), never floats: the
//! broker fan-out path is shared with the sharded simulation engine,
//! whose byte-identity contract floats would undermine.
//!
//! [`AccessController`]: contory::AccessController

use contory::vocab::Sym;
use contory::{CxtItem, CxtValue};
use simkit::{SimDuration, SimTime};
use std::fmt;
use tracekit::TraceCtx;

/// Stable identity of a broker in the federation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BrokerId(pub u16);

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "broker{}", self.0)
    }
}

/// Maximum federation hops a packet may take before brokers drop it.
pub const MAX_HOPS: usize = 3;

/// End-to-end packet identity for idempotent at-least-once delivery:
/// the publisher's stable id plus a per-publisher monotone sequence
/// number. Retried and chaos-duplicated copies of a packet carry the
/// same `PacketSeq`, which is what dedup windows key on.
///
/// [`PacketSeq::NONE`] marks legacy/unsequenced traffic — such packets
/// bypass dedup entirely (the pre-chaos wire layout is still valid).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketSeq {
    /// Stable publisher identity (fleet actor id, session id, …).
    pub origin: u64,
    /// 1-based sequence number within `origin`'s stream; 0 = unset.
    pub n: u64,
}

impl PacketSeq {
    /// The "unsequenced" sentinel carried by legacy traffic.
    pub const NONE: PacketSeq = PacketSeq { origin: 0, n: 0 };

    /// Builds a sequence tag; `n` must be 1-based.
    pub fn new(origin: u64, n: u64) -> Self {
        PacketSeq { origin, n }
    }

    /// True when the packet carries a real sequence tag.
    pub fn is_some(self) -> bool {
        self.n != 0
    }
}

impl fmt::Display for PacketSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.origin, self.n)
    }
}

/// A published context record as brokers store and forward it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContextPacket {
    /// Interned context type, assigned by the admitting broker
    /// ([`Sym::default`] until admission).
    pub cxt_type: Sym,
    /// Context type name as published on the wire.
    pub type_name: String,
    /// Fixed-point value in milli-units (e.g. m°C, mm/s).
    pub value_milli: i64,
    /// When the source observed the value.
    pub published_at: SimTime,
    /// Instant after which the packet must never be delivered or
    /// retained. Mandatory: there is no way to build an eternal packet.
    pub expires_at: SimTime,
    /// Attributed source. Mandatory and non-empty; unattributed publishes
    /// are refused at admission.
    pub source: String,
    /// Brokers this packet already visited, in federation order.
    pub hops: Vec<BrokerId>,
    /// Causal trace context ([`TraceCtx::NONE`] until a publisher mints
    /// a root). Sampling is decided at the root from the deterministic
    /// id material, never re-rolled per hop.
    pub trace: TraceCtx,
    /// Idempotency tag ([`PacketSeq::NONE`] for legacy traffic).
    /// Preserved verbatim across federation hops and retries.
    pub seq: PacketSeq,
}

impl ContextPacket {
    /// Builds a packet. The expiry is `published_at + lifetime` — there
    /// is deliberately no constructor taking an unbounded lifetime.
    pub fn new(
        type_name: impl Into<String>,
        value_milli: i64,
        published_at: SimTime,
        lifetime: SimDuration,
        source: impl Into<String>,
    ) -> Self {
        ContextPacket {
            cxt_type: Sym::default(),
            type_name: type_name.into(),
            value_milli,
            published_at,
            expires_at: published_at + lifetime,
            source: source.into(),
            hops: Vec::new(),
            trace: TraceCtx::NONE,
            seq: PacketSeq::NONE,
        }
    }

    /// Attaches a trace context (builder style).
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches an idempotency tag (builder style).
    pub fn with_seq(mut self, seq: PacketSeq) -> Self {
        self.seq = seq;
        self
    }

    /// True while the packet may still be delivered.
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        now <= self.expires_at
    }

    /// True if the packet carries a non-empty source attribution.
    pub fn is_attributed(&self) -> bool {
        !self.source.is_empty()
    }

    /// True if this broker already federated the packet (loop guard).
    pub fn visited(&self, broker: BrokerId) -> bool {
        self.hops.contains(&broker)
    }

    /// Records a federation hop through `broker`.
    pub fn with_hop(mut self, broker: BrokerId) -> Self {
        self.hops.push(broker);
        self
    }

    /// Remaining lifetime at `now` (zero once expired).
    pub fn ttl_at(&self, now: SimTime) -> SimDuration {
        if now >= self.expires_at {
            SimDuration::ZERO
        } else {
            self.expires_at.since(now)
        }
    }

    /// Converts to the middleware's item type, preserving the mandatory
    /// lifetime and attribution.
    pub fn to_cxt_item(&self) -> CxtItem {
        CxtItem::new(
            self.type_name.clone(),
            CxtValue::number(self.value_milli as f64 / 1000.0),
            self.published_at,
        )
        .with_lifetime(self.expires_at.since(self.published_at))
        .with_source(self.source.clone())
    }

    /// Builds a packet from a middleware item, enforcing the hygiene
    /// contract: items without a lifetime or a source are refused.
    pub fn from_cxt_item(item: &CxtItem) -> Result<Self, PacketError> {
        let lifetime = item.lifetime.ok_or(PacketError::MissingLifetime)?;
        let source = item
            .source
            .as_ref()
            .map(|s| s.0.clone())
            .filter(|s| !s.is_empty())
            .ok_or(PacketError::MissingSource)?;
        let value_milli = item
            .value
            .as_f64()
            .map(|v| (v * 1000.0).round() as i64)
            .unwrap_or(0);
        Ok(ContextPacket::new(
            item.cxt_type.clone(),
            value_milli,
            item.timestamp,
            lifetime,
            source,
        ))
    }
}

/// Why a [`CxtItem`] could not become a [`ContextPacket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The item has no lifetime; brokers only accept time-bound context.
    MissingLifetime,
    /// The item has no (or an empty) source attribution.
    MissingSource,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::MissingLifetime => f.write_str("context item carries no lifetime"),
            PacketError::MissingSource => f.write_str("context item carries no source attribution"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_is_mandatory_by_construction() {
        let p = ContextPacket::new(
            "wind",
            5_000,
            SimTime::from_secs(10),
            SimDuration::from_secs(30),
            "buoy-1",
        );
        assert_eq!(p.expires_at, SimTime::from_secs(40));
        assert!(p.is_valid_at(SimTime::from_secs(40)));
        assert!(!p.is_valid_at(SimTime::from_secs(41)));
        assert_eq!(p.ttl_at(SimTime::from_secs(35)), SimDuration::from_secs(5));
        assert_eq!(p.ttl_at(SimTime::from_secs(50)), SimDuration::ZERO);
    }

    #[test]
    fn hop_list_guards_federation_loops() {
        let p = ContextPacket::new("t", 0, SimTime::ZERO, SimDuration::from_secs(1), "s")
            .with_hop(BrokerId(2))
            .with_hop(BrokerId(5));
        assert!(p.visited(BrokerId(2)));
        assert!(!p.visited(BrokerId(3)));
        assert_eq!(p.hops.len(), 2);
    }

    #[test]
    fn cxt_item_round_trip_preserves_the_contract() {
        let p = ContextPacket::new(
            "temperature",
            21_500,
            SimTime::from_secs(3),
            SimDuration::from_secs(60),
            "station-9",
        );
        let item = p.to_cxt_item();
        assert_eq!(item.lifetime, Some(SimDuration::from_secs(60)));
        assert_eq!(item.source.as_ref().map(|s| s.0.as_str()), Some("station-9"));
        let back = ContextPacket::from_cxt_item(&item).unwrap();
        assert_eq!(back.value_milli, 21_500);
        assert_eq!(back.expires_at, p.expires_at);
    }

    #[test]
    fn unhygienic_items_are_refused() {
        use contory::CxtValue;
        let eternal = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO)
            .with_source("s");
        assert_eq!(
            ContextPacket::from_cxt_item(&eternal),
            Err(PacketError::MissingLifetime)
        );
        let anonymous = CxtItem::new("t", CxtValue::number(1.0), SimTime::ZERO)
            .with_lifetime(SimDuration::from_secs(1));
        assert_eq!(
            ContextPacket::from_cxt_item(&anonymous),
            Err(PacketError::MissingSource)
        );
    }
}
