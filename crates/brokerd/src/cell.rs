//! [`FederatedCell`]: the cellular reference backed by the broker
//! federation.
//!
//! This is the classic-sim harness — the one the middleware itself talks
//! to. `InfraCxtProvider` reaches the external infrastructure through
//! `contory::refs::CellReference`; [`FederatedCell`] implements that
//! trait over a set of in-process [`BrokerNode`]s wired as a full mesh,
//! so every `extInfra` query in the testbed exercises the same
//! admission, matching and federation code as the sharded fleet and the
//! loopback TCP service.
//!
//! Two things happen here that the pure core cannot do on its own:
//!
//! * **QoS-aware (re)selection** — the cell ranks live brokers by the
//!   integer [`qos_score`] (link latency + advertised load) and pins the
//!   best one. A [`simkit::faults::FaultPlan`] (targets named
//!   `broker:<id>`) is the ground truth for liveness: when the selected
//!   broker dies, the next pump tick reselects, re-attaches every open
//!   subscription to the survivor and counts a failover — this is the
//!   path the 45 s SLO test drives.
//! * **Audit-trailed admission** — an optional [`AccessController`]
//!   vets the source attribution of every `store` before the packet is
//!   built, so refusals land in the middleware's audit ring as well as
//!   the broker's admission counters.
//!
//! [`AccessController`]: contory::AccessController
//! [`qos_score`]: crate::federation::qos_score

use crate::federation::qos_score;
use crate::node::{BrokerNode, Effect, NodeConfig};
use crate::packet::{BrokerId, ContextPacket};
use crate::table::{SubId, SubMode};
use contory::refs::{
    CellReference, Done, InfraPushMode, InfraSpec, InfraSubHandle, ItemsResult, OnItems, RefError,
};
use contory::{AccessController, AccessDecision, CxtItem};
use simkit::faults::FaultPlan;
use simkit::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};
use tracekit::{Stage, TraceCtx, TraceLog};

/// The cell's id in the tracekit node namespace — distinct from every
/// `BrokerId` (brokers are `u16`, so they can never reach this value).
const CELL_TRACE_NODE: u64 = 0xCE11;

/// Root-id material salt for cell-side publishes, keeping their trace
/// ids disjoint from fleet-device and gossip roots.
const CELL_TRACE_SALT: u64 = 0x0ce1_1b0c_5eed_0001;

/// Mirrors a cell-side hop onto the obskit collector with the same
/// label markers `BrokerNode` emits, so `TraceLog::from_obskit_jsonl`
/// lifts cell publishes alongside broker hops.
fn obs_cell_hop(ctx: TraceCtx, stage: Stage, span: u32, now: SimTime) {
    if span == 0 || !obskit::enabled() {
        return;
    }
    let phase = match stage {
        Stage::Deliver => obskit::Phase::Deliver,
        _ => obskit::Phase::Dispatch,
    };
    let label = format!(
        "hop t={:016x} s={} n={CELL_TRACE_NODE} h={} sp={span} p={}",
        ctx.trace_id,
        stage.as_str(),
        ctx.hop,
        ctx.parent_span,
    );
    obskit::event(phase, &label, None, now);
}

/// Tunables of the federated cell reference.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Pump cadence: drains brokers, fires periodics, probes liveness.
    pub tick: SimDuration,
    /// Broker-side lifetime of subscriptions the cell opens.
    pub sub_ttl: SimDuration,
    /// Modelled uplink latency for `store`/`fetch` completions.
    pub uplink: SimDuration,
    /// Per-broker node tunables.
    pub node: NodeConfig,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            tick: SimDuration::from_millis(500),
            sub_ttl: SimDuration::from_secs(3_600),
            uplink: SimDuration::from_millis(150),
            node: NodeConfig::default(),
        }
    }
}

struct BrokerSlot {
    node: BrokerNode,
    latency_us: u64,
}

struct SubEntry {
    spec: InfraSpec,
    mode: InfraPushMode,
    on_items: OnItems,
    /// Where the subscription currently lives; `None` while orphaned
    /// (e.g. between a broker death and the next reselection).
    attached: Option<(BrokerId, SubId)>,
}

struct Inner {
    sim: Sim,
    cfg: CellConfig,
    brokers: BTreeMap<BrokerId, BrokerSlot>,
    plan: Option<FaultPlan>,
    access: Option<Rc<AccessController>>,
    selected: Option<BrokerId>,
    subs: BTreeMap<u64, SubEntry>,
    next_handle: u64,
    reselects: u64,
    /// Cell-side spans: the publish hop of every traced `store`.
    trace: TraceLog,
    /// Monotone publish sequence — the deterministic trace-id material.
    published: u64,
}

impl Inner {
    fn is_up(&self, id: BrokerId, now: SimTime) -> bool {
        self.plan
            .as_ref()
            .is_none_or(|p| p.is_up(&format!("broker:{}", id.0), now))
    }

    /// Best live broker by `(qos_score, id)` — lowest wins.
    fn choose(&self, now: SimTime) -> Option<BrokerId> {
        self.brokers
            .iter()
            .filter(|(id, _)| self.is_up(**id, now))
            .map(|(id, slot)| {
                (
                    qos_score(
                        slot.latency_us,
                        slot.node.queue_depth() as u64,
                        slot.node.subscriptions() as u64,
                    ),
                    *id,
                )
            })
            .min()
            .map(|(_, id)| id)
    }

    /// Keeps a live broker selected; on a change, orphans and re-attaches
    /// every open subscription (the failover path).
    fn ensure_selection(&mut self, now: SimTime) -> Option<BrokerId> {
        match self.selected {
            Some(cur) if self.is_up(cur, now) => {}
            previous => {
                let next = self.choose(now)?;
                self.selected = Some(next);
                if previous.is_some() {
                    self.reselects += 1;
                    obskit::count("cell_failover", 1);
                    obskit::event(obskit::Phase::Failover, "broker_reselect", None, now);
                    for entry in self.subs.values_mut() {
                        entry.attached = None;
                    }
                }
            }
        }
        self.attach_subs(now);
        self.selected
    }

    /// Attaches every orphaned subscription to the selected broker.
    fn attach_subs(&mut self, now: SimTime) {
        let Some(sel) = self.selected else { return };
        for entry in self.subs.values_mut() {
            if entry.attached.is_some() {
                continue;
            }
            let Some(slot) = self.brokers.get_mut(&sel) else {
                continue;
            };
            let mode = match entry.mode {
                InfraPushMode::Periodic(d) => SubMode::Periodic(d),
                InfraPushMode::OnArrival => SubMode::Event,
            };
            let ttl = self.cfg.sub_ttl;
            let sub = slot
                .node
                .subscribe(u64::from(sel.0), &entry.spec.cxt_type, mode, now + ttl, now);
            entry.attached = Some((sel, sub));
        }
    }

    /// One pump round: drain every live broker, fire periodics, sweep,
    /// route forwards into peers, and collect local deliveries. Returns
    /// the callbacks to invoke once the `RefCell` borrow is released.
    fn pump(&mut self, now: SimTime) -> Vec<(OnItems, Vec<CxtItem>)> {
        self.ensure_selection(now);
        let ids: Vec<BrokerId> = self.brokers.keys().copied().collect();
        let mut forwards: Vec<(BrokerId, BrokerId, ContextPacket, u64)> = Vec::new();
        let mut delivered: Vec<(BrokerId, SubId, ContextPacket)> = Vec::new();
        for id in &ids {
            if !self.is_up(*id, now) {
                continue;
            }
            let Some(slot) = self.brokers.get_mut(id) else {
                continue;
            };
            let mut effects = slot.node.drain(now);
            effects.extend(slot.node.periodic_fire(now));
            effects.extend(slot.node.fwd_retries_due(now));
            slot.node.sweep(now);
            for effect in effects {
                match effect {
                    Effect::Deliver { sub, packet, .. } => delivered.push((*id, sub, packet)),
                    Effect::Forward { to, packet, fwd_id } => {
                        forwards.push((*id, to, packet, fwd_id));
                    }
                }
            }
        }
        for (from, to, packet, fwd_id) in forwards {
            if !self.is_up(to, now) {
                continue; // the sender's pending entry re-fires later
            }
            let admitted = match self.brokers.get_mut(&to) {
                Some(slot) => slot.node.publish(packet, now).is_ok(),
                None => false,
            };
            // Synchronous federation: a successful publish *is* the
            // ack, duplicates included (idempotent at-least-once).
            if admitted && fwd_id != 0 {
                if let Some(slot) = self.brokers.get_mut(&from) {
                    slot.node.fwd_ack(fwd_id);
                }
            }
        }
        let mut callbacks = Vec::new();
        for (broker, sub, packet) in delivered {
            let hit = self
                .subs
                .values()
                .find(|e| e.attached == Some((broker, sub)));
            if let Some(entry) = hit {
                if let Some(slot) = self.brokers.get_mut(&broker) {
                    slot.node.note_delivery(packet.trace, now);
                }
                callbacks.push((entry.on_items.clone(), vec![packet.to_cxt_item()]));
            }
        }
        callbacks
    }
}

/// A `CellReference` whose remote side is a broker federation.
#[derive(Clone)]
pub struct FederatedCell {
    inner: Rc<RefCell<Inner>>,
}

impl FederatedCell {
    /// Creates the cell and starts its pump on the simulator.
    pub fn new(sim: &Sim, cfg: CellConfig) -> Self {
        let tick = cfg.tick;
        let inner = Rc::new(RefCell::new(Inner {
            sim: sim.clone(),
            cfg,
            brokers: BTreeMap::new(),
            plan: None,
            access: None,
            selected: None,
            subs: BTreeMap::new(),
            next_handle: 1,
            reselects: 0,
            trace: TraceLog::new(),
            published: 0,
        }));
        // The pump holds only a weak handle: when the last strong clone
        // of the cell drops, the repeating timer unregisters itself.
        let weak: Weak<RefCell<Inner>> = Rc::downgrade(&inner);
        sim.schedule_repeating(tick, move || {
            let Some(strong) = weak.upgrade() else {
                return false;
            };
            let now = strong.borrow().sim.now();
            let callbacks = strong.borrow_mut().pump(now);
            for (on_items, items) in callbacks {
                on_items(items);
            }
            true
        });
        FederatedCell { inner }
    }

    /// Adds a broker to the federation, full-meshed with the brokers
    /// already present. `latency_us` models the phone↔broker link and
    /// feeds the QoS score.
    pub fn add_broker(&self, id: BrokerId, latency_us: u64) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.sim.now();
        let cfg = inner.cfg.node.clone();
        let mut node = BrokerNode::new(id, cfg);
        for (peer_id, slot) in inner.brokers.iter_mut() {
            let inter = slot.latency_us.midpoint(latency_us);
            node.peers_mut().introduce(*peer_id, inter, now);
            slot.node.peers_mut().introduce(id, inter, now);
        }
        inner.brokers.insert(id, BrokerSlot { node, latency_us });
    }

    /// Installs the liveness ground truth. Targets are `broker:<id>`.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.borrow_mut().plan = Some(plan);
    }

    /// Vets every `store`'s attribution through this controller, feeding
    /// the middleware audit trail.
    pub fn set_access(&self, access: Rc<AccessController>) {
        self.inner.borrow_mut().access = Some(access);
    }

    /// How many times the cell failed over to another broker.
    pub fn reselects(&self) -> u64 {
        self.inner.borrow().reselects
    }

    /// The currently selected broker, if any selection happened yet.
    pub fn selected(&self) -> Option<BrokerId> {
        self.inner.borrow().selected
    }

    /// Snapshot of one broker's counters (test observability).
    pub fn broker_stats(&self, id: BrokerId) -> Option<crate::node::NodeStats> {
        self.inner.borrow().brokers.get(&id).map(|s| *s.node.stats())
    }

    /// Merged trace log: the cell's publish spans plus every broker's
    /// hop spans, folded in broker-id order. Canonical export (and thus
    /// the digest) is merge-order invariant.
    pub fn trace_log(&self) -> TraceLog {
        let inner = self.inner.borrow();
        let mut log = inner.trace.clone();
        for slot in inner.brokers.values() {
            log.merge(slot.node.trace_log());
        }
        log
    }

    /// Metrics snapshot of one broker — the same registry the TCP
    /// harness serves for `STATS`.
    pub fn broker_telemetry(&self, id: BrokerId) -> Option<obskit::Registry> {
        self.inner.borrow().brokers.get(&id).map(|s| s.node.telemetry())
    }
}

impl CellReference for FederatedCell {
    fn is_available(&self) -> bool {
        let inner = self.inner.borrow();
        let now = inner.sim.now();
        inner.brokers.keys().any(|id| inner.is_up(*id, now))
    }

    fn store(&self, item: &CxtItem, cb: Done<Result<(), RefError>>) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.sim.now();
        let uplink = inner.cfg.uplink;
        let result = (|| {
            if let Some(access) = &inner.access {
                if access.check_attributed(item.source.as_ref(), None) == AccessDecision::Blocked {
                    return Err(RefError::Denied("source refused by access control".into()));
                }
            }
            let mut packet = ContextPacket::from_cxt_item(item)
                .map_err(|e| RefError::Denied(e.to_string()))?;
            let sel = inner
                .ensure_selection(now)
                .ok_or_else(|| RefError::Unavailable("no live broker".into()))?;
            let seq = inner.published;
            inner.published += 1;
            let root = TraceCtx::root(CELL_TRACE_SALT ^ seq, inner.cfg.node.trace_sample_log2);
            let span = inner.trace.record(root, Stage::Publish, CELL_TRACE_NODE, now);
            if span != 0 {
                packet = packet.with_trace(root.child(span));
                obs_cell_hop(root, Stage::Publish, span, now);
            }
            let slot = inner
                .brokers
                .get_mut(&sel)
                .ok_or_else(|| RefError::Unavailable("no live broker".into()))?;
            obskit::count("cell_store", 1);
            slot.node
                .publish(packet, now)
                .map(|_| ())
                .map_err(RefError::from)
        })();
        inner.sim.schedule_in(uplink, move || cb(result));
    }

    fn fetch(&self, spec: &InfraSpec, cb: Done<ItemsResult>) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.sim.now();
        let uplink = inner.cfg.uplink;
        let freshness = spec.freshness;
        let cxt_type = spec.cxt_type.clone();
        let result = (|| {
            let sel = inner
                .ensure_selection(now)
                .ok_or_else(|| RefError::Unavailable("no live broker".into()))?;
            let slot = inner
                .brokers
                .get(&sel)
                .ok_or_else(|| RefError::Unavailable("no live broker".into()))?;
            obskit::count("cell_fetch", 1);
            let packet = slot.node.fetch(&cxt_type, now).map_err(RefError::from)?;
            if let Some(f) = freshness {
                if now.since(packet.published_at) > f {
                    return Err(RefError::NotFound(cxt_type.clone()));
                }
            }
            Ok(vec![packet.to_cxt_item()])
        })();
        inner.sim.schedule_in(uplink, move || cb(result));
    }

    fn subscribe(
        &self,
        spec: &InfraSpec,
        mode: InfraPushMode,
        on_items: OnItems,
    ) -> InfraSubHandle {
        let mut inner = self.inner.borrow_mut();
        let now = inner.sim.now();
        let handle = inner.next_handle;
        inner.next_handle += 1;
        inner.subs.insert(
            handle,
            SubEntry {
                spec: spec.clone(),
                mode,
                on_items,
                attached: None,
            },
        );
        obskit::count("cell_subscribe", 1);
        inner.ensure_selection(now);
        InfraSubHandle(handle)
    }

    fn unsubscribe(&self, handle: InfraSubHandle) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.sim.now();
        let Some(entry) = inner.subs.remove(&handle.0) else {
            return;
        };
        if let Some((broker, sub)) = entry.attached {
            if inner.is_up(broker, now) {
                if let Some(slot) = inner.brokers.get_mut(&broker) {
                    slot.node.unsubscribe(sub);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contory::CxtValue;

    fn item(t: &str, v: f64, at: SimTime) -> CxtItem {
        CxtItem::new(t, CxtValue::number(v), at)
            .with_lifetime(SimDuration::from_secs(120))
            .with_source("probe-1")
    }

    fn cell_with_brokers(sim: &Sim, n: u16) -> FederatedCell {
        let cell = FederatedCell::new(sim, CellConfig::default());
        for b in 0..n {
            cell.add_broker(BrokerId(b), 5_000 + u64::from(b) * 1_000);
        }
        cell
    }

    #[test]
    fn store_subscribe_deliver_round_trip() {
        let sim = Sim::new();
        let cell = cell_with_brokers(&sim, 2);
        let got: Rc<RefCell<Vec<CxtItem>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = got.clone();
        cell.subscribe(
            &InfraSpec {
                cxt_type: "wind".into(),
                ..InfraSpec::default()
            },
            InfraPushMode::OnArrival,
            Rc::new(move |items| sink.borrow_mut().extend(items)),
        );
        let stored = Rc::new(RefCell::new(None));
        let flag = stored.clone();
        sim.run_for(SimDuration::from_secs(1));
        cell.store(
            &item("wind", 7.5, sim.now()),
            Box::new(move |r| *flag.borrow_mut() = Some(r)),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(*stored.borrow(), Some(Ok(())));
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].source.as_ref().map(|s| s.0.as_str()), Some("probe-1"));
    }

    #[test]
    fn unhygienic_store_is_denied_and_audited() {
        let sim = Sim::new();
        let cell = cell_with_brokers(&sim, 1);
        let access = Rc::new(AccessController::new(contory::SecurityMode::Low, 16));
        cell.set_access(access.clone());
        let result = Rc::new(RefCell::new(None));
        let flag = result.clone();
        // No source attribution at all: refused before a packet exists.
        let anon = CxtItem::new("t", CxtValue::number(1.0), sim.now())
            .with_lifetime(SimDuration::from_secs(10));
        cell.store(&anon, Box::new(move |r| *flag.borrow_mut() = Some(r)));
        sim.run_for(SimDuration::from_secs(1));
        assert!(matches!(*result.borrow(), Some(Err(RefError::Denied(_)))));
        let (_, _, unattributed) = access.audit_totals();
        assert_eq!(unattributed, 1);
    }

    #[test]
    fn broker_death_triggers_reselection_and_resubscription() {
        let sim = Sim::new();
        let cell = cell_with_brokers(&sim, 2);
        let got: Rc<RefCell<Vec<CxtItem>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = got.clone();
        cell.subscribe(
            &InfraSpec {
                cxt_type: "noise".into(),
                ..InfraSpec::default()
            },
            InfraPushMode::OnArrival,
            Rc::new(move |items| sink.borrow_mut().extend(items)),
        );
        // broker0 (lower latency) is selected, then dies at t=10s.
        let mut plan = FaultPlan::new(7);
        plan.kill_at("broker:0", SimTime::from_secs(10));
        cell.set_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(cell.selected(), Some(BrokerId(0)));
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(cell.selected(), Some(BrokerId(1)));
        assert_eq!(cell.reselects(), 1);
        // Deliveries continue on the survivor.
        cell.store(&item("noise", 3.0, sim.now()), Box::new(|_| {}));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(got.borrow().len(), 1);
    }

    #[test]
    fn stores_are_traced_end_to_end() {
        let sim = Sim::new();
        let mut cfg = CellConfig::default();
        cfg.node.trace_sample_log2 = 0; // sample every publish
        let cell = FederatedCell::new(&sim, cfg);
        cell.add_broker(BrokerId(0), 5_000);
        cell.add_broker(BrokerId(1), 6_000);
        cell.subscribe(
            &InfraSpec {
                cxt_type: "wind".into(),
                ..InfraSpec::default()
            },
            InfraPushMode::OnArrival,
            Rc::new(|_| {}),
        );
        sim.run_for(SimDuration::from_secs(1));
        cell.store(&item("wind", 7.5, sim.now()), Box::new(|_| {}));
        sim.run_for(SimDuration::from_secs(5));
        let log = cell.trace_log();
        assert!(log.len() > 0, "traced store left no spans");
        let trees = tracekit::assemble(&log);
        let breakup = tracekit::Breakup::of(&trees);
        assert_eq!(breakup.deliveries(), 1);
        // The STATS registry the ops surface serves sees the admit.
        let stats = cell.broker_telemetry(BrokerId(0)).unwrap().snapshot();
        assert!(stats.contains("broker_admitted_total 1"), "{stats}");
    }

    #[test]
    fn fetch_round_trips_and_respects_freshness() {
        let sim = Sim::new();
        let cell = cell_with_brokers(&sim, 1);
        cell.store(&item("temp", 21.0, sim.now()), Box::new(|_| {}));
        sim.run_for(SimDuration::from_secs(2));
        let fetched = Rc::new(RefCell::new(None));
        let sink = fetched.clone();
        cell.fetch(
            &InfraSpec {
                cxt_type: "temp".into(),
                ..InfraSpec::default()
            },
            Box::new(move |r| *sink.borrow_mut() = Some(r)),
        );
        sim.run_for(SimDuration::from_secs(1));
        match fetched.borrow().as_ref() {
            Some(Ok(items)) => assert_eq!(items.len(), 1),
            other => panic!("expected items, got {other:?}"),
        }
        // A freshness bound tighter than the item's age yields NotFound.
        let stale = Rc::new(RefCell::new(None));
        let sink = stale.clone();
        cell.fetch(
            &InfraSpec {
                cxt_type: "temp".into(),
                freshness: Some(SimDuration::from_millis(1)),
                ..InfraSpec::default()
            },
            Box::new(move |r| *sink.borrow_mut() = Some(r)),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert!(matches!(
            stale.borrow().as_ref(),
            Some(Err(RefError::NotFound(_)))
        ));
    }
}
