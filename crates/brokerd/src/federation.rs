//! The federation plane: load gossip, peer views and QoS-aware broker
//! selection.
//!
//! Brokers periodically exchange [`LoadDigest`]s — tiny summaries of
//! queue depth and subscription count. Each broker folds the digests it
//! hears into a [`PeerView`], and clients (the [`FederatedCell`] behind
//! `InfraCxtProvider`) rank brokers by an **integer** QoS score
//! combining advertised load with measured link latency, exactly the
//! latency+load policy of the cloud-federation design this subsystem
//! reproduces. Integer arithmetic keeps selection bit-stable across
//! platforms and shard layouts — no float accumulates anywhere on the
//! broker path.
//!
//! Staleness doubles as failure detection: a peer whose digest has not
//! refreshed within the staleness window is skipped by selection, which
//! is what lets a client re-select away from a killed broker well inside
//! the paper's 45 s failover SLO.
//!
//! [`FederatedCell`]: crate::cell::FederatedCell

use crate::packet::BrokerId;
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;
use tracekit::TraceCtx;

/// Weight of one queued packet relative to one microsecond of latency in
/// the QoS score. 500 ⇒ a backlog of 100 packets outweighs 50 ms of
/// extra link latency.
pub const LOAD_WEIGHT: u64 = 500;

/// Weight of one registered subscription in the QoS score.
pub const SUBS_WEIGHT: u64 = 20;

/// A broker's gossiped load summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadDigest {
    /// Originating broker.
    pub broker: BrokerId,
    /// Inbox depth at digest time.
    pub queue_depth: u64,
    /// Live subscriptions at digest time.
    pub subscriptions: u64,
    /// When the digest was produced.
    pub at: SimTime,
    /// Gossip-plane trace context (minted per digest by the emitting
    /// broker; [`TraceCtx::NONE`] for hand-built digests).
    pub trace: TraceCtx,
    /// Anti-entropy fingerprint of the sender's subscription table at
    /// digest time (see `BrokerNode::table_digest`); `0` for
    /// hand-built digests.
    pub table_digest: u64,
}

/// What a peer looks like from here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerStat {
    /// Measured (or configured) one-way link latency.
    pub latency_us: u64,
    /// Last advertised queue depth.
    pub queue_depth: u64,
    /// Last advertised subscription count.
    pub subscriptions: u64,
    /// When the last digest was heard.
    pub last_seen: SimTime,
}

/// The integer QoS score: lower is better.
pub fn qos_score(latency_us: u64, queue_depth: u64, subscriptions: u64) -> u64 {
    latency_us
        .saturating_add(queue_depth.saturating_mul(LOAD_WEIGHT))
        .saturating_add(subscriptions.saturating_mul(SUBS_WEIGHT))
}

/// One node's view of its federation peers.
#[derive(Clone, Debug, Default)]
pub struct PeerView {
    peers: BTreeMap<BrokerId, PeerStat>,
}

impl PeerView {
    /// An empty view.
    pub fn new() -> Self {
        PeerView::default()
    }

    /// Introduces a peer with a known link latency, before any digest is
    /// heard. `at` seeds the staleness clock.
    pub fn introduce(&mut self, broker: BrokerId, latency_us: u64, at: SimTime) {
        self.peers.entry(broker).or_insert(PeerStat {
            latency_us,
            queue_depth: 0,
            subscriptions: 0,
            last_seen: at,
        });
    }

    /// Folds a heard digest into the view (unknown senders are adopted
    /// with zero link latency).
    pub fn absorb(&mut self, digest: &LoadDigest, heard_at: SimTime) {
        obskit::count("broker_gossip_absorbed", 1);
        let stat = self.peers.entry(digest.broker).or_insert(PeerStat {
            latency_us: 0,
            queue_depth: 0,
            subscriptions: 0,
            last_seen: heard_at,
        });
        stat.queue_depth = digest.queue_depth;
        stat.subscriptions = digest.subscriptions;
        stat.last_seen = heard_at;
    }

    /// Removes a peer (e.g. on an administrative leave).
    pub fn forget(&mut self, broker: BrokerId) {
        self.peers.remove(&broker);
    }

    /// All known peers in id order.
    pub fn brokers(&self) -> Vec<BrokerId> {
        self.peers.keys().copied().collect()
    }

    /// A peer's current stat.
    pub fn stat(&self, broker: BrokerId) -> Option<&PeerStat> {
        self.peers.get(&broker)
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no peer is known.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Peers whose digests are fresh at `now` (within `staleness`), in
    /// id order.
    pub fn live_peers(&self, now: SimTime, staleness: SimDuration) -> Vec<BrokerId> {
        self.peers
            .iter()
            .filter(|(_, s)| now.since(s.last_seen) <= staleness)
            .map(|(b, _)| *b)
            .collect()
    }

    /// QoS-aware selection: the live peer with the lowest integer score,
    /// ties broken by lowest broker id (deterministic). `exclude` skips
    /// a broker known-bad by the caller (e.g. the one that just failed).
    pub fn select(
        &self,
        now: SimTime,
        staleness: SimDuration,
        exclude: Option<BrokerId>,
    ) -> Option<BrokerId> {
        self.peers
            .iter()
            .filter(|(b, _)| Some(**b) != exclude)
            .filter(|(_, s)| now.since(s.last_seen) <= staleness)
            .map(|(b, s)| (qos_score(s.latency_us, s.queue_depth, s.subscriptions), *b))
            .min()
            .map(|(_, b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STALE: SimDuration = SimDuration::from_secs(30);

    fn digest(b: u16, depth: u64, at: u64) -> LoadDigest {
        LoadDigest {
            broker: BrokerId(b),
            queue_depth: depth,
            subscriptions: 0,
            at: SimTime::from_secs(at),
            trace: TraceCtx::NONE,
            table_digest: 0,
        }
    }

    #[test]
    fn selection_prefers_low_latency_then_low_load() {
        let mut view = PeerView::new();
        let t0 = SimTime::ZERO;
        view.introduce(BrokerId(1), 10_000, t0);
        view.introduce(BrokerId(2), 80_000, t0);
        assert_eq!(view.select(t0, STALE, None), Some(BrokerId(1)));
        // 200 queued packets on broker 1 (100 ms of score) outweigh the
        // 70 ms latency gap to broker 2.
        view.absorb(&digest(1, 200, 0), t0);
        assert_eq!(view.select(t0, STALE, None), Some(BrokerId(2)));
    }

    #[test]
    fn stale_peers_are_skipped_as_failed() {
        let mut view = PeerView::new();
        view.introduce(BrokerId(1), 1, SimTime::ZERO);
        view.introduce(BrokerId(2), 99_000, SimTime::ZERO);
        view.absorb(&digest(2, 0, 90), SimTime::from_secs(90));
        // Broker 1 went silent: at t=100 its digest is 100 s old.
        let now = SimTime::from_secs(100);
        assert_eq!(view.select(now, STALE, None), Some(BrokerId(2)));
        assert_eq!(view.live_peers(now, STALE), vec![BrokerId(2)]);
    }

    #[test]
    fn exclusion_and_ties_are_deterministic() {
        let mut view = PeerView::new();
        view.introduce(BrokerId(3), 5, SimTime::ZERO);
        view.introduce(BrokerId(7), 5, SimTime::ZERO);
        assert_eq!(view.select(SimTime::ZERO, STALE, None), Some(BrokerId(3)));
        assert_eq!(
            view.select(SimTime::ZERO, STALE, Some(BrokerId(3))),
            Some(BrokerId(7))
        );
        assert_eq!(view.select(SimTime::ZERO, SimDuration::ZERO, Some(BrokerId(3))), Some(BrokerId(7)));
    }

    #[test]
    fn score_is_saturating_not_wrapping() {
        assert_eq!(qos_score(u64::MAX, u64::MAX, u64::MAX), u64::MAX);
    }
}
