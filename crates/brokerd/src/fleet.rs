//! The sharded-simulation harness: a federated broker fleet plus a
//! device population as [`ShardSim`] actors.
//!
//! Brokers and devices are actors; every interaction — publish, ack,
//! delivery, federation forward, gossip — is a cross-actor message, so
//! the engine's partition-independent ordering makes a whole fleet run
//! **byte-identical across physical shard counts and worker-thread
//! counts**. The [`FleetOutcome::report`] string is the identity
//! witness; `broker_load` gates on it and `tests/fleet_determinism.rs`
//! checks the {1,4}-shard × thread matrix.
//!
//! Fault edges come from [`simkit::faults::FaultPlan`] (target label
//! `broker:<id>`): a killed broker stops acking, draining and gossiping;
//! its publishers miss acks and deterministically re-home to the next
//! broker, and its peers see its digests go stale. No wall clock, no
//! floats, no unordered maps anywhere on this path.

use crate::federation::LoadDigest;
use crate::node::{BrokerNode, Effect, NodeConfig};
use crate::packet::{BrokerId, ContextPacket};
use crate::table::SubMode;
use obskit::Histogram;
use simkit::faults::FaultPlan;
use simkit::shard::{ActorId, EngineProfile, EventCtx, ShardConfig, ShardSim};
use simkit::{SimDuration, SimTime};
use tracekit::{Stage, TraceCtx, TraceLog};

/// Number of distinct context types the fleet publishes.
pub const FLEET_TYPES: u16 = 64;

/// Missed acks before a publisher re-homes to the next broker.
const REHOME_AFTER_MISSES: u32 = 2;

/// Fleet scenario configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Master seed.
    pub seed: u64,
    /// Broker count (≥ 1).
    pub brokers: u16,
    /// Device count.
    pub devices: u64,
    /// Physical shard count of the engine.
    pub shards: u32,
    /// Worker threads.
    pub threads: u32,
    /// Virtual duration of the run.
    pub run_for: SimDuration,
    /// Device publish cadence (jittered ±25 % per device).
    pub publish_period: SimDuration,
    /// Lifetime stamped on every published packet.
    pub lifetime: SimDuration,
    /// Broker drain cadence.
    pub drain_every: SimDuration,
    /// Broker sweep cadence.
    pub sweep_every: SimDuration,
    /// Broker gossip cadence.
    pub gossip_every: SimDuration,
    /// Broker tunables (table shards, inbox bound, drain budget).
    pub node: NodeConfig,
    /// Scripted up/down edges `(broker, at, up)`; build with
    /// [`fault_edges`].
    pub fault_edges: Vec<(u16, SimTime, bool)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            brokers: 4,
            devices: 1_000,
            shards: 1,
            threads: 1,
            run_for: SimDuration::from_secs(30),
            publish_period: SimDuration::from_secs(5),
            lifetime: SimDuration::from_secs(30),
            drain_every: SimDuration::from_millis(50),
            sweep_every: SimDuration::from_secs(10),
            gossip_every: SimDuration::from_secs(5),
            node: NodeConfig::default(),
            fault_edges: Vec::new(),
        }
    }
}

/// Extracts the fleet's fault edges from a [`FaultPlan`] using the
/// `broker:<id>` target convention.
pub fn fault_edges(plan: &FaultPlan, brokers: u16) -> Vec<(u16, SimTime, bool)> {
    let mut edges = Vec::new();
    for b in 0..brokers {
        for e in plan.edges(&format!("broker:{b}")) {
            edges.push((b, e.at, e.up));
        }
    }
    edges
}

/// Events exchanged by fleet actors.
#[derive(Clone, Debug)]
pub enum FleetEvent {
    /// Device: subscribe and start the publish cadence.
    Start,
    /// Device: publish one packet to the home broker.
    PublishTick,
    /// Broker: a packet arrives (device publish or federation forward).
    Packet {
        /// The published packet.
        packet: ContextPacket,
        /// Publishing device actor for direct publishes (acked/nacked);
        /// `None` for federation forwards. The transport knows its
        /// sender even when the packet itself lacks attribution.
        origin: Option<u64>,
    },
    /// Broker: register a subscription.
    Sub {
        /// Subscribing device actor.
        subscriber: u64,
        /// Context type index.
        type_idx: u16,
        /// Delivery mode.
        mode: SubMode,
    },
    /// Broker: service the inbox and fire due periodic deliveries.
    DrainTick,
    /// Broker: expiry sweep.
    SweepTick,
    /// Broker: broadcast a load digest to peers.
    GossipTick,
    /// Broker: a peer's digest arrives.
    Digest(LoadDigest),
    /// Device: a delivery arrives.
    Delivery(ContextPacket),
    /// Device: the home broker admitted the last publish.
    Ack,
    /// Device: the home broker shed the last publish.
    Nack,
    /// Broker: scripted fault edge (`true` = back up).
    SetUp(bool),
}

/// Per-device state.
struct DeviceState {
    home: u16,
    type_idx: u16,
    mode_tag: u8,
    published: u64,
    acked: u64,
    nacked: u64,
    received: u64,
    misses: u32,
    awaiting_ack: bool,
    rehomes: u64,
    fanout_us: Histogram,
    /// Device-side hop spans (publish roots, delivery terminals).
    /// Plain `Send` data: shard workers record locally, the fold below
    /// merges in actor order.
    trace: TraceLog,
}

/// Fleet actor: broker or device.
enum FleetActor {
    Broker { node: Box<BrokerNode>, alive: bool },
    Device(Box<DeviceState>),
}

/// Deterministic aggregate of one fleet run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Packets devices attempted to publish.
    pub published: u64,
    /// Publishes acked by a live broker.
    pub acked: u64,
    /// Publishes shed by backpressure (nacked).
    pub shed: u64,
    /// Deliveries received by devices.
    pub delivered: u64,
    /// Federation forwards between brokers.
    pub forwarded: u64,
    /// Forwards suppressed by the loop guard.
    pub loops_dropped: u64,
    /// Load digests gossiped out to federation peers.
    pub gossip_sent: u64,
    /// Load digests heard from federation peers.
    pub gossip_heard: u64,
    /// Publishes refused for missing attribution.
    pub unattributed: u64,
    /// Subscriptions expired by sweeps.
    pub subs_expired: u64,
    /// Retained/queued packets expired.
    pub packets_expired: u64,
    /// Publisher re-homings after missed acks.
    pub rehomes: u64,
    /// Median fan-out latency (publish → device delivery), micros.
    pub p50_fanout_us: u64,
    /// p99 fan-out latency, micros.
    pub p99_fanout_us: u64,
    /// Engine events executed.
    pub events: u64,
    /// Cross-actor messages delivered.
    pub messages: u64,
    /// Engine transcript digest.
    pub digest: u64,
    /// Hop spans recorded across all actors (sampled traces only).
    pub trace_spans: u64,
    /// FNV digest of the canonical trace JSONL export.
    pub trace_digest: u64,
    /// The folded trace log itself (brokers then devices, actor-id
    /// order), ready for [`tracekit::assemble`]/[`tracekit::Breakup`].
    pub trace: TraceLog,
}

impl FleetOutcome {
    /// Shed rate in parts-per-million of offered publishes.
    pub fn shed_ppm(&self) -> u64 {
        if self.published == 0 {
            0
        } else {
            self.shed * 1_000_000 / self.published
        }
    }

    /// The byte-identity witness: every field, one line.
    pub fn report(&self) -> String {
        format!(
            "published={} acked={} shed={} delivered={} forwarded={} loops={} \
             gossip_sent={} gossip_heard={} \
             unattributed={} subs_expired={} packets_expired={} rehomes={} \
             p50_us={} p99_us={} shed_ppm={} events={} messages={} digest={:016x} \
             trace_spans={} trace_digest={:016x}",
            self.published,
            self.acked,
            self.shed,
            self.delivered,
            self.forwarded,
            self.loops_dropped,
            self.gossip_sent,
            self.gossip_heard,
            self.unattributed,
            self.subs_expired,
            self.packets_expired,
            self.rehomes,
            self.p50_fanout_us,
            self.p99_fanout_us,
            self.shed_ppm(),
            self.events,
            self.messages,
            self.digest,
            self.trace_spans,
            self.trace_digest,
        )
    }
}

fn type_name(idx: u16) -> String {
    format!("ctx{idx:02}")
}

fn broker_actor(b: u16) -> ActorId {
    ActorId(u64::from(b))
}

/// Runs one fleet scenario to completion.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    run_fleet_profiled(cfg).0
}

/// Runs one fleet scenario and also returns the engine's self-profile
/// (per-shard event counts, queue peaks, merge-barrier imbalance).
/// The profile describes the physical layout and is deliberately kept
/// **outside** the equality-compared [`FleetOutcome`].
pub fn run_fleet_profiled(cfg: &FleetConfig) -> (FleetOutcome, EngineProfile) {
    let brokers = cfg.brokers.max(1);
    let node_cfg = cfg.node.clone();
    let seed = cfg.seed;
    let trace_rate = cfg.node.trace_sample_log2;
    let publish_period = cfg.publish_period;
    let lifetime = cfg.lifetime;
    let drain_every = cfg.drain_every;
    let sweep_every = cfg.sweep_every;
    let gossip_every = cfg.gossip_every;
    let horizon = cfg.run_for;

    let handler = move |actor: &mut FleetActor, ctx: &mut EventCtx<'_, FleetEvent>, ev: FleetEvent| {
        match (actor, ev) {
            // ---------------- broker side ----------------
            (FleetActor::Broker { node, alive }, ev) => match ev {
                FleetEvent::Sub {
                    subscriber,
                    type_idx,
                    mode,
                } => {
                    node.subscribe(
                        subscriber,
                        &type_name(type_idx),
                        mode,
                        ctx.now() + horizon + horizon,
                        ctx.now(),
                    );
                }
                FleetEvent::Packet { packet, origin } => {
                    if !*alive {
                        return; // down: no ack, publisher times out
                    }
                    let origin = origin.map(ActorId);
                    match node.publish(packet, ctx.now()) {
                        Ok(()) => {
                            if let Some(dev) = origin {
                                ctx.send(dev, SimDuration::from_millis(2), FleetEvent::Ack);
                            }
                        }
                        Err(_) => {
                            if let Some(dev) = origin {
                                ctx.send(dev, SimDuration::from_millis(2), FleetEvent::Nack);
                            }
                        }
                    }
                }
                FleetEvent::DrainTick => {
                    if *alive {
                        let mut effects = node.drain(ctx.now());
                        effects.extend(node.periodic_fire(ctx.now()));
                        for e in effects {
                            match e {
                                Effect::Deliver {
                                    subscriber, packet, ..
                                } => ctx.send(
                                    ActorId(subscriber),
                                    SimDuration::from_millis(5),
                                    FleetEvent::Delivery(packet),
                                ),
                                Effect::Forward { to, packet } => ctx.send(
                                    broker_actor(to.0),
                                    SimDuration::from_millis(10),
                                    FleetEvent::Packet {
                                        packet,
                                        origin: None,
                                    },
                                ),
                            }
                        }
                    }
                    ctx.schedule_self(drain_every, FleetEvent::DrainTick);
                }
                FleetEvent::SweepTick => {
                    if *alive {
                        node.sweep(ctx.now());
                    }
                    ctx.schedule_self(sweep_every, FleetEvent::SweepTick);
                }
                FleetEvent::GossipTick => {
                    if *alive {
                        let digest = node.gossip_digest(ctx.now());
                        for peer in node.peers().brokers() {
                            ctx.send(
                                broker_actor(peer.0),
                                SimDuration::from_millis(10),
                                FleetEvent::Digest(digest),
                            );
                        }
                    }
                    ctx.schedule_self(gossip_every, FleetEvent::GossipTick);
                }
                FleetEvent::Digest(d) => {
                    if *alive {
                        node.hear_gossip(&d, ctx.now());
                    }
                }
                FleetEvent::SetUp(up) => {
                    *alive = up;
                    ctx.emit(format!(
                        "broker{} {}",
                        node.id().0,
                        if up { "up" } else { "down" }
                    ));
                }
                _ => {}
            },
            // ---------------- device side ----------------
            (FleetActor::Device(dev), ev) => match ev {
                FleetEvent::Start => {
                    let mode = match dev.mode_tag {
                        0 => SubMode::Periodic(publish_period),
                        1 => SubMode::Event,
                        _ => SubMode::OneShot,
                    };
                    ctx.send(
                        broker_actor(dev.home),
                        SimDuration::from_millis(2),
                        FleetEvent::Sub {
                            subscriber: ctx.actor().0,
                            type_idx: dev.type_idx,
                            mode,
                        },
                    );
                    let jitter = ctx.rng().jitter(publish_period, 0.25);
                    ctx.schedule_self(jitter, FleetEvent::PublishTick);
                }
                FleetEvent::PublishTick => {
                    if dev.awaiting_ack {
                        dev.misses += 1;
                        if dev.misses >= REHOME_AFTER_MISSES {
                            dev.home = (dev.home + 1) % brokers;
                            dev.rehomes += 1;
                            dev.misses = 0;
                        }
                    }
                    dev.published += 1;
                    dev.awaiting_ack = true;
                    // 1 in 97 devices "forgets" attribution: exercises
                    // the hygiene refusal path under load.
                    let source = if ctx.actor().0 % 97 == 0 {
                        String::new()
                    } else {
                        format!("dev{}", ctx.actor().0)
                    };
                    let mut packet = ContextPacket::new(
                        type_name(dev.type_idx),
                        (ctx.actor().0 as i64 % 1000) * 10,
                        ctx.now(),
                        lifetime,
                        source,
                    );
                    packet.value_milli += (ctx.rng().next_u64() % 1000) as i64;
                    // Root the trace from pure (seed, actor, seq)
                    // material — sampling is a function of the id, so
                    // the sampled set is partition-independent.
                    let root = TraceCtx::root(
                        seed ^ (ctx.actor().0 << 20) ^ dev.published,
                        trace_rate,
                    );
                    let span = dev.trace.record(root, Stage::Publish, ctx.actor().0, ctx.now());
                    if span != 0 {
                        packet.trace = root.child(span);
                    }
                    ctx.send(
                        broker_actor(dev.home),
                        SimDuration::from_millis(2),
                        FleetEvent::Packet {
                            packet,
                            origin: Some(ctx.actor().0),
                        },
                    );
                    let jitter = ctx.rng().jitter(publish_period, 0.25);
                    ctx.schedule_self(jitter, FleetEvent::PublishTick);
                }
                FleetEvent::Ack => {
                    dev.acked += 1;
                    dev.awaiting_ack = false;
                    dev.misses = 0;
                }
                FleetEvent::Nack => {
                    dev.nacked += 1;
                    dev.awaiting_ack = false;
                }
                FleetEvent::Delivery(packet) => {
                    dev.received += 1;
                    let latency = ctx.now().since(packet.published_at);
                    dev.fanout_us.record(latency.as_micros());
                    dev.trace
                        .record(packet.trace, Stage::Deliver, ctx.actor().0, ctx.now());
                }
                _ => {}
            },
        }
    };

    let shard_cfg = ShardConfig {
        seed: cfg.seed,
        shards: cfg.shards,
        threads: cfg.threads,
        record_transcript: false,
    };
    let mut sim = ShardSim::new(shard_cfg, handler);

    // Brokers are actors 0..brokers; each peers with every other broker.
    for b in 0..brokers {
        let mut node = BrokerNode::new(BrokerId(b), node_cfg.clone());
        for peer in 0..brokers {
            if peer != b {
                // Link latency asymmetry drives QoS selection: peers
                // further around the ring cost more.
                let dist = u64::from((peer + brokers - b) % brokers);
                node.peers_mut()
                    .introduce(BrokerId(peer), 5_000 * dist, SimTime::ZERO);
            }
        }
        sim.add_actor(
            broker_actor(b),
            FleetActor::Broker {
                node: Box::new(node),
                alive: true,
            },
        );
    }
    for d in 0..cfg.devices {
        let id = ActorId(u64::from(brokers) + d);
        let dev = DeviceState {
            home: (d % u64::from(brokers)) as u16,
            type_idx: (d % u64::from(FLEET_TYPES)) as u16,
            mode_tag: (d % 3) as u8,
            published: 0,
            acked: 0,
            nacked: 0,
            received: 0,
            misses: 0,
            awaiting_ack: false,
            rehomes: 0,
            fanout_us: Histogram::new(),
            trace: TraceLog::new(),
        };
        sim.add_actor(id, FleetActor::Device(Box::new(dev)));
    }

    // Kick-off: broker cadences, device starts, scripted fault edges.
    for b in 0..brokers {
        let a = broker_actor(b);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::DrainTick);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::SweepTick);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::GossipTick);
    }
    for d in 0..cfg.devices {
        let _ = sim.schedule(
            ActorId(u64::from(brokers) + d),
            SimTime::ZERO,
            FleetEvent::Start,
        );
    }
    for (b, at, up) in &cfg.fault_edges {
        if *b < brokers {
            let _ = sim.schedule(broker_actor(*b), *at, FleetEvent::SetUp(*up));
        }
    }

    sim.run_until(SimTime::ZERO + cfg.run_for);

    // Fold outcomes in actor-id order — deterministic by construction.
    let mut out = FleetOutcome::default();
    let mut fanout = Histogram::new();
    for b in 0..brokers {
        if let Some(FleetActor::Broker { node, .. }) = sim.actor_state(broker_actor(b)) {
            let s = node.stats();
            out.shed += s.admission.shed;
            out.unattributed += s.admission.unattributed;
            out.forwarded += s.forwarded;
            out.loops_dropped += s.loops_dropped;
            out.gossip_sent += s.gossip_sent;
            out.gossip_heard += s.gossip_heard;
            out.subs_expired += s.subs_expired;
            out.packets_expired += s.packets_expired;
            out.trace.merge(node.trace_log());
        }
    }
    for d in 0..cfg.devices {
        let id = ActorId(u64::from(brokers) + d);
        if let Some(FleetActor::Device(dev)) = sim.actor_state(id) {
            out.published += dev.published;
            out.acked += dev.acked;
            out.delivered += dev.received;
            out.rehomes += dev.rehomes;
            fanout.merge(&dev.fanout_us);
            out.trace.merge(&dev.trace);
        }
    }
    out.p50_fanout_us = fanout.quantile(0.50);
    out.p99_fanout_us = fanout.quantile(0.99);
    out.events = sim.events_processed();
    out.messages = sim.messages_delivered();
    out.digest = sim.digest();
    out.trace_spans = out.trace.len() as u64;
    // The digest hashes the *canonical* export, so it is invariant to
    // the fold order above and comparable across partition layouts.
    out.trace_digest = out.trace.digest();
    (out, sim.profile().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64, shards: u32, threads: u32) -> FleetConfig {
        FleetConfig {
            seed,
            brokers: 3,
            devices: 120,
            shards,
            threads,
            run_for: SimDuration::from_secs(20),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_and_delivers() {
        let out = run_fleet(&small(7, 1, 1));
        assert!(out.published > 300, "published={}", out.published);
        assert!(out.delivered > 0);
        assert!(out.acked > 0);
        assert!(out.forwarded > 0, "federation never forwarded");
        assert!(out.unattributed > 0, "hygiene path never exercised");
        assert!(out.p99_fanout_us >= out.p50_fanout_us);
    }

    #[test]
    fn report_is_identical_across_partitions() {
        let reference = run_fleet(&small(11, 1, 1)).report();
        for (shards, threads) in [(2, 1), (4, 2), (8, 4)] {
            let (out, profile) = run_fleet_profiled(&small(11, shards, threads));
            assert_eq!(out.report(), reference, "diverged at shards={shards} threads={threads}");
            // The profile sees the layout; the outcome must not.
            assert_eq!(profile.events_per_shard.len(), shards as usize);
            assert_eq!(profile.total_events(), out.events);
        }
    }

    #[test]
    fn fleet_traces_assemble_into_deliveries() {
        let mut cfg = small(7, 1, 1);
        cfg.node.trace_sample_log2 = 0; // sample every trace
        let out = run_fleet(&cfg);
        assert!(out.trace_spans > 0, "no spans recorded");
        assert_eq!(out.trace_digest, out.trace.digest());
        let trees = tracekit::assemble(&out.trace);
        let breakup = tracekit::Breakup::of(&trees);
        assert!(breakup.deliveries() > 0, "no traced delivery paths");
        // Sampled-down runs record strictly fewer spans.
        let sampled = run_fleet(&small(7, 1, 1));
        assert!(sampled.trace_spans < out.trace_spans);
    }

    #[test]
    fn killed_broker_causes_rehoming() {
        let mut plan = FaultPlan::new(1);
        plan.kill_at("broker:0", SimTime::from_secs(8));
        let mut cfg = small(13, 1, 1);
        cfg.fault_edges = fault_edges(&plan, cfg.brokers);
        let out = run_fleet(&cfg);
        assert!(out.rehomes > 0, "no publisher re-homed after the kill");
        let healthy = run_fleet(&small(13, 1, 1));
        assert_eq!(healthy.rehomes, 0);
        assert!(out.acked < healthy.acked);
    }
}
