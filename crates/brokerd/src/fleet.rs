//! The sharded-simulation harness: a federated broker fleet plus a
//! device population as [`ShardSim`] actors.
//!
//! Brokers and devices are actors; every interaction — publish, ack,
//! delivery, federation forward, gossip — is a cross-actor message, so
//! the engine's partition-independent ordering makes a whole fleet run
//! **byte-identical across physical shard counts and worker-thread
//! counts**. The [`FleetOutcome::report`] string is the identity
//! witness; `broker_load` gates on it and `tests/fleet_determinism.rs`
//! checks the {1,4}-shard × thread matrix.
//!
//! Fault edges come from [`simkit::faults::FaultPlan`] (target label
//! `broker:<id>`): a killed broker stops acking, draining and gossiping;
//! its publishers miss acks and deterministically re-home to the next
//! broker, and its peers see its digests go stale. No wall clock, no
//! floats, no unordered maps anywhere on this path.

use crate::dedup::{DedupWindow, SeqVerdict};
use crate::federation::LoadDigest;
use crate::node::{BrokerNode, DirEntry, Effect, NodeConfig, NodeStats};
use crate::packet::{BrokerId, ContextPacket, PacketSeq};
use crate::table::SubMode;
use obskit::Histogram;
use simkit::faults::{FaultPlan, LinkChaos, LinkFault};
use simkit::shard::{ActorId, EngineProfile, EventCtx, ShardConfig, ShardSim};
use simkit::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use tracekit::{Stage, TraceCtx, TraceLog};

/// Number of distinct context types the fleet publishes.
pub const FLEET_TYPES: u16 = 64;

/// Missed acks before a publisher re-homes to the next broker.
const REHOME_AFTER_MISSES: u32 = 2;

/// Fleet scenario configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Master seed.
    pub seed: u64,
    /// Broker count (≥ 1).
    pub brokers: u16,
    /// Device count.
    pub devices: u64,
    /// Physical shard count of the engine.
    pub shards: u32,
    /// Worker threads.
    pub threads: u32,
    /// Virtual duration of the run.
    pub run_for: SimDuration,
    /// Device publish cadence (jittered ±25 % per device).
    pub publish_period: SimDuration,
    /// Lifetime stamped on every published packet.
    pub lifetime: SimDuration,
    /// Broker drain cadence.
    pub drain_every: SimDuration,
    /// Broker sweep cadence.
    pub sweep_every: SimDuration,
    /// Broker gossip cadence.
    pub gossip_every: SimDuration,
    /// Broker tunables (table shards, inbox bound, drain budget).
    pub node: NodeConfig,
    /// Scripted up/down edges `(broker, at, up)`; build with
    /// [`fault_edges`].
    pub fault_edges: Vec<(u16, SimTime, bool)>,
    /// Crash-*restart* instants `(broker, at)`; build with
    /// [`restart_edges`]. An up edge that coincides with a restart
    /// instant boots a **fresh** node (state wiped) instead of merely
    /// flipping liveness back on.
    pub restarts: Vec<(u16, SimTime)>,
    /// Per-federation-link chaos `(from, to, fault)`; build with
    /// [`link_faults`]. Links not listed here are lossless.
    pub link_faults: Vec<(u16, u16, LinkFault)>,
    /// When link chaos switches off (`None` = lossy for the whole
    /// run). Convergence assertions need a few lossless gossip rounds
    /// after the heal.
    pub chaos_until: Option<SimTime>,
    /// Broker-side lease length of device subscriptions (`None` =
    /// twice the run horizon, the legacy effectively-forever lease).
    pub sub_lease: Option<SimDuration>,
    /// Device lease-renewal cadence (`None` = no renewal — legacy).
    /// Renewal is what re-populates a crashed broker's table.
    pub resub_every: Option<SimDuration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            brokers: 4,
            devices: 1_000,
            shards: 1,
            threads: 1,
            run_for: SimDuration::from_secs(30),
            publish_period: SimDuration::from_secs(5),
            lifetime: SimDuration::from_secs(30),
            drain_every: SimDuration::from_millis(50),
            sweep_every: SimDuration::from_secs(10),
            gossip_every: SimDuration::from_secs(5),
            node: NodeConfig::default(),
            fault_edges: Vec::new(),
            restarts: Vec::new(),
            link_faults: Vec::new(),
            chaos_until: None,
            sub_lease: None,
            resub_every: None,
        }
    }
}

/// Extracts the fleet's fault edges from a [`FaultPlan`] using the
/// `broker:<id>` target convention.
pub fn fault_edges(plan: &FaultPlan, brokers: u16) -> Vec<(u16, SimTime, bool)> {
    let mut edges = Vec::new();
    for b in 0..brokers {
        for e in plan.edges(&format!("broker:{b}")) {
            edges.push((b, e.at, e.up));
        }
    }
    edges
}

/// Extracts the fleet's crash-restart instants from a [`FaultPlan`]
/// (targets `broker:<id>`, built with
/// [`FaultPlan::crash_restart`]).
pub fn restart_edges(plan: &FaultPlan, brokers: u16) -> Vec<(u16, SimTime)> {
    let mut edges = Vec::new();
    for b in 0..brokers {
        for at in plan.restarts(&format!("broker:{b}")) {
            edges.push((b, at));
        }
    }
    edges
}

/// Extracts per-federation-link chaos from a [`FaultPlan`] using the
/// `link:<from>-><to>` label convention (built with
/// [`FaultPlan::lossy_link`]).
pub fn link_faults(plan: &FaultPlan, brokers: u16) -> Vec<(u16, u16, LinkFault)> {
    let mut links = Vec::new();
    for from in 0..brokers {
        for to in 0..brokers {
            if from == to {
                continue;
            }
            if let Some(fault) = plan.link_fault(&link_label(from, to)) {
                links.push((from, to, fault));
            }
        }
    }
    links
}

/// Canonical label of the directed federation link `from -> to`, the
/// key both [`FaultPlan::lossy_link`] and the per-link chaos RNG
/// streams are salted with.
pub fn link_label(from: u16, to: u16) -> String {
    format!("link:{from}->{to}")
}

/// Events exchanged by fleet actors.
#[derive(Clone, Debug)]
pub enum FleetEvent {
    /// Device: subscribe and start the publish cadence.
    Start,
    /// Device: publish one packet to the home broker.
    PublishTick,
    /// Broker: a packet arrives (device publish or federation forward).
    Packet {
        /// The published packet.
        packet: ContextPacket,
        /// Publishing device actor for direct publishes (acked/nacked);
        /// `None` for unattributed transports. The transport knows its
        /// sender even when the packet itself lacks attribution.
        origin: Option<u64>,
    },
    /// Broker: a federation forward arrives over a (possibly lossy)
    /// inter-broker link.
    Fwd {
        /// The forwarded packet.
        packet: ContextPacket,
        /// Forwarding broker (where the ack goes).
        from: u16,
        /// Retry-tracking handle minted by the forwarder; `0` for
        /// fire-and-forget forwards (no ack expected).
        fwd_id: u64,
    },
    /// Broker: a peer acknowledged a tracked forward.
    FwdAck(u64),
    /// Broker: register a subscription.
    Sub {
        /// Subscribing device actor.
        subscriber: u64,
        /// Context type index.
        type_idx: u16,
        /// Delivery mode.
        mode: SubMode,
    },
    /// Broker: renew (or re-register) a subscription lease — the
    /// idempotent path devices use on their renewal cadence, and what
    /// re-populates a crashed broker's table after a restart.
    Renew {
        /// Subscribing device actor.
        subscriber: u64,
        /// Context type index.
        type_idx: u16,
        /// Delivery mode.
        mode: SubMode,
    },
    /// Broker: service the inbox and fire due periodic deliveries.
    DrainTick,
    /// Broker: expiry sweep.
    SweepTick,
    /// Broker: broadcast a load digest to peers.
    GossipTick,
    /// Broker: a peer's digest arrives.
    Digest(LoadDigest),
    /// Device: a delivery arrives.
    Delivery(ContextPacket),
    /// Device: the home broker admitted the last publish.
    Ack,
    /// Device: the home broker shed the last publish.
    Nack,
    /// Broker: scripted fault edge (`true` = back up).
    SetUp(bool),
    /// Broker: crash-restart recovery — boot a **fresh** node (table,
    /// inbox, dedup window, directory and pending forwards wiped; the
    /// run's ledger is carried outside the node).
    Restart,
    /// Device: renew the subscription lease with the home broker.
    ResubTick,
}

/// Per-device state.
struct DeviceState {
    home: u16,
    /// Where this device's *subscription* lives — fixed at start.
    /// Publishing re-homes after missed acks; the lease does not, so a
    /// device never holds live leases at two brokers (which would turn
    /// forwarded packets into duplicate deliveries).
    sub_home: u16,
    type_idx: u16,
    mode_tag: u8,
    published: u64,
    acked: u64,
    nacked: u64,
    received: u64,
    misses: u32,
    awaiting_ack: bool,
    rehomes: u64,
    fanout_us: Histogram,
    /// End-to-end idempotence witness: deliveries already seen, by
    /// `(origin, seq)`. Periodic re-delivery of retained context is
    /// intentional, so only event/one-shot devices consult it.
    dedup: DedupWindow,
    /// Sequenced deliveries that reached this device more than once —
    /// the chaos scenario pins this to exactly zero fleet-wide.
    dup_deliveries: u64,
    /// Device-side hop spans (publish roots, delivery terminals).
    /// Plain `Send` data: shard workers record locally, the fold below
    /// merges in actor order.
    trace: TraceLog,
}

/// Per-broker actor state: the pure node plus everything that must
/// survive a crash-restart of the node itself.
struct BrokerState {
    node: Box<BrokerNode>,
    alive: bool,
    /// Outbound link-chaos state, keyed by destination broker. Lives
    /// in the *sender's* actor state so every chaos decision is made
    /// in a partition-independent event context.
    chaos: BTreeMap<u16, LinkChaos>,
    /// Counters of dead incarnations (the process died; the run's
    /// ledger did not).
    carried: NodeStats,
    /// Trace spans of dead incarnations.
    carried_trace: TraceLog,
    restarts: u64,
}

/// Fleet actor: broker or device.
enum FleetActor {
    Broker(Box<BrokerState>),
    Device(Box<DeviceState>),
}

/// Field-wise sum of two [`NodeStats`] ledgers (used to fold a dead
/// incarnation's counters into the carried total).
fn fold_stats(into: &mut NodeStats, s: &NodeStats) {
    into.admission.admitted += s.admission.admitted;
    into.admission.shed += s.admission.shed;
    into.admission.unattributed += s.admission.unattributed;
    into.admission.expired += s.admission.expired;
    into.admission.blocked += s.admission.blocked;
    into.delivered += s.delivered;
    into.forwarded += s.forwarded;
    into.loops_dropped += s.loops_dropped;
    into.subs_expired += s.subs_expired;
    into.packets_expired += s.packets_expired;
    into.gossip_sent += s.gossip_sent;
    into.gossip_heard += s.gossip_heard;
    into.dedup_suppressed += s.dedup_suppressed;
    into.retries += s.retries;
    into.retry_exhausted += s.retry_exhausted;
    into.resubscriptions += s.resubscriptions;
    into.anti_entropy_rounds += s.anti_entropy_rounds;
}

/// A fresh broker node wired into the ring topology — used at setup
/// and again on every crash-restart.
fn fresh_node(b: u16, brokers: u16, cfg: &NodeConfig) -> BrokerNode {
    let mut node = BrokerNode::new(BrokerId(b), cfg.clone());
    for peer in 0..brokers {
        if peer != b {
            // Link latency asymmetry drives QoS selection: peers
            // further around the ring cost more.
            let dist = u64::from((peer + brokers - b) % brokers);
            node.peers_mut()
                .introduce(BrokerId(peer), 5_000 * dist, SimTime::ZERO);
        }
    }
    node
}

/// Sends `ev` to broker `to` over the sender's outbound link: through
/// the link's chaos state while chaos is active (possibly dropping,
/// duplicating, reordering or delaying it), verbatim otherwise.
fn send_link(
    chaos: &mut BTreeMap<u16, LinkChaos>,
    ctx: &mut EventCtx<'_, FleetEvent>,
    to: u16,
    base: SimDuration,
    ev: FleetEvent,
    chaos_until: Option<SimTime>,
) {
    let active = chaos_until.is_none_or(|t| ctx.now() < t);
    match chaos.get_mut(&to) {
        Some(link) if active => {
            for delay in link.decide() {
                ctx.send(broker_actor(to), base + delay, ev.clone());
            }
        }
        _ => ctx.send(broker_actor(to), base, ev),
    }
}

/// Deterministic aggregate of one fleet run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Packets devices attempted to publish.
    pub published: u64,
    /// Publishes acked by a live broker.
    pub acked: u64,
    /// Publishes shed by backpressure (nacked).
    pub shed: u64,
    /// Deliveries received by devices.
    pub delivered: u64,
    /// Federation forwards between brokers.
    pub forwarded: u64,
    /// Forwards suppressed by the loop guard.
    pub loops_dropped: u64,
    /// Load digests gossiped out to federation peers.
    pub gossip_sent: u64,
    /// Load digests heard from federation peers.
    pub gossip_heard: u64,
    /// Publishes refused for missing attribution.
    pub unattributed: u64,
    /// Subscriptions expired by sweeps.
    pub subs_expired: u64,
    /// Retained/queued packets expired.
    pub packets_expired: u64,
    /// Publisher re-homings after missed acks.
    pub rehomes: u64,
    /// Link-chaos: inter-broker sends dropped on the wire.
    pub packets_dropped: u64,
    /// Link-chaos: inter-broker sends duplicated on the wire.
    pub packets_duped: u64,
    /// Link-chaos: inter-broker sends pushed past a younger sibling.
    pub packets_reordered: u64,
    /// Link-chaos: inter-broker sends jittered (delay > 0).
    pub packets_delayed: u64,
    /// Federation forwards re-sent after an ack timeout.
    pub retries: u64,
    /// Federation forwards abandoned after the retry budget.
    pub retry_exhausted: u64,
    /// Duplicate publishes suppressed by broker dedup windows.
    pub dedup_suppressed: u64,
    /// Lease renewals brokers processed.
    pub resubscriptions: u64,
    /// Anti-entropy directory reconciliations across all brokers.
    pub anti_entropy_rounds: u64,
    /// Sequenced deliveries that reached a device more than once —
    /// the end-to-end idempotence violation count (chaos pins it 0).
    pub duplicate_deliveries: u64,
    /// Broker crash-restarts executed.
    pub restarts: u64,
    /// Post-run anti-entropy witness: every broker's directory entry
    /// for every other broker agrees (version *and* table digest).
    pub dir_converged: bool,
    /// Median fan-out latency (publish → device delivery), micros.
    pub p50_fanout_us: u64,
    /// p99 fan-out latency, micros.
    pub p99_fanout_us: u64,
    /// Engine events executed.
    pub events: u64,
    /// Cross-actor messages delivered.
    pub messages: u64,
    /// Engine transcript digest.
    pub digest: u64,
    /// Hop spans recorded across all actors (sampled traces only).
    pub trace_spans: u64,
    /// FNV digest of the canonical trace JSONL export.
    pub trace_digest: u64,
    /// The folded trace log itself (brokers then devices, actor-id
    /// order), ready for [`tracekit::assemble`]/[`tracekit::Breakup`].
    pub trace: TraceLog,
}

impl FleetOutcome {
    /// Shed rate in parts-per-million of offered publishes.
    pub fn shed_ppm(&self) -> u64 {
        if self.published == 0 {
            0
        } else {
            self.shed * 1_000_000 / self.published
        }
    }

    /// The byte-identity witness: every field, one line.
    pub fn report(&self) -> String {
        format!(
            "published={} acked={} shed={} delivered={} forwarded={} loops={} \
             gossip_sent={} gossip_heard={} \
             unattributed={} subs_expired={} packets_expired={} rehomes={} \
             dropped={} duped={} reordered={} delayed={} \
             retries={} retry_exhausted={} dedup_suppressed={} resubs={} \
             anti_entropy={} dup_deliveries={} restarts={} dir_converged={} \
             p50_us={} p99_us={} shed_ppm={} events={} messages={} digest={:016x} \
             trace_spans={} trace_digest={:016x}",
            self.published,
            self.acked,
            self.shed,
            self.delivered,
            self.forwarded,
            self.loops_dropped,
            self.gossip_sent,
            self.gossip_heard,
            self.unattributed,
            self.subs_expired,
            self.packets_expired,
            self.rehomes,
            self.packets_dropped,
            self.packets_duped,
            self.packets_reordered,
            self.packets_delayed,
            self.retries,
            self.retry_exhausted,
            self.dedup_suppressed,
            self.resubscriptions,
            self.anti_entropy_rounds,
            self.duplicate_deliveries,
            self.restarts,
            u8::from(self.dir_converged),
            self.p50_fanout_us,
            self.p99_fanout_us,
            self.shed_ppm(),
            self.events,
            self.messages,
            self.digest,
            self.trace_spans,
            self.trace_digest,
        )
    }
}

fn type_name(idx: u16) -> String {
    format!("ctx{idx:02}")
}

fn broker_actor(b: u16) -> ActorId {
    ActorId(u64::from(b))
}

/// Runs one fleet scenario to completion.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    run_fleet_profiled(cfg).0
}

/// Runs one fleet scenario and also returns the engine's self-profile
/// (per-shard event counts, queue peaks, merge-barrier imbalance).
/// The profile describes the physical layout and is deliberately kept
/// **outside** the equality-compared [`FleetOutcome`].
pub fn run_fleet_profiled(cfg: &FleetConfig) -> (FleetOutcome, EngineProfile) {
    let brokers = cfg.brokers.max(1);
    let node_cfg = cfg.node.clone();
    let restart_cfg = cfg.node.clone();
    let seed = cfg.seed;
    let trace_rate = cfg.node.trace_sample_log2;
    let publish_period = cfg.publish_period;
    let lifetime = cfg.lifetime;
    let drain_every = cfg.drain_every;
    let sweep_every = cfg.sweep_every;
    let gossip_every = cfg.gossip_every;
    let horizon = cfg.run_for;
    let chaos_until = cfg.chaos_until;
    let sub_lease = cfg.sub_lease.unwrap_or(horizon + horizon);
    let resub_every = cfg.resub_every;

    let handler = move |actor: &mut FleetActor, ctx: &mut EventCtx<'_, FleetEvent>, ev: FleetEvent| {
        match (actor, ev) {
            // ---------------- broker side ----------------
            (FleetActor::Broker(st), ev) => match ev {
                FleetEvent::Sub {
                    subscriber,
                    type_idx,
                    mode,
                } => {
                    st.node.subscribe(
                        subscriber,
                        &type_name(type_idx),
                        mode,
                        ctx.now() + sub_lease,
                        ctx.now(),
                    );
                }
                FleetEvent::Renew {
                    subscriber,
                    type_idx,
                    mode,
                } => {
                    if st.alive {
                        st.node.subscribe_renewing(
                            subscriber,
                            &type_name(type_idx),
                            mode,
                            ctx.now() + sub_lease,
                            ctx.now(),
                        );
                    }
                }
                FleetEvent::Packet { packet, origin } => {
                    if !st.alive {
                        return; // down: no ack, publisher times out
                    }
                    let origin = origin.map(ActorId);
                    // Duplicate admits are acked positively too — an
                    // at-least-once sender must stop retrying.
                    match st.node.publish(packet, ctx.now()) {
                        Ok(_) => {
                            if let Some(dev) = origin {
                                ctx.send(dev, SimDuration::from_millis(2), FleetEvent::Ack);
                            }
                        }
                        Err(_) => {
                            if let Some(dev) = origin {
                                ctx.send(dev, SimDuration::from_millis(2), FleetEvent::Nack);
                            }
                        }
                    }
                }
                FleetEvent::Fwd {
                    packet,
                    from,
                    fwd_id,
                } => {
                    if !st.alive {
                        return; // dropped on the floor; the sender retries
                    }
                    // Fresh *and* duplicate admits ack (idempotent
                    // at-least-once); sheds stay silent so the
                    // sender's retry clock keeps running.
                    if st.node.publish(packet, ctx.now()).is_ok() && fwd_id != 0 {
                        send_link(
                            &mut st.chaos,
                            ctx,
                            from,
                            SimDuration::from_millis(10),
                            FleetEvent::FwdAck(fwd_id),
                            chaos_until,
                        );
                    }
                }
                FleetEvent::FwdAck(fwd_id) => {
                    if st.alive {
                        st.node.fwd_ack(fwd_id);
                    }
                }
                FleetEvent::DrainTick => {
                    if st.alive {
                        let me = st.node.id().0;
                        let mut effects = st.node.drain(ctx.now());
                        effects.extend(st.node.periodic_fire(ctx.now()));
                        effects.extend(st.node.fwd_retries_due(ctx.now()));
                        for e in effects {
                            match e {
                                Effect::Deliver {
                                    subscriber, packet, ..
                                } => ctx.send(
                                    ActorId(subscriber),
                                    SimDuration::from_millis(5),
                                    FleetEvent::Delivery(packet),
                                ),
                                Effect::Forward { to, packet, fwd_id } => send_link(
                                    &mut st.chaos,
                                    ctx,
                                    to.0,
                                    SimDuration::from_millis(10),
                                    FleetEvent::Fwd {
                                        packet,
                                        from: me,
                                        fwd_id,
                                    },
                                    chaos_until,
                                ),
                            }
                        }
                    }
                    ctx.schedule_self(drain_every, FleetEvent::DrainTick);
                }
                FleetEvent::SweepTick => {
                    if st.alive {
                        st.node.sweep(ctx.now());
                    }
                    ctx.schedule_self(sweep_every, FleetEvent::SweepTick);
                }
                FleetEvent::GossipTick => {
                    if st.alive {
                        let digest = st.node.gossip_digest(ctx.now());
                        for peer in st.node.peers().brokers() {
                            send_link(
                                &mut st.chaos,
                                ctx,
                                peer.0,
                                SimDuration::from_millis(10),
                                FleetEvent::Digest(digest),
                                chaos_until,
                            );
                        }
                    }
                    ctx.schedule_self(gossip_every, FleetEvent::GossipTick);
                }
                FleetEvent::Digest(d) => {
                    if st.alive {
                        st.node.hear_gossip(&d, ctx.now());
                    }
                }
                FleetEvent::SetUp(up) => {
                    st.alive = up;
                    ctx.emit(format!(
                        "broker{} {}",
                        st.node.id().0,
                        if up { "up" } else { "down" }
                    ));
                }
                FleetEvent::Restart => {
                    // The process died; the run's ledger did not. Fold
                    // the dead incarnation's counters and spans, then
                    // boot a fresh node into the same ring slot. Its
                    // table re-fills from lease renewals, its
                    // directory from anti-entropy gossip.
                    fold_stats(&mut st.carried, st.node.stats());
                    st.carried_trace.merge(st.node.trace_log());
                    let b = st.node.id().0;
                    *st.node = fresh_node(b, brokers, &restart_cfg);
                    st.alive = true;
                    st.restarts += 1;
                    st.node.note_recovery(ctx.now());
                    ctx.emit(format!("broker{b} restarted"));
                }
                _ => {}
            },
            // ---------------- device side ----------------
            (FleetActor::Device(dev), ev) => match ev {
                FleetEvent::Start => {
                    let mode = match dev.mode_tag {
                        0 => SubMode::Periodic(publish_period),
                        1 => SubMode::Event,
                        _ => SubMode::OneShot,
                    };
                    ctx.send(
                        broker_actor(dev.sub_home),
                        SimDuration::from_millis(2),
                        FleetEvent::Sub {
                            subscriber: ctx.actor().0,
                            type_idx: dev.type_idx,
                            mode,
                        },
                    );
                    let jitter = ctx.rng().jitter(publish_period, 0.25);
                    ctx.schedule_self(jitter, FleetEvent::PublishTick);
                    if let Some(every) = resub_every {
                        let jitter = ctx.rng().jitter(every, 0.25);
                        ctx.schedule_self(jitter, FleetEvent::ResubTick);
                    }
                }
                FleetEvent::ResubTick => {
                    let mode = match dev.mode_tag {
                        0 => SubMode::Periodic(publish_period),
                        1 => SubMode::Event,
                        _ => SubMode::OneShot,
                    };
                    // Renewal goes to the *subscription* home — fixed
                    // for the device's lifetime — which is also what
                    // re-registers the lease after that broker
                    // crash-restarts with an empty table.
                    ctx.send(
                        broker_actor(dev.sub_home),
                        SimDuration::from_millis(2),
                        FleetEvent::Renew {
                            subscriber: ctx.actor().0,
                            type_idx: dev.type_idx,
                            mode,
                        },
                    );
                    if let Some(every) = resub_every {
                        ctx.schedule_self(every, FleetEvent::ResubTick);
                    }
                }
                FleetEvent::PublishTick => {
                    if dev.awaiting_ack {
                        dev.misses += 1;
                        if dev.misses >= REHOME_AFTER_MISSES {
                            dev.home = (dev.home + 1) % brokers;
                            dev.rehomes += 1;
                            dev.misses = 0;
                        }
                    }
                    dev.published += 1;
                    dev.awaiting_ack = true;
                    // 1 in 97 devices "forgets" attribution: exercises
                    // the hygiene refusal path under load.
                    let source = if ctx.actor().0 % 97 == 0 {
                        String::new()
                    } else {
                        format!("dev{}", ctx.actor().0)
                    };
                    let mut packet = ContextPacket::new(
                        type_name(dev.type_idx),
                        (ctx.actor().0 as i64 % 1000) * 10,
                        ctx.now(),
                        lifetime,
                        source,
                    );
                    packet.value_milli += (ctx.rng().next_u64() % 1000) as i64;
                    // Sequence-number the publish: `(device, n)` is the
                    // idempotence key dedup windows track end to end.
                    packet.seq = PacketSeq::new(ctx.actor().0, dev.published);
                    // Root the trace from pure (seed, actor, seq)
                    // material — sampling is a function of the id, so
                    // the sampled set is partition-independent.
                    let root = TraceCtx::root(
                        seed ^ (ctx.actor().0 << 20) ^ dev.published,
                        trace_rate,
                    );
                    let span = dev.trace.record(root, Stage::Publish, ctx.actor().0, ctx.now());
                    if span != 0 {
                        packet.trace = root.child(span);
                    }
                    ctx.send(
                        broker_actor(dev.home),
                        SimDuration::from_millis(2),
                        FleetEvent::Packet {
                            packet,
                            origin: Some(ctx.actor().0),
                        },
                    );
                    let jitter = ctx.rng().jitter(publish_period, 0.25);
                    ctx.schedule_self(jitter, FleetEvent::PublishTick);
                }
                FleetEvent::Ack => {
                    dev.acked += 1;
                    dev.awaiting_ack = false;
                    dev.misses = 0;
                }
                FleetEvent::Nack => {
                    dev.nacked += 1;
                    dev.awaiting_ack = false;
                }
                FleetEvent::Delivery(packet) => {
                    dev.received += 1;
                    // Periodic devices re-receive retained context by
                    // design; event/one-shot devices must see each
                    // `(origin, seq)` exactly once, chaos or not.
                    if dev.mode_tag != 0
                        && packet.seq.is_some()
                        && dev.dedup.observe(packet.seq) == SeqVerdict::Duplicate
                    {
                        dev.dup_deliveries += 1;
                    }
                    let latency = ctx.now().since(packet.published_at);
                    dev.fanout_us.record(latency.as_micros());
                    dev.trace
                        .record(packet.trace, Stage::Deliver, ctx.actor().0, ctx.now());
                }
                _ => {}
            },
        }
    };

    let shard_cfg = ShardConfig {
        seed: cfg.seed,
        shards: cfg.shards,
        threads: cfg.threads,
        record_transcript: false,
    };
    let mut sim = ShardSim::new(shard_cfg, handler);

    // Brokers are actors 0..brokers; each peers with every other broker.
    for b in 0..brokers {
        let node = fresh_node(b, brokers, &node_cfg);
        // Outbound link-chaos streams: each directed link draws from
        // its own label-salted RNG, so the byte stream is a pure
        // function of (seed, link), not of partition layout.
        let mut chaos = BTreeMap::new();
        for (from, to, fault) in &cfg.link_faults {
            if *from == b && *to < brokers && !fault.is_noop() {
                chaos.insert(*to, LinkChaos::new(cfg.seed, &link_label(*from, *to), *fault));
            }
        }
        sim.add_actor(
            broker_actor(b),
            FleetActor::Broker(Box::new(BrokerState {
                node: Box::new(node),
                alive: true,
                chaos,
                carried: NodeStats::default(),
                carried_trace: TraceLog::new(),
                restarts: 0,
            })),
        );
    }
    for d in 0..cfg.devices {
        let id = ActorId(u64::from(brokers) + d);
        let home = (d % u64::from(brokers)) as u16;
        let dev = DeviceState {
            home,
            sub_home: home,
            type_idx: (d % u64::from(FLEET_TYPES)) as u16,
            mode_tag: (d % 3) as u8,
            published: 0,
            acked: 0,
            nacked: 0,
            received: 0,
            misses: 0,
            awaiting_ack: false,
            rehomes: 0,
            fanout_us: Histogram::new(),
            dedup: DedupWindow::new(1024),
            dup_deliveries: 0,
            trace: TraceLog::new(),
        };
        sim.add_actor(id, FleetActor::Device(Box::new(dev)));
    }

    // Kick-off: broker cadences, device starts, scripted fault edges.
    for b in 0..brokers {
        let a = broker_actor(b);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::DrainTick);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::SweepTick);
        let _ = sim.schedule(a, SimTime::ZERO, FleetEvent::GossipTick);
    }
    for d in 0..cfg.devices {
        let _ = sim.schedule(
            ActorId(u64::from(brokers) + d),
            SimTime::ZERO,
            FleetEvent::Start,
        );
    }
    // An up edge that coincides with a crash-restart instant boots a
    // fresh node instead of merely flipping liveness back on.
    let restart_set: BTreeSet<(u16, u64)> = cfg
        .restarts
        .iter()
        .map(|(b, at)| (*b, at.as_micros()))
        .collect();
    for (b, at, up) in &cfg.fault_edges {
        if *b < brokers {
            let ev = if *up && restart_set.contains(&(*b, at.as_micros())) {
                FleetEvent::Restart
            } else {
                FleetEvent::SetUp(*up)
            };
            let _ = sim.schedule(broker_actor(*b), *at, ev);
        }
    }

    sim.run_until(SimTime::ZERO + cfg.run_for);

    // Fold outcomes in actor-id order — deterministic by construction.
    let mut out = FleetOutcome::default();
    let mut fanout = Histogram::new();
    let mut dirs: Vec<(u16, BTreeMap<BrokerId, DirEntry>)> = Vec::new();
    for b in 0..brokers {
        if let Some(FleetActor::Broker(st)) = sim.actor_state(broker_actor(b)) {
            let mut s = st.carried;
            fold_stats(&mut s, st.node.stats());
            out.shed += s.admission.shed;
            out.unattributed += s.admission.unattributed;
            out.forwarded += s.forwarded;
            out.loops_dropped += s.loops_dropped;
            out.gossip_sent += s.gossip_sent;
            out.gossip_heard += s.gossip_heard;
            out.subs_expired += s.subs_expired;
            out.packets_expired += s.packets_expired;
            out.retries += s.retries;
            out.retry_exhausted += s.retry_exhausted;
            out.dedup_suppressed += s.dedup_suppressed;
            out.resubscriptions += s.resubscriptions;
            out.anti_entropy_rounds += s.anti_entropy_rounds;
            out.restarts += st.restarts;
            for link in st.chaos.values() {
                let ls = link.stats();
                out.packets_dropped += ls.dropped;
                out.packets_duped += ls.duplicated;
                out.packets_reordered += ls.reordered;
                out.packets_delayed += ls.delayed;
            }
            dirs.push((b, st.node.directory().clone()));
            out.trace.merge(&st.carried_trace);
            out.trace.merge(st.node.trace_log());
        }
    }
    // Anti-entropy witness: for every broker X, every *other* broker's
    // directory entry for X must exist and agree on version and table
    // digest — the post-heal convergence the chaos scenario pins.
    out.dir_converged = (0..brokers).all(|x| {
        let mut views = Vec::new();
        for (b, dir) in &dirs {
            if *b == x {
                continue;
            }
            match dir.get(&BrokerId(x)) {
                Some(e) => views.push(*e),
                None => return false,
            }
        }
        views.iter().skip(1).all(|v| Some(v) == views.first())
    });
    for d in 0..cfg.devices {
        let id = ActorId(u64::from(brokers) + d);
        if let Some(FleetActor::Device(dev)) = sim.actor_state(id) {
            out.published += dev.published;
            out.acked += dev.acked;
            out.delivered += dev.received;
            out.rehomes += dev.rehomes;
            out.duplicate_deliveries += dev.dup_deliveries;
            fanout.merge(&dev.fanout_us);
            out.trace.merge(&dev.trace);
        }
    }
    out.p50_fanout_us = fanout.quantile(0.50);
    out.p99_fanout_us = fanout.quantile(0.99);
    out.events = sim.events_processed();
    out.messages = sim.messages_delivered();
    out.digest = sim.digest();
    out.trace_spans = out.trace.len() as u64;
    // The digest hashes the *canonical* export, so it is invariant to
    // the fold order above and comparable across partition layouts.
    out.trace_digest = out.trace.digest();
    (out, sim.profile().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64, shards: u32, threads: u32) -> FleetConfig {
        FleetConfig {
            seed,
            brokers: 3,
            devices: 120,
            shards,
            threads,
            run_for: SimDuration::from_secs(20),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_and_delivers() {
        let out = run_fleet(&small(7, 1, 1));
        assert!(out.published > 300, "published={}", out.published);
        assert!(out.delivered > 0);
        assert!(out.acked > 0);
        assert!(out.forwarded > 0, "federation never forwarded");
        assert!(out.unattributed > 0, "hygiene path never exercised");
        assert!(out.p99_fanout_us >= out.p50_fanout_us);
    }

    #[test]
    fn report_is_identical_across_partitions() {
        let reference = run_fleet(&small(11, 1, 1)).report();
        for (shards, threads) in [(2, 1), (4, 2), (8, 4)] {
            let (out, profile) = run_fleet_profiled(&small(11, shards, threads));
            assert_eq!(out.report(), reference, "diverged at shards={shards} threads={threads}");
            // The profile sees the layout; the outcome must not.
            assert_eq!(profile.events_per_shard.len(), shards as usize);
            assert_eq!(profile.total_events(), out.events);
        }
    }

    #[test]
    fn fleet_traces_assemble_into_deliveries() {
        let mut cfg = small(7, 1, 1);
        cfg.node.trace_sample_log2 = 0; // sample every trace
        let out = run_fleet(&cfg);
        assert!(out.trace_spans > 0, "no spans recorded");
        assert_eq!(out.trace_digest, out.trace.digest());
        let trees = tracekit::assemble(&out.trace);
        let breakup = tracekit::Breakup::of(&trees);
        assert!(breakup.deliveries() > 0, "no traced delivery paths");
        // Sampled-down runs record strictly fewer spans.
        let sampled = run_fleet(&small(7, 1, 1));
        assert!(sampled.trace_spans < out.trace_spans);
    }

    /// A small chaos fleet: lossy federation links in both directions
    /// on every pair, one crash-restart mid-run, chaos healing well
    /// before the horizon, leases short enough to need renewal.
    fn chaotic(seed: u64, shards: u32, threads: u32) -> FleetConfig {
        let mut plan = FaultPlan::new(seed);
        let fault = LinkFault {
            drop_ppm: 80_000,
            dup_ppm: 60_000,
            reorder_ppm: 50_000,
            reorder_delay: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(15),
        };
        for a in 0..3u16 {
            for b in 0..3u16 {
                if a != b {
                    plan.lossy_link(&link_label(a, b), fault);
                }
            }
        }
        plan.crash_restart(
            "broker:1",
            SimTime::from_secs(12),
            SimDuration::from_secs(4),
        );
        let mut cfg = FleetConfig {
            seed,
            brokers: 3,
            devices: 120,
            shards,
            threads,
            run_for: SimDuration::from_secs(60),
            ..FleetConfig::default()
        };
        cfg.node.fwd_attempts = 4;
        cfg.fault_edges = fault_edges(&plan, 3);
        cfg.restarts = restart_edges(&plan, 3);
        cfg.link_faults = link_faults(&plan, 3);
        cfg.chaos_until = Some(SimTime::from_secs(40));
        cfg.sub_lease = Some(SimDuration::from_secs(20));
        cfg.resub_every = Some(SimDuration::from_secs(8));
        cfg
    }

    #[test]
    fn chaos_retries_recovers_and_never_double_delivers() {
        let out = run_fleet(&chaotic(23, 1, 1));
        assert!(out.packets_dropped > 0, "chaos never dropped");
        assert!(out.packets_duped > 0, "chaos never duplicated");
        assert!(out.packets_delayed > 0, "chaos never jittered");
        assert!(out.retries > 0, "lost forwards were never retried");
        assert!(out.dedup_suppressed > 0, "duplicates never reached dedup");
        assert!(out.resubscriptions > 0, "leases were never renewed");
        assert_eq!(out.restarts, 1);
        assert!(out.delivered > 0);
        // The two chaos SLOs: end-to-end idempotence and post-heal
        // anti-entropy convergence.
        assert_eq!(out.duplicate_deliveries, 0, "a device saw a packet twice");
        assert!(out.dir_converged, "directories diverged post-heal");
    }

    #[test]
    fn chaos_report_is_identical_across_partitions() {
        let reference = run_fleet(&chaotic(29, 1, 1)).report();
        for (shards, threads) in [(2, 2), (4, 4)] {
            let got = run_fleet(&chaotic(29, shards, threads)).report();
            assert_eq!(got, reference, "diverged at shards={shards} threads={threads}");
        }
    }

    #[test]
    fn restart_wipes_the_node_but_carries_the_ledger() {
        let mut plan = FaultPlan::new(5);
        plan.crash_restart(
            "broker:0",
            SimTime::from_secs(8),
            SimDuration::from_secs(3),
        );
        let mut cfg = small(17, 1, 1);
        cfg.fault_edges = fault_edges(&plan, cfg.brokers);
        cfg.restarts = restart_edges(&plan, cfg.brokers);
        cfg.resub_every = Some(SimDuration::from_secs(4));
        cfg.sub_lease = Some(SimDuration::from_secs(10));
        let out = run_fleet(&cfg);
        assert_eq!(out.restarts, 1);
        assert!(out.resubscriptions > 0);
        // Pre-crash admissions still count: the carried ledger saw them.
        let healthy = run_fleet(&small(17, 1, 1));
        assert!(out.acked > healthy.acked / 2);
    }

    #[test]
    fn killed_broker_causes_rehoming() {
        let mut plan = FaultPlan::new(1);
        plan.kill_at("broker:0", SimTime::from_secs(8));
        let mut cfg = small(13, 1, 1);
        cfg.fault_edges = fault_edges(&plan, cfg.brokers);
        let out = run_fleet(&cfg);
        assert!(out.rehomes > 0, "no publisher re-homed after the kill");
        let healthy = run_fleet(&small(13, 1, 1));
        assert_eq!(healthy.rehomes, 0);
        assert!(out.acked < healthy.acked);
    }
}
