//! Partition-invariance of the broker fleet: the same scenario must
//! produce a byte-identical [`FleetOutcome::report`] across engine
//! shard counts, worker-thread counts and broker table shard counts —
//! including under scripted broker faults.

use brokerd::{fault_edges, run_fleet, FleetConfig, NodeConfig};
use simkit::faults::FaultPlan;
use simkit::{SimDuration, SimTime};

fn cfg(seed: u64, shards: u32, threads: u32, table_shards: usize) -> FleetConfig {
    FleetConfig {
        seed,
        brokers: 4,
        devices: 400,
        shards,
        threads,
        run_for: SimDuration::from_secs(30),
        node: NodeConfig {
            table_shards,
            ..NodeConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn report_is_byte_identical_across_the_partition_matrix() {
    for seed in [1u64, 17] {
        let reference = run_fleet(&cfg(seed, 1, 1, 1)).report();
        for (shards, threads) in [(1u32, 2u32), (4, 1), (4, 4)] {
            for table_shards in [1usize, 4] {
                let got = run_fleet(&cfg(seed, shards, threads, table_shards)).report();
                assert_eq!(
                    got, reference,
                    "diverged: seed={seed} shards={shards} threads={threads} \
                     table_shards={table_shards}"
                );
            }
        }
    }
}

#[test]
fn trace_export_is_byte_identical_across_partitions() {
    // Full sampling so the trace plane carries real traffic; the
    // canonical JSONL export (not just its digest) must be the same
    // bytes for every partition of the engine.
    let traced = |shards, threads| {
        let mut c = cfg(29, shards, threads, 4);
        c.node.trace_sample_log2 = 0;
        run_fleet(&c)
    };
    let reference = traced(1, 1);
    assert!(reference.trace_spans > 0, "full sampling recorded nothing");
    let reference_export = reference.trace.export_jsonl();
    for (shards, threads) in [(2u32, 2u32), (4, 4)] {
        let got = traced(shards, threads);
        assert_eq!(
            got.trace.export_jsonl(),
            reference_export,
            "trace export diverged at shards={shards} threads={threads}"
        );
        assert_eq!(got.trace_digest, reference.trace_digest);
    }
}

#[test]
fn faulted_runs_are_equally_partition_invariant() {
    let mut plan = FaultPlan::new(23);
    plan.kill_at("broker:1", SimTime::from_secs(10));
    plan.down_between("broker:3", SimTime::from_secs(5), SimTime::from_secs(15));
    let edges = fault_edges(&plan, 4);

    let mut base = cfg(23, 1, 1, 4);
    base.fault_edges = edges.clone();
    let reference = run_fleet(&base).report();
    assert!(reference.contains("rehomes="), "report shape changed");

    for (shards, threads) in [(2u32, 2u32), (4, 4)] {
        let mut c = cfg(23, shards, threads, 4);
        c.fault_edges = edges.clone();
        assert_eq!(
            run_fleet(&c).report(),
            reference,
            "faulted run diverged at shards={shards} threads={threads}"
        );
    }

    // And the faults actually bit: re-homing happened.
    let out = {
        let mut c = cfg(23, 1, 1, 4);
        c.fault_edges = edges;
        run_fleet(&c)
    };
    assert!(out.rehomes > 0, "kill produced no re-homing");
}
