//! Broker kill-over through the full middleware stack.
//!
//! An application submits `SELECT wind FROM extInfra EVERY 5 sec` to a
//! real `ContextFactory`; the query rides `InfraCxtProvider`, whose
//! cellular reference is a [`FederatedCell`] over four brokers. A
//! [`FaultPlan`] kills the selected broker mid-run. The paper's §6
//! failover experiments bound infrastructure failover at 45 s — this
//! test asserts the delivery gap around the kill stays inside that SLO,
//! across 3 seeds and broker table shard counts {1, 4}.

use brokerd::cell::{CellConfig, FederatedCell};
use brokerd::{BrokerId, NodeConfig};
use contory::refs::{CellReference, References};
use contory::{Client, ContextFactory, CxtItem, CxtValue, FactoryConfig, QueryId};
use simkit::faults::FaultPlan;
use simkit::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The §6 infrastructure failover service-level objective.
const FAILOVER_SLO: SimDuration = SimDuration::from_secs(45);

const KILL_AT: SimTime = SimTime::from_secs(60);
const RUN_FOR: SimDuration = SimDuration::from_secs(180);

/// Client that records the *simulated arrival time* of every delivery.
struct TimestampingClient {
    sim: Sim,
    arrivals: Rc<RefCell<Vec<SimTime>>>,
}

impl Client for TimestampingClient {
    fn receive_cxt_item(&self, _query: QueryId, _item: CxtItem) {
        self.arrivals.borrow_mut().push(self.sim.now());
    }
    fn inform_error(&self, _message: &str) {}
    fn make_decision(&self, _message: &str) -> bool {
        true
    }
}

struct Outcome {
    arrivals: Vec<SimTime>,
    reselects: u64,
    selected: Option<BrokerId>,
}

fn run_scenario(seed: u64, table_shards: usize) -> Outcome {
    let sim = Sim::new();
    let cell = FederatedCell::new(
        &sim,
        CellConfig {
            node: NodeConfig {
                table_shards,
                ..NodeConfig::default()
            },
            ..CellConfig::default()
        },
    );
    // broker0 has the best link, so QoS selection pins it first — and
    // the fault plan kills exactly that broker mid-run.
    for b in 0..4u16 {
        cell.add_broker(BrokerId(b), 5_000 + u64::from(b) * 2_000);
    }
    let mut plan = FaultPlan::new(seed);
    plan.kill_at("broker:0", KILL_AT);
    cell.set_fault_plan(plan);

    // Infrastructure-side publisher: a buoy refreshes the retained
    // `wind` record every 5 s (60 s lifetime, attributed).
    {
        let publisher = cell.clone();
        let pub_sim = sim.clone();
        sim.schedule_repeating(SimDuration::from_secs(5), move || {
            let item = CxtItem::new("wind", CxtValue::number(8.5), pub_sim.now())
                .with_lifetime(SimDuration::from_secs(60))
                .with_source("buoy-1");
            publisher.store(&item, Box::new(|_| {}));
            true
        });
    }

    let refs = References {
        cell: Some(Rc::new(cell.clone())),
        ..References::none()
    };
    let factory = ContextFactory::new(&sim, refs, FactoryConfig::default());
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    let client = Rc::new(TimestampingClient {
        sim: sim.clone(),
        arrivals: arrivals.clone(),
    });
    factory
        .process_cxt_query_text("SELECT wind FROM extInfra DURATION 170 sec EVERY 5 sec", client)
        .expect("submit extInfra query");

    sim.run_for(RUN_FOR);
    let arrivals = arrivals.borrow().clone();
    Outcome {
        arrivals,
        reselects: cell.reselects(),
        selected: cell.selected(),
    }
}

#[test]
fn broker_kill_over_meets_the_45s_slo_across_seeds_and_shards() {
    for seed in [3u64, 5, 9] {
        for table_shards in [1usize, 4] {
            let out = run_scenario(seed, table_shards);
            let label = format!("seed={seed} table_shards={table_shards}");

            // The federation failed over away from the dead broker.
            assert!(out.reselects >= 1, "{label}: no reselection happened");
            assert_ne!(
                out.selected,
                Some(BrokerId(0)),
                "{label}: still pinned to the killed broker"
            );

            // Deliveries on both sides of the kill.
            let before: Vec<_> = out.arrivals.iter().filter(|t| **t < KILL_AT).collect();
            let after: Vec<_> = out.arrivals.iter().filter(|t| **t >= KILL_AT).collect();
            assert!(!before.is_empty(), "{label}: no deliveries before the kill");
            assert!(!after.is_empty(), "{label}: no deliveries after the kill");

            // The SLO: no delivery gap anywhere in the run — including
            // straddling the kill — exceeds 45 s.
            let max_gap = out
                .arrivals
                .windows(2)
                .map(|w| w[1].since(w[0]))
                .max()
                .expect("at least two deliveries");
            assert!(
                max_gap <= FAILOVER_SLO,
                "{label}: delivery gap {}s exceeds the 45s SLO",
                max_gap.as_secs()
            );
        }
    }
}

#[test]
fn same_seed_same_shard_count_is_deterministic() {
    let a = run_scenario(5, 1);
    let b = run_scenario(5, 1);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.reselects, b.reselects);
    // Table shard count changes layout, never behavior.
    let c = run_scenario(5, 4);
    assert_eq!(a.arrivals, c.arrivals);
    assert_eq!(a.reselects, c.reselects);
}
