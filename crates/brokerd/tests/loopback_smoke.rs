//! End-to-end smoke test: the same `BrokerNode` core that the sharded
//! simulation gates runs here as a *real* multi-threaded TCP service —
//! two federated brokers on loopback sockets, real clients, the line
//! protocol from `brokerd::wire`.
//!
//! The scenario crosses the federation: a subscriber sits on broker A,
//! the publisher talks to broker B, and the packet must hop B → A
//! before the `EVT` frame lands on the subscriber's socket.

use brokerd::net::{BrokerServer, FETCH_SUB};
use brokerd::{BrokerId, ContextPacket, NodeConfig, Request, Response, SubMode};
use simkit::{SimDuration, SimTime};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, stream }
    }

    fn send(&mut self, req: &Request) {
        let line = req.encode().expect("encode");
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        Response::decode(line.trim_end()).expect("decode")
    }
}

#[test]
fn federated_pub_sub_across_two_loopback_brokers() {
    let server_a = BrokerServer::spawn(BrokerId(0), NodeConfig::default()).expect("spawn a");
    let server_b = BrokerServer::spawn(BrokerId(1), NodeConfig::default()).expect("spawn b");
    BrokerServer::federate(&server_a, &server_b, 5_000);

    // Subscriber on A, event mode.
    let mut subscriber = Client::connect(server_a.addr());
    subscriber.send(&Request::Sub {
        type_name: "wind".into(),
        mode: SubMode::Event,
        expires_at: SimTime::from_secs(3_600),
        now: SimTime::from_secs(1),
    });
    assert!(matches!(subscriber.recv(), Response::Ok(_)));

    // Publisher on B. The packet must federate B -> A to reach the
    // subscriber.
    let mut publisher = Client::connect(server_b.addr());
    publisher.send(&Request::Pub(ContextPacket::new(
        "wind",
        12_300,
        SimTime::from_secs(2),
        SimDuration::from_secs(120),
        "buoy-7",
    )));
    assert_eq!(publisher.recv(), Response::Ok("pub".into()));

    let evt = subscriber.recv();
    let Response::Evt { packet, .. } = evt else {
        panic!("expected a delivery, got {evt:?}");
    };
    assert_eq!(packet.value_milli, 12_300);
    assert_eq!(packet.source, "buoy-7");
    // Provenance: the packet records its federation hop through B.
    assert_eq!(packet.hops, vec![BrokerId(1)]);

    // The forwarded packet is also *retained* on A: an on-demand FETCH
    // against A serves it without touching B.
    let mut on_demand = Client::connect(server_a.addr());
    on_demand.send(&Request::Fetch {
        type_name: "wind".into(),
        now: SimTime::from_secs(3),
    });
    match on_demand.recv() {
        Response::Evt { sub, packet } => {
            assert_eq!(sub, FETCH_SUB);
            assert_eq!(packet.value_milli, 12_300);
        }
        other => panic!("expected retained context, got {other:?}"),
    }

    // Counter cross-check: the same core counted one forward on B and
    // (at least) one local delivery on A.
    assert_eq!(server_b.stats().forwarded, 1);
    assert!(server_a.stats().delivered >= 1);
    assert_eq!(server_a.stats().admission.admitted, 1);
}

#[test]
fn admission_hygiene_is_enforced_over_the_wire() {
    let server = BrokerServer::spawn(BrokerId(0), NodeConfig::default()).expect("spawn");
    let mut client = Client::connect(server.addr());

    // Expired on arrival: published at t=1 with 1 s lifetime, heard at
    // t=100 (the later PING has already advanced the logical clock).
    client.send(&Request::Ping(SimTime::from_secs(100)));
    assert_eq!(client.recv(), Response::Pong(SimTime::from_secs(100)));
    client.send(&Request::Pub(ContextPacket::new(
        "t",
        1,
        SimTime::from_secs(1),
        SimDuration::from_secs(1),
        "src",
    )));
    match client.recv() {
        Response::Err { code, .. } => assert_eq!(code, "expired"),
        other => panic!("expected refusal, got {other:?}"),
    }

    // Unknown context type on FETCH maps to not_found.
    client.send(&Request::Fetch {
        type_name: "nosuch".into(),
        now: SimTime::from_secs(101),
    });
    match client.recv() {
        Response::Err { code, .. } => assert_eq!(code, "not_found"),
        other => panic!("expected not_found, got {other:?}"),
    }
}
