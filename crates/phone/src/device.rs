//! The assembled phone.
//!
//! [`Phone`] ties together profile, power model, battery, optional
//! multimeter and memory budget, and implements the protection-circuit
//! brown-out the paper ran into: with the meter in series, sustained high
//! current sags the supply below the battery's protection threshold and
//! the phone switches itself off within ~30 s.

use crate::battery::Battery;
use crate::memory::MemoryBudget;
use crate::meter::{Multimeter, MultimeterConfig};
use crate::power::{baseline, Consumer, PowerModel};
use crate::profiles::PhoneModel;
use crate::units::Milliwatts;
use simkit::{DetRng, Sim, SimDuration};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// How long a brown-out condition must persist before the protection
/// circuit switches the phone off. The paper observed "less than 30 sec".
const BROWNOUT_GRACE: SimDuration = SimDuration::from_secs(25);

/// Configuration for building a [`Phone`].
#[derive(Clone, Debug)]
pub struct PhoneConfig {
    /// Which hardware profile to instantiate.
    pub model: PhoneModel,
    /// Seed for this device's random stream (meter noise etc.).
    pub seed: u64,
    /// Wire a sampling multimeter in series with the battery.
    pub with_meter: bool,
    /// Start with the display on.
    pub display_on: bool,
    /// Start with the back-light on (implies display on).
    pub backlight_on: bool,
}

impl PhoneConfig {
    /// The paper's default measurement posture: GSM radio off, back-light
    /// off, display off, meter in circuit.
    pub fn measurement(model: PhoneModel) -> Self {
        PhoneConfig {
            model,
            seed: 0x0c0ffee,
            with_meter: true,
            display_on: false,
            backlight_on: false,
        }
    }
}

impl Default for PhoneConfig {
    fn default() -> Self {
        PhoneConfig {
            model: PhoneModel::Nokia6630,
            seed: 0x0c0ffee,
            with_meter: false,
            display_on: false,
            backlight_on: false,
        }
    }
}

struct Inner {
    on: bool,
    battery: Battery,
    brownout_pending: bool,
    off_listeners: Vec<Rc<dyn Fn()>>,
}

/// Shared handle to a simulated smart phone.
///
/// ```
/// use phone::{Phone, PhoneConfig, PhoneModel};
/// use simkit::Sim;
///
/// let sim = Sim::new();
/// let phone = Phone::new(&sim, PhoneConfig::measurement(PhoneModel::Nokia6630));
/// assert!(phone.is_on());
/// // idle floor from the paper
/// assert!((phone.power().total().0 - 5.75).abs() < 1e-9);
/// ```
#[derive(Clone)]
pub struct Phone {
    sim: Sim,
    model: PhoneModel,
    power: PowerModel,
    memory: MemoryBudget,
    meter: Option<Multimeter>,
    inner: Rc<RefCell<Inner>>,
}

impl Phone {
    /// Builds a phone, registers its baseline consumers, attaches the
    /// meter if requested and arms the brown-out watchdog.
    pub fn new(sim: &Sim, cfg: PhoneConfig) -> Self {
        let mut rng = DetRng::new(cfg.seed);
        let power = PowerModel::new(sim);
        power.set(Consumer::Baseline, baseline::IDLE);
        let spec = cfg.model.spec();
        let meter = if cfg.with_meter {
            Some(Multimeter::new(
                sim,
                MultimeterConfig::default(),
                rng.fork(1),
            ))
        } else {
            None
        };
        let phone = Phone {
            sim: sim.clone(),
            model: cfg.model,
            power: power.clone(),
            memory: MemoryBudget::new(spec.ram_kb as u64 * 1024),
            meter,
            inner: Rc::new(RefCell::new(Inner {
                on: true,
                battery: Battery::nokia_pack(),
                brownout_pending: false,
                off_listeners: Vec::new(),
            })),
        };
        phone.set_display(cfg.display_on || cfg.backlight_on);
        phone.set_backlight(cfg.backlight_on);
        if let Some(m) = &phone.meter {
            let p = power.clone();
            let inner = phone.inner.clone();
            m.start(move || {
                if inner.borrow().on {
                    let v = inner.borrow().battery.open_circuit();
                    p.total().current_at(v)
                } else {
                    crate::units::Milliamps(0.0)
                }
            });
        }
        // Brown-out watchdog: every power change re-evaluates the supply.
        {
            let weak = Rc::downgrade(&phone.inner);
            let sim2 = sim.clone();
            let shunt = phone.meter.as_ref().map(|m| m.shunt_ohms()).unwrap_or(0.0);
            let power2 = power.clone();
            power.on_change(move |total| {
                let Some(inner_rc) = weak.upgrade() else {
                    return;
                };
                let tripping = {
                    let inner = inner_rc.borrow();
                    if !inner.on {
                        return;
                    }
                    let v = inner.battery.open_circuit();
                    inner
                        .battery
                        .protection_trips(total.current_at(v), shunt)
                };
                if !tripping {
                    inner_rc.borrow_mut().brownout_pending = false;
                    return;
                }
                if inner_rc.borrow().brownout_pending {
                    return;
                }
                inner_rc.borrow_mut().brownout_pending = true;
                let weak2 = Rc::downgrade(&inner_rc);
                let power3 = power2.clone();
                sim2.schedule_in(BROWNOUT_GRACE, move || {
                    let Some(inner_rc) = weak2.upgrade() else {
                        return;
                    };
                    let still = {
                        let inner = inner_rc.borrow();
                        inner.on && inner.brownout_pending && {
                            let v = inner.battery.open_circuit();
                            inner
                                .battery
                                .protection_trips(power3.total().current_at(v), shunt)
                        }
                    };
                    if still {
                        Phone::power_off_inner(&inner_rc, &power3);
                    }
                });
            });
        }
        phone
    }

    fn power_off_inner(inner_rc: &Rc<RefCell<Inner>>, power: &PowerModel) {
        let listeners = {
            let mut inner = inner_rc.borrow_mut();
            if !inner.on {
                return;
            }
            inner.on = false;
            inner.off_listeners.clone()
        };
        for c in power.breakdown() {
            power.clear(c.0);
        }
        for l in listeners {
            l();
        }
    }

    /// The hardware profile.
    pub fn model(&self) -> PhoneModel {
        self.model
    }

    /// The power accounting handle (radios register their draws here).
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The RAM budget handle.
    pub fn memory(&self) -> &MemoryBudget {
        &self.memory
    }

    /// The series multimeter, if one was wired in.
    pub fn meter(&self) -> Option<&Multimeter> {
        self.meter.as_ref()
    }

    /// The simulator this phone lives in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Whether the phone is powered on.
    pub fn is_on(&self) -> bool {
        self.inner.borrow().on
    }

    /// Immediately powers the phone off (also used by the protection
    /// circuit). All consumers drop to zero and off-listeners fire.
    pub fn power_off(&self) {
        Phone::power_off_inner(&self.inner, &self.power);
    }

    /// Powers the phone back on with the baseline draw (display state is
    /// reset to off, as after a reboot).
    pub fn power_on(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.on {
                return;
            }
            inner.on = true;
            inner.brownout_pending = false;
        }
        self.power.set(Consumer::Baseline, baseline::IDLE);
    }

    /// Registers a callback fired when the phone switches off.
    pub fn on_power_off(&self, f: impl Fn() + 'static) {
        self.inner.borrow_mut().off_listeners.push(Rc::new(f));
    }

    /// Turns the display panel on or off.
    pub fn set_display(&self, on: bool) {
        self.power.set(
            Consumer::Display,
            if on { baseline::DISPLAY } else { Milliwatts::ZERO },
        );
    }

    /// Turns the back-light on or off (the paper's WiFi rows include the
    /// back-light cost because the communicator kept it on).
    pub fn set_backlight(&self, on: bool) {
        if on {
            self.set_display(true);
        }
        self.power.set(
            Consumer::Backlight,
            if on { baseline::BACKLIGHT } else { Milliwatts::ZERO },
        );
    }

    /// Marks the Contory middleware as running (adds its 1.64 mW of timer
    /// and bookkeeping overhead measured in §6.1).
    pub fn set_middleware_running(&self, on: bool) {
        self.power.set(
            Consumer::Middleware,
            if on { baseline::CONTORY } else { Milliwatts::ZERO },
        );
    }
}

impl fmt::Debug for Phone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Phone")
            .field("model", &self.model)
            .field("on", &self.is_on())
            .field("total_mw", &self.power.total().0)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn baseline_matches_paper_modes() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::default());
        assert!((p.power().total().0 - 5.75).abs() < 1e-9);
        p.set_display(true);
        assert!((p.power().total().0 - 14.35).abs() < 1e-9);
        p.set_backlight(true);
        assert!((p.power().total().0 - 76.20).abs() < 1e-9);
        p.set_backlight(false);
        p.set_display(false);
        assert!((p.power().total().0 - 5.75).abs() < 1e-9);
    }

    #[test]
    fn middleware_overhead() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::default());
        p.power().set(Consumer::BtRadio, baseline::BT_SCAN);
        p.set_middleware_running(true);
        assert!((p.power().total().0 - 10.11).abs() < 1e-9);
    }

    #[test]
    fn meter_samples_phone_current() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::measurement(PhoneModel::Nokia6630));
        sim.run_for(SimDuration::from_secs(5));
        assert!(p.meter().unwrap().sample_count() >= 9);
    }

    #[test]
    fn wifi_inrush_with_meter_causes_shutdown_within_30s() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::measurement(PhoneModel::Nokia9500));
        // WiFi startup: ~2.5 W in-rush (> 600 mA) through the 1.8 ohm shunt.
        p.power().set(Consumer::WifiRadio, Milliwatts(2500.0));
        sim.run_for(SimDuration::from_secs(30));
        assert!(!p.is_on(), "phone should have browned out");
        assert_eq!(p.power().total(), Milliwatts::ZERO);
    }

    #[test]
    fn wifi_inrush_without_meter_survives() {
        let sim = Sim::new();
        let mut cfg = PhoneConfig::default();
        cfg.model = PhoneModel::Nokia9500;
        let p = Phone::new(&sim, cfg);
        p.power().set(Consumer::WifiRadio, Milliwatts(2500.0));
        sim.run_for(SimDuration::from_secs(60));
        assert!(p.is_on());
    }

    #[test]
    fn brownout_clears_if_load_drops_in_time() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::measurement(PhoneModel::Nokia9500));
        p.power().set(Consumer::WifiRadio, Milliwatts(2500.0));
        sim.run_for(SimDuration::from_secs(10));
        p.power().set(Consumer::WifiRadio, Milliwatts(100.0));
        sim.run_for(SimDuration::from_secs(60));
        assert!(p.is_on(), "load dropped before the grace period expired");
    }

    #[test]
    fn off_listener_fires_and_power_cycle_restores_baseline() {
        use std::cell::Cell;
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::default());
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        p.on_power_off(move || f.set(true));
        p.power_off();
        assert!(fired.get());
        assert!(!p.is_on());
        p.power_on();
        assert!(p.is_on());
        assert!((p.power().total().0 - 5.75).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting_via_power_model() {
        let sim = Sim::new();
        let p = Phone::new(&sim, PhoneConfig::default());
        sim.run_for(SimDuration::from_secs(100));
        let e = p.power().energy_between(SimTime::ZERO, sim.now());
        assert!((e.as_joules() - 0.575).abs() < 1e-9);
    }
}
