//! Application RAM accounting.
//!
//! The DYNAMOS field trials saw phones switch off from "high memory
//! consumption" when context-event traffic queued up; Contory's
//! `reduceMemory` control policy exists to prevent that. [`MemoryBudget`]
//! provides the accounting that the `ResourcesMonitor` reads.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Error returned when an allocation would exceed the budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes with {} available",
            self.requested, self.available
        )
    }
}

impl Error for OutOfMemory {}

/// Shared RAM budget for one device.
///
/// ```
/// use phone::MemoryBudget;
/// let mem = MemoryBudget::new(1024);
/// mem.alloc(512).unwrap();
/// assert_eq!(mem.used(), 512);
/// assert!(mem.alloc(1024).is_err());
/// mem.free(512);
/// assert_eq!(mem.used(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    total: u64,
    used: Rc<Cell<u64>>,
}

impl MemoryBudget {
    /// Creates a budget of `total` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(total: u64) -> Self {
        assert!(total > 0, "memory budget must be non-zero");
        MemoryBudget {
            total,
            used: Rc::new(Cell::new(0)),
        }
    }

    /// Total budget in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.total - self.used.get()
    }

    /// Fraction of the budget in use, `0.0..=1.0`.
    pub fn utilization(&self) -> f64 {
        self.used.get() as f64 / self.total as f64
    }

    /// Reserves `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the budget would be exceeded; the budget
    /// is left unchanged.
    pub fn alloc(&self, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.available() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used.set(self.used.get() + bytes);
        Ok(())
    }

    /// Releases `bytes` (saturating at zero, so over-freeing is forgiving
    /// like a real allocator's accounting would not be — debug builds
    /// assert instead).
    pub fn free(&self, bytes: u64) {
        debug_assert!(bytes <= self.used.get(), "freeing more than allocated");
        self.used.set(self.used.get().saturating_sub(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let m = MemoryBudget::new(100);
        m.alloc(60).unwrap();
        assert_eq!(m.available(), 40);
        assert!((m.utilization() - 0.6).abs() < 1e-12);
        m.free(60);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn oom_reports_sizes() {
        let m = MemoryBudget::new(100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.available, 10);
        assert!(err.to_string().contains("out of memory"));
        // failed alloc does not change accounting
        assert_eq!(m.used(), 90);
    }

    #[test]
    fn clones_share_accounting() {
        let m = MemoryBudget::new(100);
        let m2 = m.clone();
        m.alloc(30).unwrap();
        assert_eq!(m2.used(), 30);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_budget_panics() {
        let _ = MemoryBudget::new(0);
    }
}
