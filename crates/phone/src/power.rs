//! Power-consumer registry and draw trace.
//!
//! Every hardware block that draws current registers under a [`Consumer`]
//! key and updates its draw as its state changes; [`PowerModel`] sums the
//! draws and appends each change to a step-function [`TimeSeries`], from
//! which energy over any window is an exact integral.
//!
//! The idle-mode constants in [`baseline`] are the paper's own
//! measurements (§6.1, GSM radio off).

use crate::units::Milliwatts;
use simkit::trace::TimeSeries;
use simkit::{Sim, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Baseline draw constants measured in the paper (§6.1), GSM radio off.
pub mod baseline {
    use crate::units::Milliwatts;

    /// Everything interesting off: no BT, no back-light, no display.
    pub const IDLE: Milliwatts = Milliwatts(5.75);
    /// Display on (back-light off) adds 8.60 mW over idle (14.35 total).
    pub const DISPLAY: Milliwatts = Milliwatts(14.35 - 5.75);
    /// Back-light adds 61.85 mW over display-on (76.20 total).
    pub const BACKLIGHT: Milliwatts = Milliwatts(76.20 - 14.35);
    /// BT in page and inquiry scan state adds 2.72 mW (8.47 total).
    pub const BT_SCAN: Milliwatts = Milliwatts(8.47 - 5.75);
    /// The Contory middleware itself adds 1.64 mW (10.11 total).
    pub const CONTORY: Milliwatts = Milliwatts(10.11 - 8.47);
}

/// A hardware or software block that draws power.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Consumer {
    /// Always-on platform floor (Symbian kernel, RAM refresh…).
    Baseline,
    /// LCD panel.
    Display,
    /// LCD back-light.
    Backlight,
    /// Bluetooth radio.
    BtRadio,
    /// 802.11b WLAN radio.
    WifiRadio,
    /// 2G/3G cellular radio.
    CellRadio,
    /// CPU load above idle.
    Cpu,
    /// Middleware overhead (timers, bookkeeping).
    Middleware,
    /// Anything else (e.g. an attached peripheral), labelled.
    Other(&'static str),
}

impl fmt::Display for Consumer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consumer::Other(name) => f.write_str(name),
            other => write!(f, "{other:?}"),
        }
    }
}

struct Inner {
    sim: Sim,
    draws: BTreeMap<Consumer, f64>,
    trace: TimeSeries,
    listeners: Vec<Rc<dyn Fn(Milliwatts)>>,
}

impl Inner {
    fn total(&self) -> f64 {
        self.draws.values().sum()
    }
}

/// Shared handle to a device's power accounting.
///
/// ```
/// use phone::{Consumer, Milliwatts, PowerModel};
/// use simkit::{Sim, SimDuration, SimTime};
///
/// let sim = Sim::new();
/// let power = PowerModel::new(&sim);
/// power.set(Consumer::Baseline, Milliwatts(5.75));
/// sim.run_for(SimDuration::from_secs(10));
/// power.set(Consumer::BtRadio, Milliwatts(2.72));
/// sim.run_for(SimDuration::from_secs(10));
/// let e = power.energy_between(SimTime::ZERO, sim.now());
/// assert!((e.as_joules() - (0.05750 + 0.08470)).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct PowerModel {
    inner: Rc<RefCell<Inner>>,
}

impl PowerModel {
    /// Creates a power model with no consumers registered.
    pub fn new(sim: &Sim) -> Self {
        let mut trace = TimeSeries::new("power_mw");
        trace.record(sim.now(), 0.0);
        PowerModel {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                draws: BTreeMap::new(),
                trace,
                listeners: Vec::new(),
            })),
        }
    }

    /// Sets (or registers) `consumer`'s draw and records the new total.
    ///
    /// # Panics
    ///
    /// Panics if the draw is negative or not finite.
    pub fn set(&self, consumer: Consumer, draw: Milliwatts) {
        assert!(
            draw.0.is_finite() && draw.0 >= 0.0,
            "power draw must be finite and non-negative, got {draw}"
        );
        let total = {
            let mut inner = self.inner.borrow_mut();
            inner.draws.insert(consumer, draw.0);
            let now = inner.sim.now();
            let total = inner.total();
            inner.trace.record(now, total);
            total
        };
        self.notify(Milliwatts(total));
    }

    /// Removes a consumer entirely (equivalent to a zero draw, but also
    /// drops it from [`PowerModel::breakdown`]).
    pub fn clear(&self, consumer: Consumer) {
        let total = {
            let mut inner = self.inner.borrow_mut();
            inner.draws.remove(&consumer);
            let now = inner.sim.now();
            let total = inner.total();
            inner.trace.record(now, total);
            total
        };
        self.notify(Milliwatts(total));
    }

    fn notify(&self, total: Milliwatts) {
        // Clone the handles out so listeners can read (or even mutate) the
        // model without hitting a RefCell re-borrow.
        let listeners: Vec<Rc<dyn Fn(Milliwatts)>> = self.inner.borrow().listeners.clone();
        for f in listeners {
            f(total);
        }
    }

    /// Current draw of a single consumer, if registered.
    pub fn get(&self, consumer: Consumer) -> Option<Milliwatts> {
        self.inner.borrow().draws.get(&consumer).map(|&v| Milliwatts(v))
    }

    /// Current total draw.
    pub fn total(&self) -> Milliwatts {
        Milliwatts(self.inner.borrow().total())
    }

    /// Per-consumer breakdown at this instant.
    pub fn breakdown(&self) -> Vec<(Consumer, Milliwatts)> {
        self.inner
            .borrow()
            .draws
            .iter()
            .map(|(&c, &v)| (c, Milliwatts(v)))
            .collect()
    }

    /// Exact energy drawn over `[from, to]` (integral of the trace).
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> crate::units::Millijoules {
        crate::units::Millijoules(self.inner.borrow().trace.integrate(from, to))
    }

    /// Time-weighted average draw over `[from, to]`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> Milliwatts {
        Milliwatts(self.inner.borrow().trace.mean_between(from, to))
    }

    /// A copy of the full power trace (for figures).
    pub fn trace_snapshot(&self) -> TimeSeries {
        self.inner.borrow().trace.clone()
    }

    /// Registers a listener invoked after every total-draw change.
    pub fn on_change(&self, f: impl Fn(Milliwatts) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }
}

impl fmt::Debug for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PowerModel")
            .field("total_mw", &self.total().0)
            .field("consumers", &self.inner.borrow().draws.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn totals_sum_consumers() {
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        p.set(Consumer::Baseline, baseline::IDLE);
        p.set(Consumer::BtRadio, baseline::BT_SCAN);
        assert!((p.total().0 - 8.47).abs() < 1e-9);
        p.set(Consumer::Middleware, baseline::CONTORY);
        assert!((p.total().0 - 10.11).abs() < 1e-9);
    }

    #[test]
    fn paper_idle_modes_reproduced() {
        // §6.1: 76.20 -> 14.35 -> 5.75 mW as back-light then display go off.
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        p.set(Consumer::Baseline, baseline::IDLE);
        p.set(Consumer::Display, baseline::DISPLAY);
        p.set(Consumer::Backlight, baseline::BACKLIGHT);
        assert!((p.total().0 - 76.20).abs() < 1e-9);
        p.set(Consumer::Backlight, Milliwatts::ZERO);
        assert!((p.total().0 - 14.35).abs() < 1e-9);
        p.set(Consumer::Display, Milliwatts::ZERO);
        assert!((p.total().0 - 5.75).abs() < 1e-9);
    }

    #[test]
    fn energy_integrates_over_changes() {
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        p.set(Consumer::Cpu, Milliwatts(100.0));
        sim.run_for(SimDuration::from_secs(1));
        p.set(Consumer::Cpu, Milliwatts(300.0));
        sim.run_for(SimDuration::from_secs(1));
        p.set(Consumer::Cpu, Milliwatts::ZERO);
        let e = p.energy_between(SimTime::ZERO, sim.now());
        assert!((e.0 - 400.0).abs() < 1e-6, "got {e}");
        let m = p.mean_between(SimTime::ZERO, sim.now());
        assert!((m.0 - 200.0).abs() < 1e-6);
    }

    #[test]
    fn clear_removes_consumer() {
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        p.set(Consumer::WifiRadio, Milliwatts(1190.0));
        assert_eq!(p.breakdown().len(), 1);
        p.clear(Consumer::WifiRadio);
        assert_eq!(p.breakdown().len(), 0);
        assert_eq!(p.total(), Milliwatts::ZERO);
        assert_eq!(p.get(Consumer::WifiRadio), None);
    }

    #[test]
    fn listener_sees_new_total() {
        use std::cell::Cell;
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        let seen = Rc::new(Cell::new(0.0));
        let s = seen.clone();
        p.on_change(move |total| s.set(total.0));
        p.set(Consumer::Cpu, Milliwatts(42.0));
        assert_eq!(seen.get(), 42.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_draw_panics() {
        let sim = Sim::new();
        let p = PowerModel::new(&sim);
        p.set(Consumer::Cpu, Milliwatts(-1.0));
    }
}
