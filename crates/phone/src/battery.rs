//! Battery and protection-circuit model.
//!
//! The paper's methodology section measured a stable 4.0965 V pack (drift
//! < 2 % in the first hour under high load) and discovered that new
//! low-voltage phones *switch off* when the measurement shunt's burden
//! resistance drops the supply below the protection threshold during WiFi
//! in-rush. [`Battery`] models exactly that: terminal voltage as a function
//! of load current and any series resistance inserted by a meter.

use crate::units::{Milliamps, Volts};

/// A single Lithium-Ion cell with internal resistance and a low-voltage
/// protection circuit.
///
/// ```
/// use phone::{Battery, Milliamps};
/// let b = Battery::nokia_pack();
/// // Light load: comfortably above the protection threshold.
/// assert!(!b.protection_trips(Milliamps(50.0), 0.0));
/// // WiFi in-rush through a 1.8 ohm meter shunt: trips.
/// assert!(b.protection_trips(Milliamps(600.0), 1.8));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Battery {
    open_circuit: Volts,
    internal_ohms: f64,
    protect_below: Volts,
    capacity_mah: f64,
    drawn_mah: f64,
}

impl Battery {
    /// The pack used across the paper's experiments: 4.0965 V full charge,
    /// protection circuit around 3.40 V, ~900 mAh (BL-5C class).
    pub fn nokia_pack() -> Self {
        Battery::new(Volts(4.0965), 0.15, Volts(3.40), 900.0)
    }

    /// Creates a battery.
    ///
    /// # Panics
    ///
    /// Panics if voltages or capacity are non-positive, or if the
    /// protection threshold is not below the open-circuit voltage.
    pub fn new(
        open_circuit: Volts,
        internal_ohms: f64,
        protect_below: Volts,
        capacity_mah: f64,
    ) -> Self {
        assert!(open_circuit.0 > 0.0, "open-circuit voltage must be positive");
        assert!(internal_ohms >= 0.0, "internal resistance must be non-negative");
        assert!(
            protect_below.0 > 0.0 && protect_below.0 < open_circuit.0,
            "protection threshold must be below the open-circuit voltage"
        );
        assert!(capacity_mah > 0.0, "capacity must be positive");
        Battery {
            open_circuit,
            internal_ohms,
            protect_below,
            capacity_mah,
            drawn_mah: 0.0,
        }
    }

    /// Nominal (open-circuit) voltage.
    pub fn open_circuit(&self) -> Volts {
        self.open_circuit
    }

    /// Protection-circuit threshold.
    pub fn protect_below(&self) -> Volts {
        self.protect_below
    }

    /// Terminal voltage when `load` flows through the internal resistance
    /// plus `series_ohms` of external (meter/wire) resistance.
    pub fn voltage_under_load(&self, load: Milliamps, series_ohms: f64) -> Volts {
        let sag = load.drop_across(self.internal_ohms + series_ohms);
        Volts(self.open_circuit.0 - sag.0)
    }

    /// Whether the protection circuit would trip at this load.
    pub fn protection_trips(&self, load: Milliamps, series_ohms: f64) -> bool {
        self.voltage_under_load(load, series_ohms).0 < self.protect_below.0
    }

    /// Records charge drawn (for battery-life estimates in the sailing
    /// scenario). `hours` of `load` at the terminal.
    pub fn drain(&mut self, load: Milliamps, hours: f64) {
        self.drawn_mah = (self.drawn_mah + load.0 * hours).min(self.capacity_mah);
    }

    /// Remaining state of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        1.0 - self.drawn_mah / self.capacity_mah
    }

    /// True once the pack is fully drained.
    pub fn is_empty(&self) -> bool {
        self.state_of_charge() <= 0.0
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::nokia_pack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_sags_with_load_and_series_resistance() {
        let b = Battery::nokia_pack();
        let v0 = b.voltage_under_load(Milliamps(0.0), 0.0);
        assert_eq!(v0, Volts(4.0965));
        let v = b.voltage_under_load(Milliamps(300.0), 1.8);
        // 300 mA * 1.95 ohm = 0.585 V of sag
        assert!((v.0 - (4.0965 - 0.585)).abs() < 1e-9);
    }

    #[test]
    fn wifi_inrush_with_meter_trips_protection() {
        // The paper: communicator switched off < 30 s after WiFi came up
        // whenever the multimeter was in circuit.
        let b = Battery::nokia_pack();
        assert!(b.protection_trips(Milliamps(600.0), 1.8));
        // Without the meter the same in-rush survives.
        assert!(!b.protection_trips(Milliamps(600.0), 0.0));
    }

    #[test]
    fn bt_load_never_trips() {
        let b = Battery::nokia_pack();
        // BT inquiry ~ 100 mA worst case, even with the meter in series.
        assert!(!b.protection_trips(Milliamps(100.0), 1.8));
    }

    #[test]
    fn drain_and_soc() {
        let mut b = Battery::nokia_pack();
        assert_eq!(b.state_of_charge(), 1.0);
        b.drain(Milliamps(450.0), 1.0);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-9);
        b.drain(Milliamps(450.0), 2.0);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "below the open-circuit")]
    fn bad_threshold_panics() {
        let _ = Battery::new(Volts(4.0), 0.1, Volts(4.5), 900.0);
    }
}
