//! Electrical unit newtypes.
//!
//! Power, energy, current and voltage each get their own type so a bench
//! can never accidentally print joules where the paper's table wants
//! milliwatts (guide rule C-NEWTYPE).

use simkit::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Electrical power in milliwatts.
///
/// ```
/// use phone::Milliwatts;
/// use simkit::SimDuration;
/// let e = Milliwatts(1000.0) * SimDuration::from_secs(2);
/// assert_eq!(e.as_joules(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Milliwatts(pub f64);

/// Energy in millijoules.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Millijoules(pub f64);

/// Electrical current in milliamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Milliamps(pub f64);

/// Electrical potential in volts.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Volts(pub f64);

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// The current this power implies at the given supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `v` is zero or negative.
    pub fn current_at(self, v: Volts) -> Milliamps {
        assert!(v.0 > 0.0, "supply voltage must be positive");
        Milliamps(self.0 / v.0)
    }
}

impl Millijoules {
    /// Zero energy.
    pub const ZERO: Millijoules = Millijoules(0.0);

    /// Creates from joules.
    pub fn from_joules(j: f64) -> Self {
        Millijoules(j * 1e3)
    }

    /// Value in joules — the unit of the paper's Table 2.
    pub fn as_joules(self) -> f64 {
        self.0 / 1e3
    }
}

impl Milliamps {
    /// The power this current implies at the given supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative.
    pub fn power_at(self, v: Volts) -> Milliwatts {
        assert!(v.0 >= 0.0, "supply voltage must be non-negative");
        Milliwatts(self.0 * v.0)
    }

    /// The voltage dropped across `ohms` by this current (Ohm's law).
    pub fn drop_across(self, ohms: f64) -> Volts {
        Volts(self.0 / 1e3 * ohms)
    }
}

impl Mul<SimDuration> for Milliwatts {
    type Output = Millijoules;
    fn mul(self, d: SimDuration) -> Millijoules {
        Millijoules(self.0 * d.as_secs_f64())
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl Sub for Milliwatts {
    type Output = Milliwatts;
    fn sub(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 - rhs.0)
    }
}

impl Sum for Milliwatts {
    fn sum<I: Iterator<Item = Milliwatts>>(iter: I) -> Self {
        iter.fold(Milliwatts::ZERO, Add::add)
    }
}

impl Add for Millijoules {
    type Output = Millijoules;
    fn add(self, rhs: Millijoules) -> Millijoules {
        Millijoules(self.0 + rhs.0)
    }
}

impl AddAssign for Millijoules {
    fn add_assign(&mut self, rhs: Millijoules) {
        self.0 += rhs.0;
    }
}

impl Sub for Millijoules {
    type Output = Millijoules;
    fn sub(self, rhs: Millijoules) -> Millijoules {
        Millijoules(self.0 - rhs.0)
    }
}

impl Div<u64> for Millijoules {
    type Output = Millijoules;
    fn div(self, n: u64) -> Millijoules {
        Millijoules(self.0 / n as f64)
    }
}

impl Sum for Millijoules {
    fn sum<I: Iterator<Item = Millijoules>>(iter: I) -> Self {
        iter.fold(Millijoules::ZERO, Add::add)
    }
}

impl Sub for Volts {
    type Output = Volts;
    fn sub(self, rhs: Volts) -> Volts {
        Volts(self.0 - rhs.0)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mW", self.0)
    }
}

impl fmt::Display for Millijoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.as_joules())
    }
}

impl fmt::Display for Milliamps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mA", self.0)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Milliwatts(500.0) * SimDuration::from_secs(4);
        assert_eq!(e, Millijoules(2000.0));
        assert_eq!(e.as_joules(), 2.0);
    }

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts(4.0965);
        let p = Milliwatts(1190.0); // WiFi connected, per the paper
        let i = p.current_at(v);
        assert!((i.0 - 290.5).abs() < 1.0, "current {i}");
        let back = i.power_at(v);
        assert!((back.0 - 1190.0).abs() < 1e-6);
    }

    #[test]
    fn shunt_drop_matches_fluke_spec() {
        // Fluke 189 burden: 1.8 mV/mA -> 1.8 ohm
        let drop = Milliamps(300.0).drop_across(1.8);
        assert!((drop.0 - 0.54).abs() < 1e-9, "drop {drop}");
    }

    #[test]
    fn sums() {
        let p: Milliwatts = [Milliwatts(1.0), Milliwatts(2.5)].into_iter().sum();
        assert_eq!(p.0, 3.5);
        let e: Millijoules = [Millijoules(1.0), Millijoules(2.0)].into_iter().sum();
        assert_eq!(e.0, 3.0);
    }

    #[test]
    fn displays() {
        assert_eq!(Milliwatts(76.2).to_string(), "76.20 mW");
        assert_eq!(Millijoules(14076.0).to_string(), "14.076 J");
        assert_eq!(Volts(4.0965).to_string(), "4.0965 V");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn current_at_zero_volts_panics() {
        let _ = Milliwatts(1.0).current_at(Volts(0.0));
    }
}
