//! # contory-phone
//!
//! Smart-phone device model for the Contory reproduction.
//!
//! The paper's evaluation ran on Nokia 6630 / 7610 phones and Nokia 9500
//! communicators with a Fluke 189 multimeter wired in series with the
//! battery (paper Fig. 3). This crate reproduces that measurement rig in
//! simulation:
//!
//! - [`PhoneModel`]: per-device profiles (CPU, RAM, radios).
//! - [`PowerModel`]: a registry of named power consumers whose summed draw
//!   is recorded as a step-function trace. The baseline numbers come from
//!   the paper §6.1: display+backlight 76.20 mW, backlight off 14.35 mW,
//!   display off 5.75 mW, + BT page/inquiry scan → 8.47 mW, + Contory
//!   running → 10.11 mW.
//! - [`Battery`]: 4.0965 V pack with internal resistance and a protection
//!   circuit — reproducing the paper's observation that the communicator
//!   switched off under WiFi in-rush current because of the meter's burden
//!   resistance (hence the `>` lower bounds in Table 2).
//! - [`Multimeter`]: samples current every 500 ms with the Fluke 189's
//!   accuracy (0.75 %), precision (0.15 %) and 1.8 mV/mA shunt.
//! - [`MemoryBudget`]: RAM accounting backing the `reduceMemory` policy.
//! - [`Phone`]: the assembled device handle used by the radio models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod device;
mod memory;
mod meter;
mod power;
mod profiles;
mod units;

pub use battery::Battery;
pub use device::{Phone, PhoneConfig};
pub use memory::{MemoryBudget, OutOfMemory};
pub use meter::{Multimeter, MultimeterConfig};
pub use power::{baseline, Consumer, PowerModel};
pub use profiles::{PhoneModel, PhoneSpec};
pub use units::{Milliamps, Millijoules, Milliwatts, Volts};
