//! Device profiles for the phones in the paper's testbed (§6.1).

use std::fmt;

/// The phone models used in the paper's experimental testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhoneModel {
    /// Nokia 6630 — Symbian OS 8.0a, 220 MHz, WCDMA/EDGE, 9 MB RAM.
    Nokia6630,
    /// Nokia 7610 — Symbian OS 7.0s, 123 MHz, GPRS, 9 MB RAM.
    Nokia7610,
    /// Nokia 9500 communicator — Symbian OS 7.0s, 150 MHz,
    /// WLAN 802.11b/EDGE, 64 MB RAM.
    Nokia9500,
}

/// Hardware capabilities of a [`PhoneModel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhoneSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Symbian OS version string.
    pub os: &'static str,
    /// CPU clock in MHz; scales local compute latencies.
    pub cpu_mhz: u32,
    /// RAM available to applications, in kilobytes.
    pub ram_kb: u32,
    /// Whether the device has an 802.11b WLAN radio.
    pub has_wifi: bool,
    /// Whether the device has a 3G (WCDMA/UMTS) radio; all have 2G.
    pub has_umts: bool,
}

impl PhoneModel {
    /// The hardware spec for this model.
    pub fn spec(self) -> PhoneSpec {
        match self {
            PhoneModel::Nokia6630 => PhoneSpec {
                name: "Nokia 6630",
                os: "Symbian OS 8.0a",
                cpu_mhz: 220,
                ram_kb: 9 * 1024,
                has_wifi: false,
                has_umts: true,
            },
            PhoneModel::Nokia7610 => PhoneSpec {
                name: "Nokia 7610",
                os: "Symbian OS 7.0s",
                cpu_mhz: 123,
                ram_kb: 9 * 1024,
                has_wifi: false,
                has_umts: false,
            },
            PhoneModel::Nokia9500 => PhoneSpec {
                name: "Nokia 9500",
                os: "Symbian OS 7.0s",
                cpu_mhz: 150,
                ram_kb: 64 * 1024,
                has_wifi: true,
                has_umts: false,
            },
        }
    }

    /// Factor by which CPU-bound latencies stretch relative to the fastest
    /// phone in the testbed (the 220 MHz Nokia 6630).
    pub fn cpu_slowdown(self) -> f64 {
        220.0 / self.spec().cpu_mhz as f64
    }
}

impl fmt::Display for PhoneModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_testbed() {
        let s = PhoneModel::Nokia6630.spec();
        assert_eq!(s.cpu_mhz, 220);
        assert_eq!(s.ram_kb, 9 * 1024);
        assert!(s.has_umts && !s.has_wifi);

        let s = PhoneModel::Nokia9500.spec();
        assert_eq!(s.cpu_mhz, 150);
        assert_eq!(s.ram_kb, 64 * 1024);
        assert!(s.has_wifi && !s.has_umts);

        let s = PhoneModel::Nokia7610.spec();
        assert_eq!(s.cpu_mhz, 123);
        assert!(!s.has_wifi && !s.has_umts);
    }

    #[test]
    fn slowdown_is_relative_to_6630() {
        assert_eq!(PhoneModel::Nokia6630.cpu_slowdown(), 1.0);
        assert!(PhoneModel::Nokia7610.cpu_slowdown() > 1.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(PhoneModel::Nokia9500.to_string(), "Nokia 9500");
    }
}
