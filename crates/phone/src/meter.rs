//! Sampling multimeter (the paper's Fluke 189).
//!
//! The meter sits in series between battery and phone (paper Fig. 3),
//! reads current roughly every 500 ms, and perturbs the circuit through
//! its shunt resistance (1.8 mV/mA). Accuracy 0.75 %, precision 0.15 %;
//! the paper derives a worst-case experiment inaccuracy of ~8 %.

use crate::units::{Milliamps, Millijoules, Milliwatts, Volts};
use simkit::trace::TimeSeries;
use simkit::{DetRng, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of a [`Multimeter`].
#[derive(Clone, Debug, PartialEq)]
pub struct MultimeterConfig {
    /// Sampling period; the Fluke logged ~every 500 ms.
    pub sample_period: SimDuration,
    /// Shunt burden, volts dropped per amp (1.8 mV/mA → 1.8 Ω).
    pub shunt_ohms: f64,
    /// Gain error, fraction of reading (0.75 %).
    pub accuracy: f64,
    /// Random per-sample noise, fraction of reading (0.15 %).
    pub precision: f64,
}

impl Default for MultimeterConfig {
    fn default() -> Self {
        MultimeterConfig {
            sample_period: SimDuration::from_millis(500),
            shunt_ohms: 1.8,
            accuracy: 0.0075,
            precision: 0.0015,
        }
    }
}

struct Inner {
    cfg: MultimeterConfig,
    readings: TimeSeries,
    gain: f64,
    rng: DetRng,
    running: bool,
}

/// A sampling ammeter in series with the phone's battery.
///
/// Call [`Multimeter::start`] with a closure that reports the true load
/// current; the meter then samples on its own schedule. Energy estimates
/// come from the *sampled* readings, exactly like the paper's PC-logged
/// meter — so they inherit the same quantization and gain error.
#[derive(Clone)]
pub struct Multimeter {
    inner: Rc<RefCell<Inner>>,
    sim: Sim,
}

impl Multimeter {
    /// Creates a meter. The gain error is drawn once per instrument, as a
    /// real miscalibration would be, from ±`accuracy`.
    pub fn new(sim: &Sim, cfg: MultimeterConfig, mut rng: DetRng) -> Self {
        let gain = 1.0 + rng.range_f64(-cfg.accuracy, cfg.accuracy);
        Multimeter {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                readings: TimeSeries::new("current_ma"),
                gain,
                rng,
                running: false,
            })),
            sim: sim.clone(),
        }
    }

    /// Series resistance this meter inserts into the circuit.
    pub fn shunt_ohms(&self) -> f64 {
        self.inner.borrow().cfg.shunt_ohms
    }

    /// Starts periodic sampling; `read_current` must return the true load
    /// current at call time. Sampling stops when [`Multimeter::stop`] is
    /// called.
    ///
    /// # Panics
    ///
    /// Panics if the meter is already running.
    pub fn start(&self, read_current: impl Fn() -> Milliamps + 'static) {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(!inner.running, "multimeter already started");
            inner.running = true;
        }
        let handle = self.inner.clone();
        let sim = self.sim.clone();
        let period = self.inner.borrow().cfg.sample_period;
        self.sim.schedule_repeating(period, move || {
            let mut inner = handle.borrow_mut();
            if !inner.running {
                return false;
            }
            let truth = read_current().0;
            let precision = inner.cfg.precision;
            let noise = 1.0 + inner.rng.range_f64(-precision, precision);
            let gain = inner.gain;
            let reading = truth * gain * noise;
            let now = sim.now();
            inner.readings.record(now, reading);
            true
        });
    }

    /// Stops sampling (the recorded series is kept).
    pub fn stop(&self) {
        self.inner.borrow_mut().running = false;
    }

    /// Number of samples logged so far.
    pub fn sample_count(&self) -> usize {
        self.inner.borrow().readings.len()
    }

    /// Copy of the logged current series (mA).
    pub fn readings(&self) -> TimeSeries {
        self.inner.borrow().readings.clone()
    }

    /// Mean measured current over a window, from the sampled step function.
    pub fn mean_current(&self, from: SimTime, to: SimTime) -> Milliamps {
        Milliamps(self.inner.borrow().readings.mean_between(from, to))
    }

    /// Energy estimate over a window: measured current × assumed supply
    /// voltage, integrated over the sampled step function — the same
    /// computation the paper performs from its meter logs via Ohm's law.
    pub fn energy_between(&self, from: SimTime, to: SimTime, supply: Volts) -> Millijoules {
        let ma_secs = self.inner.borrow().readings.integrate(from, to);
        Millijoules(ma_secs * supply.0)
    }

    /// Mean power over a window at the assumed supply voltage.
    pub fn mean_power(&self, from: SimTime, to: SimTime, supply: Volts) -> Milliwatts {
        self.mean_current(from, to).power_at(supply)
    }
}

impl std::fmt::Debug for Multimeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multimeter")
            .field("samples", &self.sample_count())
            .field("running", &self.inner.borrow().running)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter(sim: &Sim) -> Multimeter {
        Multimeter::new(sim, MultimeterConfig::default(), DetRng::new(99))
    }

    #[test]
    fn samples_every_500ms() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(10.0));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(m.sample_count(), 10);
    }

    #[test]
    fn reading_error_within_spec() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(100.0));
        sim.run_for(SimDuration::from_secs(60));
        for (_, v) in m.readings().iter() {
            // gain (0.75%) + noise (0.15%) < 1% total
            assert!((v - 100.0).abs() < 1.0, "reading {v}");
        }
    }

    #[test]
    fn energy_close_to_truth() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(244.1)); // ~1000 mW at 4.0965 V
        sim.run_for(SimDuration::from_secs(10));
        let e = m.energy_between(SimTime::ZERO, sim.now(), Volts(4.0965));
        let truth = 244.1 * 4.0965 * 10.0; // mJ
        // First 500 ms are unsampled (meter starts at its first tick), so
        // allow that bias plus the <1% instrument error.
        assert!((e.0 - truth).abs() / truth < 0.06, "e={} truth={truth}", e.0);
    }

    #[test]
    fn stop_halts_sampling() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(1.0));
        sim.run_for(SimDuration::from_secs(2));
        m.stop();
        let n = m.sample_count();
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(m.sample_count(), n);
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(1.0));
        m.start(|| Milliamps(1.0));
    }

    #[test]
    fn mean_power_uses_supply_voltage() {
        let sim = Sim::new();
        let m = meter(&sim);
        m.start(|| Milliamps(100.0));
        sim.run_for(SimDuration::from_secs(10));
        let p = m.mean_power(SimTime::from_secs(1), sim.now(), Volts(4.0));
        assert!((p.0 - 400.0).abs() < 5.0, "p {p}");
    }
}
