//! Full-stack tests: Contory middleware over the simulated phones,
//! radios, Smart Messages and Fuego infrastructure.

use contory::{CollectingClient, CxtItem, CxtValue, Mechanism, Trust};
use radio::Position;
use sensors::EnvField;
use simkit::{SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed};
use std::rc::Rc;

fn boat(tb: &Testbed, name: &str, x: f64) -> std::rc::Rc<testbed::TestbedPhone> {
    tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630(name, Position::new(x, 0.0))
    })
}

fn communicator(tb: &Testbed, name: &str, x: f64) -> std::rc::Rc<testbed::TestbedPhone> {
    tb.add_phone(PhoneSetup::nokia9500(name, Position::new(x, 0.0)))
}

#[test]
fn internal_sensor_periodic_query_end_to_end() {
    let tb = Testbed::with_seed(1);
    let phone = tb.add_phone(PhoneSetup {
        internal_sensors: vec![EnvField::TemperatureC],
        metered: false,
        ..PhoneSetup::nokia6630("solo", Position::new(0.0, 0.0))
    });
    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT temperature FROM intSensor DURATION 1 min EVERY 10 sec",
            client.clone(),
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(70));
    let items = client.items_for(id);
    assert!(
        (5..=6).contains(&items.len()),
        "expected ~6 samples, got {}",
        items.len()
    );
    // Values track the synthetic environment at the phone's position.
    let truth = tb
        .env
        .sample(EnvField::TemperatureC, Position::new(0.0, 0.0), tb.sim.now());
    let last = items.last().unwrap().value.as_f64().unwrap();
    assert!((last - truth).abs() < 3.0, "sensor {last} vs truth {truth}");
}

#[test]
fn bt_one_hop_adhoc_query_end_to_end() {
    let tb = Testbed::with_seed(2);
    let requester = boat(&tb, "requester", 0.0);
    let provider = boat(&tb, "provider", 5.0);
    // The provider publishes its temperature in the ad hoc network.
    provider.factory().register_cxt_server("app");
    provider
        .factory()
        .publish_cxt_item(
            CxtItem::new("temperature", CxtValue::quantity(14.5, "C"), tb.sim.now())
                .with_accuracy(0.2)
                .with_trust(Trust::Community),
            None,
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    let client = Rc::new(CollectingClient::new());
    let id = requester
        .submit(
            "SELECT temperature FROM adHocNetwork(all,1) WHERE accuracy=0.5 \
             DURATION 2 samples EVERY 30 sec",
            client.clone(),
        )
        .unwrap();
    assert_eq!(
        requester.factory().mechanism_of(id),
        Some(Mechanism::AdHocBt)
    );
    // First round includes BT discovery (~13 s inquiry + SDP).
    tb.sim.run_for(SimDuration::from_secs(90));
    let items = client.items_for(id);
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].value.as_f64(), Some(14.5));
    assert!(items[0]
        .source
        .as_ref()
        .unwrap()
        .0
        .contains("provider"));
}

#[test]
fn wifi_multihop_adhoc_query_end_to_end() {
    let tb = Testbed::with_seed(3);
    let requester = communicator(&tb, "c0", 0.0);
    let _relay = communicator(&tb, "c1", 80.0);
    let far = communicator(&tb, "c2", 160.0);
    tb.sim.run_for(SimDuration::from_secs(5)); // WiFi joins
    far.factory().register_cxt_server("app");
    far.factory()
        .publish_cxt_item(
            CxtItem::new("temperature", CxtValue::quantity(19.0, "C"), tb.sim.now())
                .with_accuracy(0.2),
            None,
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    let client = Rc::new(CollectingClient::new());
    let id = requester
        .submit(
            "SELECT temperature FROM adHocNetwork(all,3) DURATION 1 samples",
            client.clone(),
        )
        .unwrap();
    assert_eq!(
        requester.factory().mechanism_of(id),
        Some(Mechanism::AdHocWifi)
    );
    tb.sim.run_for(SimDuration::from_secs(20));
    let items = client.items_for(id);
    assert_eq!(items.len(), 1, "two-hop provider found via SM-FINDER");
    assert_eq!(items[0].value.as_f64(), Some(19.0));
    assert!(items[0].source.as_ref().unwrap().0.contains("c2"));
}

#[test]
fn infra_query_end_to_end_over_umts() {
    let tb = Testbed::with_seed(4);
    tb.add_weather_station(
        "fmi-harmaja",
        Position::new(2_000.0, 1_000.0),
        &[EnvField::TemperatureC, EnvField::WindKnots],
        SimDuration::from_secs(60),
    );
    tb.sim.run_for(SimDuration::from_secs(120)); // two observations stored
    let phone = tb.add_phone(PhoneSetup {
        cell_on: true,
        metered: false,
        ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
    });
    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT wind FROM extInfra DURATION 1 samples",
            client.clone(),
        )
        .unwrap();
    assert_eq!(phone.factory().mechanism_of(id), Some(Mechanism::Infra));
    tb.sim.run_for(SimDuration::from_secs(30));
    let items = client.items_for(id);
    assert_eq!(items.len(), 1);
    assert!(items[0].source.as_ref().unwrap().0.contains("fmi-harmaja"));
}

#[test]
fn store_cxt_item_reaches_the_infrastructure() {
    let tb = Testbed::with_seed(5);
    let phone = tb.add_phone(PhoneSetup {
        cell_on: true,
        metered: false,
        ..PhoneSetup::nokia6630("sailor", Position::new(10.0, 20.0))
    });
    phone.factory().store_cxt_item(
        CxtItem::new("speed", CxtValue::quantity(6.2, "kn"), tb.sim.now()).with_accuracy(0.1),
    );
    tb.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(tb.infra.record_count(), 1);
    // and it is locally cached too
    assert!(phone.factory().repository().latest("speed").is_some());
}

#[test]
fn fig5_failover_gps_to_adhoc_and_back() {
    // The paper's Fig. 5 scenario on the real simulated stack:
    // a phone reads location from a BT-GPS; the GPS is switched off at
    // t≈155 s; Contory switches to ad hoc provisioning (a neighbour
    // publishes its location); the GPS returns and Contory switches back.
    let tb = Testbed::with_seed(6);
    let phone = boat(&tb, "sailor", 0.0);
    let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
    let neighbor = boat(&tb, "neighbor", 6.0);
    neighbor.factory().register_cxt_server("app");

    // The neighbour keeps publishing its own (ad hoc) location.
    {
        let factory = neighbor.factory().clone();
        let world = tb.world.clone();
        let node = neighbor.node();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
            let p = world.position_of(node).unwrap();
            let _ = factory.publish_cxt_item(
                CxtItem::new(
                    "location",
                    CxtValue::Position { x: p.x, y: p.y },
                    sim.now(),
                )
                .with_accuracy(30.0)
                .with_trust(Trust::Community),
                None,
            );
            true
        });
    }

    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            client.clone(),
        )
        .unwrap();

    // Phase 1: GPS provisioning (discovery ~14 s, then 5 s NMEA stream).
    tb.sim.run_until(SimTime::from_secs(155));
    assert_eq!(phone.factory().mechanism_of(id), Some(Mechanism::IntSensor));
    let phase1 = client.items_for(id).len();
    assert!(phase1 >= 10, "GPS items in phase 1: {phase1}");

    // t = 155 s: the GPS device is switched off.
    gps.set_powered(false);
    tb.sim.run_for(SimDuration::from_secs(120));
    assert_eq!(
        phone.factory().mechanism_of(id),
        Some(Mechanism::AdHocBt),
        "switched to ad hoc location provisioning"
    );
    let phase2 = client.items_for(id).len();
    assert!(phase2 > phase1, "ad hoc items flow: {phase1} -> {phase2}");
    let last = client.items_for(id).pop().unwrap();
    assert!(
        last.source.as_ref().unwrap().0.contains("neighbor"),
        "items now come from the neighbour, got {:?}",
        last.source
    );

    // The GPS comes back; a recovery probe rediscovers it (~30 s cadence
    // + 13 s inquiry).
    gps.set_powered(true);
    tb.sim.run_for(SimDuration::from_secs(180));
    assert_eq!(
        phone.factory().mechanism_of(id),
        Some(Mechanism::IntSensor),
        "switched back to the GPS"
    );
    let phase3 = client.items_for(id).len();
    tb.sim.run_for(SimDuration::from_secs(30));
    let last = client.items_for(id).pop().unwrap();
    assert!(
        last.source.as_ref().unwrap().0.contains("inssirf"),
        "items come from the GPS again, got {:?}",
        last.source
    );
    assert!(client.items_for(id).len() > phase3);
}

#[test]
fn authenticated_publishing_needs_the_key() {
    let tb = Testbed::with_seed(7);
    let requester = communicator(&tb, "c0", 0.0);
    let provider = communicator(&tb, "c1", 50.0);
    tb.sim.run_for(SimDuration::from_secs(5));
    provider.factory().register_cxt_server("app");
    provider
        .factory()
        .publish_cxt_item(
            CxtItem::new("location", CxtValue::Position { x: 50.0, y: 0.0 }, tb.sim.now())
                .with_accuracy(5.0),
            Some("regatta-2005".into()),
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(1));
    // Without the key the finder sees the tag name but cannot read it.
    let client = Rc::new(CollectingClient::new());
    let _id = requester
        .submit(
            "SELECT location FROM adHocNetwork(all,1) DURATION 1 samples",
            client.clone(),
        )
        .unwrap();
    tb.sim.run_for(SimDuration::from_secs(60));
    assert!(client.all_items().is_empty(), "locked item must not leak");
}

#[test]
fn merged_queries_share_a_provider_on_the_real_stack() {
    let tb = Testbed::with_seed(8);
    let requester = boat(&tb, "requester", 0.0);
    let provider = boat(&tb, "provider", 5.0);
    provider.factory().register_cxt_server("app");
    provider
        .factory()
        .publish_cxt_item(
            CxtItem::new("temperature", CxtValue::quantity(15.0, "C"), tb.sim.now())
                .with_accuracy(0.2),
            None,
        )
        .unwrap();
    let c1 = Rc::new(CollectingClient::new());
    let c2 = Rc::new(CollectingClient::new());
    requester
        .submit(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 1 hour EVERY 20 sec",
            c1.clone(),
        )
        .unwrap();
    requester
        .submit(
            "SELECT temperature FROM adHocNetwork(all,1) DURATION 2 hour EVERY 40 sec",
            c2.clone(),
        )
        .unwrap();
    let facade = requester.factory().facade(Mechanism::AdHocBt).unwrap();
    assert_eq!(facade.provider_count(), 1, "queries merged onto one provider");
    tb.sim.run_for(SimDuration::from_secs(120));
    assert!(!c1.all_items().is_empty());
    assert!(!c2.all_items().is_empty());
}

#[test]
fn handover_bug_and_the_2g_workaround() {
    // The DYNAMOS field trials: "when a UMTS connection was active and
    // the phone went through 2G/3G handover, the phone switched off
    // (this did not occur if the phone was set to operate only in 2G
    // mode)."
    use radio::cell::CellMode;
    for (mode, survives) in [(CellMode::Dual, false), (CellMode::TwoG, true)] {
        let tb = Testbed::with_seed(31);
        tb.add_weather_station(
            "station",
            Position::new(5_000.0, 0.0),
            &[EnvField::WindKnots],
            SimDuration::from_secs(30),
        );
        tb.sim.run_for(SimDuration::from_secs(60));
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
        });
        phone.modem().unwrap().set_mode(mode);
        let client = Rc::new(CollectingClient::new());
        phone
            .submit("SELECT wind FROM extInfra DURATION 1 samples", client.clone())
            .unwrap();
        // Trigger a handover while the UMTS transfer is in flight.
        tb.sim.run_for(SimDuration::from_millis(300));
        phone.modem().unwrap().trigger_handover();
        tb.sim.run_for(SimDuration::from_secs(30));
        assert_eq!(
            phone.phone().is_on(),
            survives,
            "mode {mode:?}: phone on should be {survives}"
        );
        assert_eq!(
            !client.all_items().is_empty(),
            survives,
            "mode {mode:?}: delivery should be {survives}"
        );
    }
}
