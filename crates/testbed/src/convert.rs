//! Conversions between the substrate data types and Contory's context
//! items.

use contory::{CxtItem, CxtValue, Metadata, Trust};
use fuego::InfraRecord;
use radio::Position;
use sensors::Reading;

/// Turns a sensor reading into a context item.
pub fn reading_to_item(reading: &Reading, source: &str) -> CxtItem {
    CxtItem::new(
        reading.quantity.clone(),
        CxtValue::quantity(reading.value, reading.unit),
        reading.timestamp,
    )
    .with_accuracy(reading.accuracy)
    .with_source(source)
}

/// Turns a context item into an infrastructure record. `entity` names
/// the providing device; `position` georeferences the observation (the
/// item's own position for location items, the device position
/// otherwise).
pub fn item_to_record(item: &CxtItem, entity: &str, position: Option<Position>) -> InfraRecord {
    let pos = match &item.value {
        CxtValue::Position { x, y } => Some(Position::new(*x, *y)),
        _ => position,
    };
    let mut record = InfraRecord::new(entity, item.cxt_type.clone(), item.value.to_string(), item.timestamp)
        .with_payload(std::rc::Rc::new(item.clone()));
    if let Some(p) = pos {
        record = record.at(p);
    }
    if let Some(a) = item.metadata.accuracy {
        record = record.with_metadata("accuracy", format!("{a}"));
    }
    if let Some(c) = item.metadata.correctness {
        record = record.with_metadata("correctness", format!("{c}"));
    }
    if item.metadata.trust != Trust::Unknown {
        record = record.with_metadata("trust", item.metadata.trust.to_string());
    }
    record
}

/// Turns an infrastructure record back into a context item. Prefers the
/// structured payload when it survived (same-simulation fast path),
/// otherwise reconstructs from the record fields.
pub fn record_to_item(record: &InfraRecord) -> CxtItem {
    if let Some(p) = &record.payload {
        if let Ok(item) = p.clone().downcast::<CxtItem>() {
            return item.as_ref().clone();
        }
    }
    let value = parse_value_text(&record.value_text, record.position);
    let mut metadata = Metadata::none();
    if let Some(a) = record.metadata.get("accuracy").and_then(|s| s.parse().ok()) {
        metadata.accuracy = Some(a);
    }
    if let Some(c) = record
        .metadata
        .get("correctness")
        .and_then(|s| s.parse().ok())
    {
        metadata.correctness = Some(c);
    }
    metadata.trust = match record.metadata.get("trust").map(String::as_str) {
        Some("trusted") => Trust::Trusted,
        Some("community") => Trust::Community,
        _ => Trust::Unknown,
    };
    CxtItem::new(record.item_type.clone(), value, record.timestamp)
        .with_source(format!("infra://{}", record.entity))
        .with_metadata(metadata)
}

/// Parses a printable value back into a structured one: `"14.0C"` →
/// number + unit; `"(x, y)"` → the record's position; anything else →
/// text.
fn parse_value_text(text: &str, position: Option<Position>) -> CxtValue {
    if text.starts_with('(') {
        if let Some(p) = position {
            return CxtValue::Position { x: p.x, y: p.y };
        }
    }
    let split = text
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-'))
        .map(|(i, _)| i)
        .unwrap_or(text.len());
    if split > 0 {
        if let Ok(v) = text[..split].parse::<f64>() {
            return CxtValue::Number {
                value: v,
                unit: text[split..].to_owned(),
            };
        }
    }
    CxtValue::Text(text.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn reading_round_trip() {
        let r = Reading {
            quantity: "temperature".into(),
            value: 14.3,
            unit: "C",
            timestamp: SimTime::from_secs(10),
            accuracy: 0.2,
            position: Some(Position::new(1.0, 2.0)),
        };
        let item = reading_to_item(&r, "sensor://t0");
        assert_eq!(item.cxt_type, "temperature");
        assert_eq!(item.value.as_f64(), Some(14.3));
        assert_eq!(item.metadata.accuracy, Some(0.2));
    }

    #[test]
    fn item_record_round_trip_via_payload() {
        let item = CxtItem::new("wind", CxtValue::quantity(7.5, "kn"), SimTime::from_secs(5))
            .with_accuracy(0.5)
            .with_trust(Trust::Community);
        let record = item_to_record(&item, "boat-1", Some(Position::new(10.0, 20.0)));
        assert_eq!(record.entity, "boat-1");
        assert_eq!(record.position.unwrap().x, 10.0);
        let back = record_to_item(&record);
        assert_eq!(back, item);
    }

    #[test]
    fn item_record_round_trip_without_payload() {
        let item = CxtItem::new("wind", CxtValue::quantity(7.5, "kn"), SimTime::from_secs(5))
            .with_accuracy(0.5)
            .with_trust(Trust::Trusted);
        let mut record = item_to_record(&item, "boat-1", None);
        record.payload = None; // simulate a wire crossing
        let back = record_to_item(&record);
        assert_eq!(back.cxt_type, "wind");
        assert_eq!(back.value.as_f64(), Some(7.5));
        assert_eq!(back.metadata.accuracy, Some(0.5));
        assert_eq!(back.metadata.trust, Trust::Trusted);
        assert_eq!(back.timestamp, SimTime::from_secs(5));
    }

    #[test]
    fn location_items_use_their_own_position() {
        let item = CxtItem::new(
            "location",
            CxtValue::Position { x: 5.0, y: 6.0 },
            SimTime::ZERO,
        );
        let record = item_to_record(&item, "boat-2", Some(Position::new(99.0, 99.0)));
        assert_eq!(record.position.unwrap().x, 5.0);
        let mut stripped = record.clone();
        stripped.payload = None;
        let back = record_to_item(&stripped);
        assert!(matches!(back.value, CxtValue::Position { x, .. } if x == 5.0));
    }

    #[test]
    fn text_values_survive() {
        let item = CxtItem::new("activity", CxtValue::Text("sailing".into()), SimTime::ZERO);
        let mut record = item_to_record(&item, "boat-3", None);
        record.payload = None;
        let back = record_to_item(&record);
        assert_eq!(back.value, CxtValue::Text("sailing".into()));
    }
}
