//! # contory-testbed
//!
//! Binds the platform-agnostic `contory` middleware to the simulated
//! smart-phone platform: implementations of the four Reference traits
//! over the radio models, the Smart Messages platform and the Fuego
//! event middleware — plus scenario builders that assemble whole testbeds
//! (the paper's §6.1 rig of Nokia phones, communicators, a BT-GPS puck
//! and a remote context infrastructure) and a measurement harness that
//! reproduces the paper's methodology (repeated operations, mean with
//! 90 % confidence interval, energy from the series multimeter).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod harness;
mod refs_impl;
mod scenario;

pub use convert::{item_to_record, reading_to_item, record_to_item};
pub use harness::{measure_async, run_until_flag, EnergyProbe};
pub use refs_impl::{SimBtReference, SimCellReference, SimInternalReference, SimWifiReference};
pub use scenario::{PhoneSetup, Testbed, TestbedConfig, TestbedPhone};
