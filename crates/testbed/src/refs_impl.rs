//! Reference-trait implementations over the simulated platform.
//!
//! - [`SimInternalReference`]: integrated sensors sampling the synthetic
//!   environment. (The paper's prototype left the `InternalReference`
//!   unimplemented because its phones had no usable integrated sensors;
//!   we implement it so the full architecture is exercised, and simply
//!   give paper-faithful scenarios no internal sensors.)
//! - [`SimBtReference`]: JSR-82-style — sensor discovery/streaming for
//!   the BT-GPS, one-hop ad hoc provisioning via SDP context services,
//!   publish as a `ServiceRecord` in the SDDB (~140 ms).
//! - [`SimWifiReference`]: SM-FINDER rounds and tag-space publishing over
//!   the Smart Messages platform (~0.13 ms to publish).
//! - [`SimCellReference`]: store/fetch/subscribe against the remote
//!   [`fuego::ContextInfrastructure`] through the Fuego client.

use crate::convert::{item_to_record, record_to_item};
use contory::query::NumNodes;
use contory::refs::{
    AdHocSpec, BtReference, CellReference, Done, InfraPushMode, InfraSpec, InfraSubHandle,
    InternalReference, ItemsResult, OnItems, OnRefError, RefError, StreamHandle, WifiReference,
};
use contory::{CxtItem, SourceId};
use fuego::{InfraClient, InfraQuery, InfraSubscription, PushMode, RequestError};
use radio::bt::{BtError, BtRadio, LinkId, ServiceRecord};
use radio::cell::CellModem;
use radio::wifi::WifiRadio;
use radio::{NodeId, Position, Region};
use sensors::{gps, EnvField, EnvSensor, Environment};
use simkit::{DetRng, Sim, SimDuration, SimTime};
use smartmsg::finder::{Finder, FinderResult, FinderSpec};
use smartmsg::{SmNode, SmOutcome, Tag, TagValue};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// SDP service UUID prefix under which Contory advertises context items.
const CONTORY_SERVICE_PREFIX: &str = "contory-cxt-";
/// How long a BT neighbourhood snapshot stays valid before the next ad
/// hoc round needs a fresh inquiry.
const PEER_CACHE_TTL: SimDuration = SimDuration::from_secs(120);
/// How long an ad hoc round waits for peer replies after sending.
const ADHOC_REPLY_TIMEOUT: SimDuration = SimDuration::from_secs(5);

// ------------------------------------------------------------------
// Internal sensors
// ------------------------------------------------------------------

/// Integrated sensors sampling the ground-truth environment.
pub struct SimInternalReference {
    sim: Sim,
    source: String,
    sensors: RefCell<BTreeMap<String, EnvSensor>>,
    rng: RefCell<DetRng>,
}

impl SimInternalReference {
    /// Creates a reference with one sensor per listed field, bound to the
    /// (possibly moving) position source.
    pub fn new(
        sim: &Sim,
        env: &Environment,
        fields: &[EnvField],
        position: Rc<dyn Fn() -> Position>,
        device_name: &str,
        seed: u64,
    ) -> Self {
        let sensors = fields
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let p = position.clone();
                (
                    f.type_name().to_owned(),
                    EnvSensor::new(env, f, Rc::new(move || p()), default_accuracy(f), seed + i as u64),
                )
            })
            .collect();
        SimInternalReference {
            sim: sim.clone(),
            source: format!("intSensor://{device_name}"),
            sensors: RefCell::new(sensors),
            rng: RefCell::new(DetRng::new(seed ^ 0x1257)),
        }
    }

    /// Flips the dropout switch of one sensor (fault injection). Unknown
    /// types are a no-op. Returns whether a sensor was found.
    pub fn set_sensor_online(&self, cxt_type: &str, up: bool) -> bool {
        match self.sensors.borrow().get(cxt_type) {
            Some(s) => {
                s.set_online(up);
                true
            }
            None => false,
        }
    }

    /// Whether the named sensor exists and is online.
    pub fn sensor_online(&self, cxt_type: &str) -> bool {
        self.sensors
            .borrow()
            .get(cxt_type)
            .is_some_and(|s| s.is_online())
    }

    /// Context types this reference has sensors for (fault wiring
    /// enumerates them to register per-sensor dropout switches).
    pub fn sensor_types(&self) -> Vec<String> {
        self.sensors.borrow().keys().cloned().collect()
    }
}

fn default_accuracy(field: EnvField) -> f64 {
    match field {
        EnvField::TemperatureC => 0.5,
        EnvField::WindKnots => 1.0,
        EnvField::WindDirDeg => 10.0,
        EnvField::HumidityPct => 5.0,
        EnvField::PressureHpa => 1.0,
        EnvField::LightLux => 100.0,
        EnvField::NoiseDb => 2.0,
    }
}

impl InternalReference for SimInternalReference {
    fn provides(&self, cxt_type: &str) -> bool {
        self.sensors.borrow().contains_key(cxt_type)
    }

    fn sample(&self, cxt_type: &str, cb: Done<Result<CxtItem, RefError>>) {
        if !self.provides(cxt_type) {
            let what = cxt_type.to_owned();
            self.sim.schedule_in(SimDuration::ZERO, move || {
                cb(Err(RefError::NotFound(format!("no sensor for {what}"))))
            });
            return;
        }
        // createCxtItem measured at 0.078 ms in Table 1.
        let latency = self.rng.borrow_mut().gauss_duration(
            SimDuration::from_micros(78),
            SimDuration::from_micros(2),
        );
        let reading = self
            .sensors
            .borrow_mut()
            .get_mut(cxt_type)
            .expect("checked provides")
            .try_sample(self.sim.now());
        match reading {
            Some(reading) => {
                let item = crate::convert::reading_to_item(&reading, &self.source);
                self.sim.schedule_in(latency, move || cb(Ok(item)));
            }
            None => {
                // Dropped-out sensor (fault injection): the device is
                // present but silent.
                let what = cxt_type.to_owned();
                self.sim.schedule_in(latency, move || {
                    cb(Err(RefError::Unavailable(format!("sensor {what} offline"))))
                });
            }
        }
    }
}

impl fmt::Debug for SimInternalReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimInternalReference")
            .field("sensors", &self.sensors.borrow().len())
            .finish()
    }
}

// ------------------------------------------------------------------
// Bluetooth
// ------------------------------------------------------------------

/// Messages Contory exchanges over BT ACL links.
enum BtMsg {
    /// A context query (205 bytes on the wire).
    Query { qid: u64, spec: AdHocSpec },
    /// The matching items (53–136 bytes each).
    Reply { qid: u64, items: Vec<CxtItem> },
    /// A long-running query: push matching items every `period`.
    Subscribe {
        qid: u64,
        spec: AdHocSpec,
        period: SimDuration,
    },
    /// A pushed notification for a subscription.
    Notify { qid: u64, items: Vec<CxtItem> },
    /// Cancels a subscription at the provider.
    Cancel { qid: u64 },
}

impl BtMsg {
    fn wire_size(&self) -> usize {
        match self {
            BtMsg::Query { .. } => contory::query::CxtQuery::WIRE_SIZE,
            BtMsg::Subscribe { .. } => contory::query::CxtQuery::WIRE_SIZE + 8,
            BtMsg::Reply { items, .. } | BtMsg::Notify { items, .. } => {
                16 + items.iter().map(CxtItem::wire_size).sum::<usize>()
            }
            BtMsg::Cancel { .. } => 24,
        }
    }
}

/// A requester-side ad hoc subscription.
struct AdHocSub {
    on_items: OnItems,
    on_error: OnRefError,
    spec: AdHocSpec,
    peers: Vec<NodeId>,
}

/// A provider-side push registration.
struct ProviderPush {
    qid: u64,
    link: LinkId,
    active: Rc<std::cell::Cell<bool>>,
}

struct StreamState {
    handle: StreamHandle,
    link: LinkId,
    cxt_type: String,
    on_items: OnItems,
    on_error: OnRefError,
}

struct PendingRound {
    qid: u64,
    expected: usize,
    items: Vec<CxtItem>,
    spec: AdHocSpec,
    cb: Option<Done<ItemsResult>>,
}

struct BtRefInner {
    sim: Sim,
    radio: BtRadio,
    entity: String,
    serving: BTreeMap<String, (CxtItem, Option<String>)>,
    streams: Vec<StreamState>,
    next_stream: u64,
    known_peers: Vec<NodeId>,
    peers_fresh_until: SimTime,
    peer_links: BTreeMap<NodeId, LinkId>,
    pending: Vec<PendingRound>,
    next_qid: u64,
    /// Requester side: active ad hoc subscriptions by qid.
    adhoc_subs: BTreeMap<u64, AdHocSub>,
    /// Provider side: push registrations.
    pushes: Vec<ProviderPush>,
}

/// The JSR-82-backed `BTReference`.
#[derive(Clone)]
pub struct SimBtReference {
    inner: Rc<RefCell<BtRefInner>>,
}

impl SimBtReference {
    /// Creates the reference and installs itself as the radio's receive
    /// and disconnect handler (so one instance per radio).
    pub fn new(sim: &Sim, radio: &BtRadio, entity: &str) -> Self {
        let me = SimBtReference {
            inner: Rc::new(RefCell::new(BtRefInner {
                sim: sim.clone(),
                radio: radio.clone(),
                entity: entity.to_owned(),
                serving: BTreeMap::new(),
                streams: Vec::new(),
                next_stream: 0,
                known_peers: Vec::new(),
                peers_fresh_until: SimTime::ZERO,
                peer_links: BTreeMap::new(),
                pending: Vec::new(),
                next_qid: 0,
                adhoc_subs: BTreeMap::new(),
                pushes: Vec::new(),
            })),
        };
        {
            let weak = Rc::downgrade(&me.inner);
            radio.on_receive(move |link, from, payload| {
                if let Some(inner) = weak.upgrade() {
                    SimBtReference { inner }.handle_receive(link, from, payload);
                }
            });
        }
        {
            let weak = Rc::downgrade(&me.inner);
            radio.on_disconnect(move |link, peer| {
                if let Some(inner) = weak.upgrade() {
                    SimBtReference { inner }.handle_disconnect(link, peer);
                }
            });
        }
        me
    }

    fn sim(&self) -> Sim {
        self.inner.borrow().sim.clone()
    }

    fn radio(&self) -> BtRadio {
        self.inner.borrow().radio.clone()
    }

    /// Drops the cached neighbourhood and peer links, forcing the next ad
    /// hoc round through full discovery (used by the on-demand benches
    /// and the discovery-cache ablation).
    pub fn forget_peers(&self) {
        let (links, radio) = {
            let mut inner = self.inner.borrow_mut();
            inner.known_peers.clear();
            inner.peers_fresh_until = SimTime::ZERO;
            let links: Vec<LinkId> = inner.peer_links.values().copied().collect();
            inner.peer_links.clear();
            (links, inner.radio.clone())
        };
        for link in links {
            radio.disconnect(link);
        }
    }

    fn handle_receive(&self, link: LinkId, _from: NodeId, payload: Rc<dyn std::any::Any>) {
        // Context query from a peer: answer with matching served items.
        if let Some(msg) = payload.downcast_ref::<BtMsg>() {
            match msg {
                BtMsg::Query { qid, spec } => {
                    let now = self.sim().now();
                    let (items, radio, entity) = {
                        let inner = self.inner.borrow();
                        let items: Vec<CxtItem> = inner
                            .serving
                            .iter()
                            .filter(|(_, (item, key))| {
                                key_allows(key.as_deref(), spec.key.as_deref())
                                    && spec.matches(item, now)
                            })
                            .map(|(_, (item, _))| item.clone())
                            .collect();
                        (items, inner.radio.clone(), inner.entity.clone())
                    };
                    let items: Vec<CxtItem> = items
                        .into_iter()
                        .map(|i| i.with_source(format!("bt://{entity}")))
                        .collect();
                    let reply = BtMsg::Reply { qid: *qid, items };
                    let size = reply.wire_size();
                    radio.send(link, size, Rc::new(reply), |_res| {});
                }
                BtMsg::Reply { qid, items } => {
                    self.handle_reply(*qid, items.clone());
                }
                BtMsg::Subscribe { qid, spec, period } => {
                    self.install_push(*qid, link, spec.clone(), *period);
                }
                BtMsg::Notify { qid, items } => {
                    let (handler, spec) = {
                        let inner = self.inner.borrow();
                        match inner.adhoc_subs.get(qid) {
                            Some(sub) => (Some(sub.on_items.clone()), Some(sub.spec.clone())),
                            None => (None, None),
                        }
                    };
                    if let (Some(on_items), Some(spec)) = (handler, spec) {
                        let items = finalize_items(items.clone(), &spec);
                        if !items.is_empty() {
                            on_items(items);
                        }
                    }
                }
                BtMsg::Cancel { qid } => {
                    let mut inner = self.inner.borrow_mut();
                    if let Some(pos) = inner.pushes.iter().position(|p| p.qid == *qid) {
                        inner.pushes[pos].active.set(false);
                        inner.pushes.remove(pos);
                    }
                }
            }
            return;
        }
        // NMEA sentence from a BT-GPS puck.
        if let Some(sentence) = payload.downcast_ref::<String>() {
            if let Some(pos) = gps::parse_gga(sentence) {
                let now = self.sim().now();
                let streams: Vec<(OnItems, String)> = {
                    let inner = self.inner.borrow();
                    inner
                        .streams
                        .iter()
                        .filter(|s| s.link == link && s.cxt_type == "location")
                        .map(|s| (s.on_items.clone(), s.cxt_type.clone()))
                        .collect()
                };
                for (on_items, cxt_type) in streams {
                    let item = CxtItem::new(
                        cxt_type,
                        contory::CxtValue::Position { x: pos.x, y: pos.y },
                        now,
                    )
                    .with_accuracy(5.0)
                    .with_source("btgps://inssirf-iii");
                    on_items(vec![item]);
                }
            }
            return;
        }
        // Generic BT sensor pushing structured items.
        if let Ok(item) = payload.downcast::<CxtItem>() {
            let streams: Vec<OnItems> = {
                let inner = self.inner.borrow();
                inner
                    .streams
                    .iter()
                    .filter(|s| s.link == link && s.cxt_type == item.cxt_type)
                    .map(|s| s.on_items.clone())
                    .collect()
            };
            for on_items in streams {
                on_items(vec![item.as_ref().clone()]);
            }
        }
    }

    fn handle_disconnect(&self, link: LinkId, peer: NodeId) {
        let (dead_streams, orphaned_subs) = {
            let mut inner = self.inner.borrow_mut();
            let dead: Vec<(StreamHandle, OnRefError)> = inner
                .streams
                .iter()
                .filter(|s| s.link == link)
                .map(|s| (s.handle, s.on_error.clone()))
                .collect();
            inner.streams.retain(|s| s.link != link);
            inner.peer_links.remove(&peer);
            // Provider side: stop pushes riding this link.
            for p in inner.pushes.iter().filter(|p| p.link == link) {
                p.active.set(false);
            }
            inner.pushes.retain(|p| p.link != link);
            // Requester side: drop the peer from subscriptions; report
            // subscriptions that lost their last provider.
            let mut orphaned: Vec<OnRefError> = Vec::new();
            for sub in inner.adhoc_subs.values_mut() {
                if sub.peers.contains(&peer) {
                    sub.peers.retain(|&n| n != peer);
                    if sub.peers.is_empty() {
                        orphaned.push(sub.on_error.clone());
                    }
                }
            }
            (dead, orphaned)
        };
        for (_h, on_error) in dead_streams {
            on_error(RefError::Unavailable("bluetooth link lost".into()));
        }
        for on_error in orphaned_subs {
            on_error(RefError::Unavailable("all ad hoc providers lost".into()));
        }
    }

    /// Provider side: registers a repeating push for a subscription.
    fn install_push(&self, qid: u64, link: LinkId, spec: AdHocSpec, period: SimDuration) {
        let active = Rc::new(std::cell::Cell::new(true));
        {
            let mut inner = self.inner.borrow_mut();
            inner.pushes.push(ProviderPush {
                qid,
                link,
                active: active.clone(),
            });
        }
        let me = self.clone();
        let sim = self.sim();
        self.sim().schedule_repeating(period, move || {
            if !active.get() {
                return false;
            }
            let now = sim.now();
            let (items, radio, entity, link_open) = {
                let inner = me.inner.borrow();
                let items: Vec<CxtItem> = inner
                    .serving
                    .iter()
                    .filter(|(_, (item, key))| {
                        key_allows(key.as_deref(), spec.key.as_deref())
                            && spec.matches(item, now)
                    })
                    .map(|(_, (item, _))| item.clone())
                    .collect();
                let link_open = inner.radio.links().iter().any(|(l, _)| *l == link);
                (items, inner.radio.clone(), inner.entity.clone(), link_open)
            };
            if !link_open {
                active.set(false);
                return false;
            }
            if !items.is_empty() {
                let items: Vec<CxtItem> = items
                    .into_iter()
                    .map(|i| i.with_source(format!("bt://{entity}")))
                    .collect();
                let msg = BtMsg::Notify { qid, items };
                let size = msg.wire_size();
                radio.send(link, size, Rc::new(msg), |_res| {});
            }
            true
        });
    }

    /// Requester side: once peers are known, sends them the subscription.
    fn establish_subscription(&self, qid: u64, peers: Vec<NodeId>, period: SimDuration) {
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(sub) = inner.adhoc_subs.get_mut(&qid) {
                sub.peers = peers.clone();
            } else {
                return; // already cancelled
            }
        }
        let spec = match self.inner.borrow().adhoc_subs.get(&qid) {
            Some(s) => s.spec.clone(),
            None => return,
        };
        if peers.is_empty() {
            // Nobody around yet: retry discovery later (MANETs are
            // dynamic); the subscription stays armed.
            let me = self.clone();
            self.sim().schedule_in(period * 3, move || {
                if me.inner.borrow().adhoc_subs.contains_key(&qid) {
                    me.resolve_subscription_peers(qid, period);
                }
            });
            return;
        }
        for peer in peers {
            self.send_subscribe_to(peer, qid, spec.clone(), period);
        }
    }

    fn send_subscribe_to(&self, peer: NodeId, qid: u64, spec: AdHocSpec, period: SimDuration) {
        let link = self.inner.borrow().peer_links.get(&peer).copied();
        match link {
            Some(link) => {
                let msg = BtMsg::Subscribe { qid, spec, period };
                let size = msg.wire_size();
                self.radio().send(link, size, Rc::new(msg), |_res| {});
            }
            None => {
                let me = self.clone();
                self.radio().connect(peer, move |res| {
                    if let Ok(link) = res {
                        me.inner.borrow_mut().peer_links.insert(peer, link);
                        me.send_subscribe_to(peer, qid, spec, period);
                    }
                });
            }
        }
    }

    /// Finds (or re-finds) providers for a subscription, then establishes
    /// the pushes. The seed round's items are delivered as the first
    /// batch.
    fn resolve_subscription_peers(&self, qid: u64, period: SimDuration) {
        let spec = match self.inner.borrow().adhoc_subs.get(&qid) {
            Some(s) => s.spec.clone(),
            None => return,
        };
        let me = self.clone();
        let limit = match spec.num_nodes {
            NumNodes::All => usize::MAX,
            NumNodes::First(k) => k as usize,
        };
        self.peers_for_round(spec, Box::new(move |res| {
            // Deliver the seed batch.
            if let Ok(items) = &res {
                let handler = {
                    let inner = me.inner.borrow();
                    inner
                        .adhoc_subs
                        .get(&qid)
                        .map(|s| (s.on_items.clone(), s.spec.clone()))
                };
                if let Some((on_items, sspec)) = handler {
                    let items = finalize_items(items.clone(), &sspec);
                    if !items.is_empty() {
                        on_items(items);
                    }
                }
            }
            // peers_for_round refreshed the known-peer cache; subscribe to
            // (up to numNodes of) them.
            let peers: Vec<NodeId> = {
                let inner = me.inner.borrow();
                inner.known_peers.iter().copied().take(limit).collect()
            };
            me.establish_subscription(qid, peers, period);
        }));
    }

    fn handle_reply(&self, qid: u64, items: Vec<CxtItem>) {
        let finished = {
            let mut inner = self.inner.borrow_mut();
            let Some(pos) = inner.pending.iter().position(|p| p.qid == qid) else {
                return;
            };
            let p = &mut inner.pending[pos];
            p.items.extend(items);
            p.expected = p.expected.saturating_sub(1);
            let done_by_count = match p.spec.num_nodes {
                NumNodes::First(k) => p.items.len() >= k as usize,
                NumNodes::All => false,
            };
            if p.expected == 0 || done_by_count {
                Some(inner.pending.remove(pos))
            } else {
                None
            }
        };
        if let Some(mut p) = finished {
            let items = finalize_items(std::mem::take(&mut p.items), &p.spec);
            if let Some(cb) = p.cb.take() {
                cb(Ok(items));
            }
        }
    }

    /// Finds peers advertising a Contory context service for the type,
    /// using the cached neighbourhood when fresh (the paper's periodic
    /// queries run "without discovery").
    fn peers_for_round(&self, spec: AdHocSpec, cb: Done<ItemsResult>) {
        let (cache_ok, peers) = {
            let inner = self.inner.borrow();
            (
                inner.sim.now() <= inner.peers_fresh_until && !inner.known_peers.is_empty(),
                inner.known_peers.clone(),
            )
        };
        if cache_ok {
            self.query_peers(peers, spec, cb);
            return;
        }
        let me = self.clone();
        self.radio().inquiry(move |res| match res {
            // The radio is already inquiring (e.g. a recovery probe):
            // this round simply finds nobody rather than failing the
            // whole mechanism.
            Err(BtError::Busy) => cb(Ok(Vec::new())),
            Err(e) => cb(Err(map_bt_err(e))),
            Ok(found) => {
                // SDP-filter the found devices one by one.
                me.sdp_filter(found, Vec::new(), spec, cb);
            }
        });
    }

    /// Sequentially SDP-queries candidates, keeping those that advertise
    /// a Contory context service for the spec's type.
    fn sdp_filter(
        &self,
        mut candidates: Vec<NodeId>,
        mut matching: Vec<NodeId>,
        spec: AdHocSpec,
        cb: Done<ItemsResult>,
    ) {
        let Some(next) = candidates.pop() else {
            {
                let mut inner = self.inner.borrow_mut();
                inner.known_peers = matching.clone();
                let now = inner.sim.now();
                inner.peers_fresh_until = now + PEER_CACHE_TTL;
            }
            self.query_peers(matching, spec, cb);
            return;
        };
        let me = self.clone();
        let uuid = format!("{CONTORY_SERVICE_PREFIX}{}", spec.cxt_type);
        self.radio().sdp_query(next, move |res| {
            if let Ok(records) = res {
                if records.iter().any(|r| r.uuid == uuid) {
                    matching.push(next);
                }
            }
            me.sdp_filter(candidates, matching, spec, cb);
        });
    }

    /// Sends the query to (up to `numNodes`) peers over (cached) links.
    fn query_peers(&self, peers: Vec<NodeId>, spec: AdHocSpec, cb: Done<ItemsResult>) {
        let limit = match spec.num_nodes {
            NumNodes::All => peers.len(),
            NumNodes::First(k) => peers.len().min(k as usize),
        };
        let targets: Vec<NodeId> = peers.into_iter().take(limit).collect();
        if targets.is_empty() {
            let sim = self.sim();
            sim.schedule_in(SimDuration::ZERO, move || cb(Ok(Vec::new())));
            return;
        }
        let qid = {
            let mut inner = self.inner.borrow_mut();
            inner.next_qid += 1;
            let qid = inner.next_qid;
            inner.pending.push(PendingRound {
                qid,
                expected: targets.len(),
                items: Vec::new(),
                spec: spec.clone(),
                cb: Some(cb),
            });
            qid
        };
        for peer in targets {
            self.send_query_to(peer, qid, spec.clone());
        }
        // Round timeout: return whatever arrived.
        let me = self.clone();
        self.sim().schedule_in(ADHOC_REPLY_TIMEOUT, move || {
            let finished = {
                let mut inner = me.inner.borrow_mut();
                inner
                    .pending
                    .iter()
                    .position(|p| p.qid == qid)
                    .map(|pos| inner.pending.remove(pos))
            };
            if let Some(mut p) = finished {
                let items = finalize_items(std::mem::take(&mut p.items), &p.spec);
                if let Some(cb) = p.cb.take() {
                    cb(Ok(items));
                }
            }
        });
    }

    fn send_query_to(&self, peer: NodeId, qid: u64, spec: AdHocSpec) {
        let link = self.inner.borrow().peer_links.get(&peer).copied();
        match link {
            Some(link) => {
                let msg = BtMsg::Query { qid, spec };
                let size = msg.wire_size();
                let me = self.clone();
                self.radio().send(link, size, Rc::new(msg), move |res| {
                    if res.is_err() {
                        me.handle_reply(qid, Vec::new()); // count the peer out
                    }
                });
            }
            None => {
                let me = self.clone();
                self.radio().connect(peer, move |res| match res {
                    Ok(link) => {
                        me.inner.borrow_mut().peer_links.insert(peer, link);
                        me.send_query_to(peer, qid, spec);
                    }
                    Err(_e) => me.handle_reply(qid, Vec::new()),
                });
            }
        }
    }
}

fn key_allows(published_key: Option<&str>, presented: Option<&str>) -> bool {
    match published_key {
        None => true,
        Some(k) => presented == Some(k),
    }
}

/// Applies entity filtering and the numNodes cap to gathered items.
fn finalize_items(mut items: Vec<CxtItem>, spec: &AdHocSpec) -> Vec<CxtItem> {
    if let Some(entity) = &spec.entity {
        items.retain(|i| {
            i.source
                .as_ref()
                .is_some_and(|s| s.0.contains(entity.0.as_str()))
        });
    }
    if let NumNodes::First(k) = spec.num_nodes {
        items.truncate(k as usize);
    }
    items
}

fn map_bt_err(e: BtError) -> RefError {
    match e {
        BtError::RadioOff => RefError::Unavailable("bluetooth radio off".into()),
        BtError::Busy => RefError::Unavailable("bluetooth radio busy".into()),
        BtError::OutOfRange(n) => RefError::NotFound(format!("{n} out of range")),
        BtError::PeerUnavailable(n) => RefError::NotFound(format!("{n} unavailable")),
        BtError::LinkClosed(_) => RefError::Unavailable("bluetooth link closed".into()),
    }
}

impl BtReference for SimBtReference {
    fn is_available(&self) -> bool {
        self.radio().is_on()
    }

    fn discover_sensor(&self, cxt_type: &str, cb: Done<Result<SourceId, RefError>>) {
        let me = self.clone();
        let wanted = cxt_type.to_owned();
        self.radio().inquiry(move |res| match res {
            Err(e) => cb(Err(map_bt_err(e))),
            Ok(found) => me.sdp_find_sensor(found, wanted, cb),
        });
    }

    fn open_sensor_stream(
        &self,
        source: &SourceId,
        cxt_type: &str,
        on_items: OnItems,
        on_error: OnRefError,
        cb: Done<Result<StreamHandle, RefError>>,
    ) {
        let Some(node) = parse_bt_source(source) else {
            let sim = self.sim();
            let src = source.clone();
            sim.schedule_in(SimDuration::ZERO, move || {
                cb(Err(RefError::NotFound(format!("bad source {src}"))))
            });
            return;
        };
        let me = self.clone();
        let cxt_type = cxt_type.to_owned();
        self.radio().connect(node, move |res| match res {
            Err(e) => cb(Err(map_bt_err(e))),
            Ok(link) => {
                let handle = {
                    let mut inner = me.inner.borrow_mut();
                    inner.next_stream += 1;
                    let handle = StreamHandle(inner.next_stream);
                    inner.streams.push(StreamState {
                        handle,
                        link,
                        cxt_type,
                        on_items,
                        on_error,
                    });
                    handle
                };
                cb(Ok(handle));
            }
        });
    }

    fn close_sensor_stream(&self, handle: StreamHandle) {
        let link = {
            let mut inner = self.inner.borrow_mut();
            let link = inner
                .streams
                .iter()
                .find(|s| s.handle == handle)
                .map(|s| s.link);
            inner.streams.retain(|s| s.handle != handle);
            link
        };
        if let Some(link) = link {
            self.radio().disconnect(link);
        }
    }

    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>) {
        if !self.is_available() {
            let sim = self.sim();
            sim.schedule_in(SimDuration::ZERO, move || {
                cb(Err(RefError::Unavailable("bluetooth radio off".into())))
            });
            return;
        }
        self.peers_for_round(spec.clone(), cb);
    }

    fn adhoc_subscribe(
        &self,
        spec: &AdHocSpec,
        period: SimDuration,
        on_items: OnItems,
        on_error: OnRefError,
    ) -> StreamHandle {
        let qid = {
            let mut inner = self.inner.borrow_mut();
            inner.next_qid += 1;
            let qid = inner.next_qid;
            inner.adhoc_subs.insert(
                qid,
                AdHocSub {
                    on_items,
                    on_error: on_error.clone(),
                    spec: spec.clone(),
                    peers: Vec::new(),
                },
            );
            qid
        };
        if !self.is_available() {
            let sim = self.sim();
            sim.schedule_in(SimDuration::ZERO, move || {
                on_error(RefError::Unavailable("bluetooth radio off".into()))
            });
            return StreamHandle(qid);
        }
        self.resolve_subscription_peers(qid, period);
        StreamHandle(qid)
    }

    fn adhoc_unsubscribe(&self, handle: StreamHandle) {
        let qid = handle.0;
        let peers = {
            let mut inner = self.inner.borrow_mut();
            match inner.adhoc_subs.remove(&qid) {
                Some(sub) => sub.peers,
                None => return,
            }
        };
        for peer in peers {
            let link = self.inner.borrow().peer_links.get(&peer).copied();
            if let Some(link) = link {
                let msg = BtMsg::Cancel { qid };
                let size = msg.wire_size();
                self.radio().send(link, size, Rc::new(msg), |_res| {});
            }
        }
    }

    fn publish(&self, item: &CxtItem, key: Option<String>, cb: Done<Result<(), RefError>>) {
        let record = ServiceRecord::new(
            format!("{CONTORY_SERVICE_PREFIX}{}", item.cxt_type),
            "contory",
        )
        .with_attribute("type", item.cxt_type.clone())
        .with_attribute("access", if key.is_some() { "authenticated" } else { "public" });
        {
            let mut inner = self.inner.borrow_mut();
            let entity = inner.entity.clone();
            inner.serving.insert(
                item.cxt_type.clone(),
                (item.clone().with_source(format!("bt://{entity}")), key),
            );
        }
        self.radio()
            .register_service(record, move |res| cb(res.map_err(map_bt_err)));
    }

    fn unpublish(&self, cxt_type: &str) {
        self.inner.borrow_mut().serving.remove(cxt_type);
        self.radio()
            .unregister_service(&format!("{CONTORY_SERVICE_PREFIX}{cxt_type}"));
    }
}

impl SimBtReference {
    fn sdp_find_sensor(
        &self,
        mut candidates: Vec<NodeId>,
        cxt_type: String,
        cb: Done<Result<SourceId, RefError>>,
    ) {
        let Some(next) = candidates.pop() else {
            cb(Err(RefError::NotFound(format!(
                "no BT sensor serving {cxt_type}"
            ))));
            return;
        };
        let me = self.clone();
        self.radio().sdp_query(next, move |res| {
            let found = res.map(|records| {
                records.iter().any(|r| sensor_record_serves(r, &cxt_type))
            });
            match found {
                Ok(true) => cb(Ok(SourceId::new(format!("bt://node{}", next.0)))),
                _ => me.sdp_find_sensor(candidates, cxt_type, cb),
            }
        });
    }
}

/// Whether an SDP record advertises a *sensor* for the context type (a
/// GPS-NMEA serial service serves `location`). Contory context services
/// — peers' published items — are explicitly not sensors: they are served
/// by the ad hoc mechanism, not the intSensor one.
fn sensor_record_serves(record: &ServiceRecord, cxt_type: &str) -> bool {
    if record.uuid.starts_with(CONTORY_SERVICE_PREFIX) {
        return false;
    }
    match record.attributes.get("type").map(String::as_str) {
        Some("gps-nmea") => cxt_type == "location",
        Some(t) => t == cxt_type,
        None => false,
    }
}

fn parse_bt_source(source: &SourceId) -> Option<NodeId> {
    source
        .0
        .strip_prefix("bt://node")
        .and_then(|s| s.parse().ok())
        .map(NodeId)
}

impl fmt::Debug for SimBtReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SimBtReference")
            .field("serving", &inner.serving.len())
            .field("streams", &inner.streams.len())
            .finish()
    }
}

// ------------------------------------------------------------------
// WiFi / Smart Messages
// ------------------------------------------------------------------

/// The SM-backed `WiFiReference`.
#[derive(Clone)]
pub struct SimWifiReference {
    sim: Sim,
    sm: SmNode,
    wifi: WifiRadio,
    entity: String,
    world: radio::World,
    /// Testbed-wide map of entity names to nodes (for `entity(...)`
    /// destinations).
    entities: Rc<RefCell<BTreeMap<String, NodeId>>>,
}

impl SimWifiReference {
    /// Creates the reference over an installed SM runtime.
    pub fn new(
        sim: &Sim,
        sm: &SmNode,
        wifi: &WifiRadio,
        entity: &str,
        world: &radio::World,
        entities: Rc<RefCell<BTreeMap<String, NodeId>>>,
    ) -> Self {
        SimWifiReference {
            sim: sim.clone(),
            sm: sm.clone(),
            wifi: wifi.clone(),
            entity: entity.to_owned(),
            world: world.clone(),
            entities,
        }
    }
}

impl WifiReference for SimWifiReference {
    fn is_available(&self) -> bool {
        self.wifi.is_joined()
    }

    fn adhoc_round(&self, spec: &AdHocSpec, cb: Done<ItemsResult>) {
        if !self.is_available() {
            let sim = self.sim.clone();
            sim.schedule_in(SimDuration::ZERO, move || {
                cb(Err(RefError::Unavailable("wifi not joined".into())))
            });
            return;
        }
        let target_entity = spec
            .entity
            .as_ref()
            .and_then(|e| self.entities.borrow().get(&e.0).copied());
        if spec.entity.is_some() && target_entity.is_none() {
            let sim = self.sim.clone();
            let who = spec.entity.clone().expect("checked");
            sim.schedule_in(SimDuration::ZERO, move || {
                cb(Err(RefError::NotFound(format!("unknown entity {who}"))))
            });
            return;
        }
        let filter_spec = spec.clone();
        let finder_spec = FinderSpec {
            tag: spec.cxt_type.clone(),
            key: spec.key.clone(),
            filter: Some(Rc::new(move |tag: &Tag, now: SimTime| {
                match &tag.value.data {
                    Some(data) => match data.clone().downcast::<CxtItem>() {
                        Ok(item) => filter_spec.matches(&item, now),
                        Err(_) => false,
                    },
                    None => false,
                }
            })),
            num_nodes: match spec.num_nodes {
                NumNodes::All => smartmsg::finder::NumNodes::All,
                NumNodes::First(k) => smartmsg::finder::NumNodes::First(k),
            },
            num_hops: spec.num_hops,
            query_size: contory::query::CxtQuery::WIRE_SIZE,
            target_entity,
        };
        let region = spec.region;
        let num_hops = spec.num_hops;
        let world = self.world.clone();
        let timeout = SimDuration::from_secs(10) + SimDuration::from_secs(4) * num_hops as u64;
        self.sm.inject(
            Box::new(Finder::new(finder_spec)),
            timeout,
            move |outcome| match outcome {
                SmOutcome::Completed(_) => {
                    let results = outcome
                        .completed_as::<Vec<FinderResult>>()
                        .expect("finder payload");
                    let items: Vec<CxtItem> = results
                        .iter()
                        // Providers that drifted out of the hop range of
                        // interest are discarded (the paper's hopCnt check).
                        .filter(|r| r.found_depth <= num_hops)
                        // Region destinations: the *provider node* must be
                        // inside the monitored region.
                        .filter(|r| provider_in_region(&world, r.provider, region))
                        .filter_map(|r| {
                            r.tag
                                .value
                                .data
                                .clone()
                                .and_then(|d| d.downcast::<CxtItem>().ok())
                                .map(|i| i.as_ref().clone())
                        })
                        .collect();
                    cb(Ok(items));
                }
                SmOutcome::TimedOut => cb(Err(RefError::Timeout)),
                SmOutcome::Failed(e) => cb(Err(RefError::Unavailable(e.to_string()))),
            },
        );
    }

    fn publish(&self, item: &CxtItem, key: Option<String>, cb: Done<Result<(), RefError>>) {
        let mut tag = Tag::new(
            item.cxt_type.clone(),
            TagValue::with_data(
                item.value_text(),
                Rc::new(item.clone().with_source(format!("wifi://{}", self.entity))),
                item.wire_size(),
            ),
            self.sim.now(),
        );
        if let Some(lifetime) = item.lifetime {
            tag = tag.with_lifetime(lifetime);
        }
        if let Some(k) = key {
            tag = tag.with_key(k);
        }
        self.sm.publish_tag(tag, move || cb(Ok(())));
    }

    fn unpublish(&self, cxt_type: &str) {
        self.sm.remove_tag(cxt_type);
    }
}

/// Region destinations: true when the providing node sits inside the
/// monitored region (queries whose destination is "the coordinates of a
/// region to be monitored", §4.2).
fn provider_in_region(
    world: &radio::World,
    provider: NodeId,
    region: Option<(f64, f64, f64)>,
) -> bool {
    let Some((x, y, r)) = region else {
        return true;
    };
    world
        .position_of(provider)
        .is_some_and(|p| Region::new(Position::new(x, y), r).contains(p))
}

impl fmt::Debug for SimWifiReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimWifiReference")
            .field("entity", &self.entity)
            .field("joined", &self.is_available())
            .finish()
    }
}

// ------------------------------------------------------------------
// Cellular / Fuego
// ------------------------------------------------------------------

/// The Fuego-backed `2G/3GReference`.
pub struct SimCellReference {
    modem: CellModem,
    client: InfraClient,
    entity: String,
    position: Rc<dyn Fn() -> Option<Position>>,
    subs: RefCell<BTreeMap<u64, InfraSubscription>>,
    next_sub: std::cell::Cell<u64>,
}

impl SimCellReference {
    /// Creates the reference. `position` georeferences stored items.
    pub fn new(
        modem: &CellModem,
        client: &InfraClient,
        entity: &str,
        position: Rc<dyn Fn() -> Option<Position>>,
    ) -> Self {
        SimCellReference {
            modem: modem.clone(),
            client: client.clone(),
            entity: entity.to_owned(),
            position,
            subs: RefCell::new(BTreeMap::new()),
            next_sub: std::cell::Cell::new(0),
        }
    }

    fn infra_query(&self, spec: &InfraSpec) -> InfraQuery {
        InfraQuery {
            item_type: spec.cxt_type.clone(),
            entity: spec.entity.clone(),
            region: spec
                .region
                .map(|(x, y, r)| Region::new(Position::new(x, y), r)),
            freshness: spec.freshness,
            max_items: spec.max_items,
        }
    }
}

fn map_req_err(e: RequestError) -> RefError {
    match e {
        RequestError::Timeout => RefError::Timeout,
        RequestError::NoService => RefError::NotFound("no such infrastructure service".into()),
        RequestError::Link(e) => RefError::Unavailable(e.to_string()),
    }
}

impl CellReference for SimCellReference {
    fn is_available(&self) -> bool {
        self.modem.is_on()
    }

    fn store(&self, item: &CxtItem, cb: Done<Result<(), RefError>>) {
        let record = item_to_record(item, &self.entity, (self.position)());
        self.client
            .store(record, move |res| cb(res.map_err(map_req_err)));
    }

    fn fetch(&self, spec: &InfraSpec, cb: Done<ItemsResult>) {
        let q = self.infra_query(spec);
        self.client
            .query(&q, SimDuration::from_secs(30), move |res| match res {
                Ok(records) => cb(Ok(records.iter().map(record_to_item).collect())),
                Err(e) => cb(Err(map_req_err(e))),
            });
    }

    fn subscribe(
        &self,
        spec: &InfraSpec,
        mode: InfraPushMode,
        on_items: OnItems,
    ) -> InfraSubHandle {
        let q = self.infra_query(spec);
        let push_mode = match mode {
            InfraPushMode::Periodic(every) => PushMode::Periodic(every),
            InfraPushMode::OnArrival => PushMode::OnStore,
        };
        let sub = self.client.subscribe(&q, push_mode, move |records| {
            let items: Vec<CxtItem> = records.iter().map(record_to_item).collect();
            if !items.is_empty() {
                on_items(items);
            }
        });
        self.next_sub.set(self.next_sub.get() + 1);
        let handle = InfraSubHandle(self.next_sub.get());
        self.subs.borrow_mut().insert(handle.0, sub);
        handle
    }

    fn unsubscribe(&self, handle: InfraSubHandle) {
        if let Some(sub) = self.subs.borrow_mut().remove(&handle.0) {
            sub.cancel();
        }
    }
}

impl fmt::Debug for SimCellReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCellReference")
            .field("entity", &self.entity)
            .field("subs", &self.subs.borrow().len())
            .finish()
    }
}
