//! Testbed assembly: whole-device and whole-scenario builders.
//!
//! [`Testbed`] owns the shared substrate (simulator, world, radio
//! mediums, SM platform, event broker, context infrastructure, ground
//! truth); [`Testbed::add_phone`] assembles one device — phone model,
//! radios, references, ContextFactory — and registers it under an entity
//! name, mirroring the paper's rig of Nokia 6630/7610 phones and 9500
//! communicators.

use crate::refs_impl::{
    SimBtReference, SimCellReference, SimInternalReference, SimWifiReference,
};
use contory::refs::References;
use contory::{Client, ContextFactory, FactoryConfig, QueryId};
use fuego::{ContextInfrastructure, EventBroker, FuegoClient, InfraClient};
use phone::{Phone, PhoneConfig, PhoneModel};
use radio::bt::{BtMedium, BtParams, BtRadio};
use radio::cell::{CellModem, CellNetwork, CellParams};
use radio::wifi::{WifiMedium, WifiParams, WifiRadio};
use radio::{NodeId, Position, World};
use sensors::{BtGpsDevice, EnvField, Environment, WeatherStation};
use simkit::{FaultInjector, FaultPlan, ShardId, Sim, SimDuration, SimTime};
use smartmsg::{SmNode, SmParams, SmPlatform};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Testbed-wide configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Master seed; everything derives from it deterministically.
    pub seed: u64,
    /// Ground-truth environment seed.
    pub env_seed: u64,
    /// Partition count for the sharded engine: devices are assigned to
    /// shards round-robin in creation order, and radio deliveries carry
    /// the receiver's shard as their event-ordering tag. 1 (the
    /// default) keeps every node on shard 0 — the classic sequential
    /// path, bit-for-bit.
    pub shards: u32,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 2006,
            env_seed: 2005,
            shards: 1,
        }
    }
}

/// Per-device setup passed to [`Testbed::add_phone`].
#[derive(Clone, Debug)]
pub struct PhoneSetup {
    /// Entity name (e.g. `"boat-1"`).
    pub name: String,
    /// Hardware profile.
    pub model: PhoneModel,
    /// Initial position (use [`Testbed::add_mobile_phone`] for tracks).
    pub position: Position,
    /// Wire a multimeter in series (measurement posture).
    pub metered: bool,
    /// Integrated sensors (empty = paper-faithful: none).
    pub internal_sensors: Vec<EnvField>,
    /// Power the WiFi radio up at start (expensive!).
    pub wifi_on: bool,
    /// Turn the GSM radio on at start.
    pub cell_on: bool,
    /// Middleware configuration.
    pub factory: FactoryConfig,
}

impl PhoneSetup {
    /// A Nokia 6630 in the paper's measurement posture (meter in series,
    /// radios off, no internal sensors).
    pub fn nokia6630(name: impl Into<String>, position: Position) -> Self {
        PhoneSetup {
            name: name.into(),
            model: PhoneModel::Nokia6630,
            position,
            metered: true,
            internal_sensors: Vec::new(),
            wifi_on: false,
            cell_on: false,
            factory: FactoryConfig::default(),
        }
    }

    /// A Nokia 9500 communicator with WiFi up (not metered — the paper's
    /// meter browned these out; energy comes from the power model).
    pub fn nokia9500(name: impl Into<String>, position: Position) -> Self {
        PhoneSetup {
            name: name.into(),
            model: PhoneModel::Nokia9500,
            position,
            metered: false,
            internal_sensors: Vec::new(),
            wifi_on: true,
            cell_on: false,
            factory: FactoryConfig::default(),
        }
    }
}

/// One assembled device.
pub struct TestbedPhone {
    name: String,
    node: NodeId,
    phone: Phone,
    factory: ContextFactory,
    bt_radio: BtRadio,
    wifi_radio: Option<WifiRadio>,
    sm_node: Option<SmNode>,
    modem: Option<CellModem>,
    fuego: Option<FuegoClient>,
    bt_ref: Rc<SimBtReference>,
    wifi_ref: Option<Rc<SimWifiReference>>,
    cell_ref: Rc<SimCellReference>,
    internal_ref: Option<Rc<SimInternalReference>>,
}

impl TestbedPhone {
    /// Entity name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// World node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The device model (battery, power, meter).
    pub fn phone(&self) -> &Phone {
        &self.phone
    }

    /// The Contory middleware instance.
    pub fn factory(&self) -> &ContextFactory {
        &self.factory
    }

    /// The Bluetooth radio.
    pub fn bt_radio(&self) -> &BtRadio {
        &self.bt_radio
    }

    /// The WiFi radio, on models that have one.
    pub fn wifi_radio(&self) -> Option<&WifiRadio> {
        self.wifi_radio.as_ref()
    }

    /// The SM runtime, on models with WiFi.
    pub fn sm_node(&self) -> Option<&SmNode> {
        self.sm_node.as_ref()
    }

    /// The cellular modem.
    pub fn modem(&self) -> Option<&CellModem> {
        self.modem.as_ref()
    }

    /// The Fuego client.
    pub fn fuego(&self) -> Option<&FuegoClient> {
        self.fuego.as_ref()
    }

    /// The BT reference (benches measure raw operations through it).
    pub fn bt_reference(&self) -> Rc<SimBtReference> {
        self.bt_ref.clone()
    }

    /// The WiFi reference, on models with the radio.
    pub fn wifi_reference(&self) -> Option<Rc<SimWifiReference>> {
        self.wifi_ref.clone()
    }

    /// The cellular reference.
    pub fn cell_reference(&self) -> Rc<SimCellReference> {
        self.cell_ref.clone()
    }

    /// The internal-sensor reference, when the setup configured sensors.
    pub fn internal_reference(&self) -> Option<Rc<SimInternalReference>> {
        self.internal_ref.clone()
    }

    /// Convenience: parse and submit a query.
    ///
    /// # Errors
    ///
    /// Propagates [`contory::ContoryError`] from the factory.
    pub fn submit(
        &self,
        query_text: &str,
        client: Rc<dyn Client>,
    ) -> Result<QueryId, contory::ContoryError> {
        self.factory.process_cxt_query_text(query_text, client)
    }
}

impl fmt::Debug for TestbedPhone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestbedPhone")
            .field("name", &self.name)
            .field("node", &self.node)
            .field("model", &self.phone.model())
            .finish()
    }
}

/// The shared substrate plus registries.
pub struct Testbed {
    /// The simulator.
    pub sim: Sim,
    /// Node positions and mobility.
    pub world: World,
    /// Ground-truth environment fields.
    pub env: Environment,
    /// Bluetooth medium.
    pub bt: BtMedium,
    /// WiFi ad hoc medium.
    pub wifi: WifiMedium,
    /// Cellular network.
    pub cell: CellNetwork,
    /// Smart Messages platform.
    pub sm: SmPlatform,
    /// Fixed-side event broker.
    pub broker: EventBroker,
    /// Remote context infrastructure.
    pub infra: ContextInfrastructure,
    cfg: TestbedConfig,
    entities: Rc<RefCell<BTreeMap<String, NodeId>>>,
    /// Keeps every assembled device alive: a phone does not vanish from
    /// the simulated world when the caller drops its handle.
    devices: RefCell<Vec<Rc<TestbedPhone>>>,
    next_seed: std::cell::Cell<u64>,
}

impl Testbed {
    /// Builds an empty testbed.
    pub fn new(cfg: TestbedConfig) -> Self {
        let sim = Sim::new();
        let world = World::new(&sim);
        let env = Environment::new(cfg.env_seed);
        let bt = BtMedium::new(&sim, &world, BtParams::default());
        let wifi = WifiMedium::new(&sim, &world, WifiParams::default());
        let cell = CellNetwork::new(&sim, CellParams::default(), cfg.seed ^ 0xce11);
        let sm = SmPlatform::new(&sim, SmParams::default());
        let broker = EventBroker::new(&sim, &cell);
        let infra = ContextInfrastructure::new(&sim, &broker);
        Testbed {
            sim,
            world,
            env,
            bt,
            wifi,
            cell,
            sm,
            broker,
            infra,
            cfg,
            entities: Rc::new(RefCell::new(BTreeMap::new())),
            devices: RefCell::new(Vec::new()),
            next_seed: std::cell::Cell::new(1),
        }
    }

    /// A testbed with default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Testbed::new(TestbedConfig {
            seed,
            env_seed: seed ^ 0xe57,
            ..TestbedConfig::default()
        })
    }

    /// A testbed partitioned over `shards` shards (see
    /// [`TestbedConfig::shards`]). `with_seed_and_shards(s, 1)` is
    /// exactly [`Testbed::with_seed`]`(s)`.
    pub fn with_seed_and_shards(seed: u64, shards: u32) -> Self {
        Testbed::new(TestbedConfig {
            seed,
            env_seed: seed ^ 0xe57,
            shards: shards.max(1),
        })
    }

    /// The shard a node is assigned to (shard 0 when unassigned).
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        self.world.shard_of(node)
    }

    fn fresh_seed(&self) -> u64 {
        let s = self.next_seed.get();
        self.next_seed.set(s + 1);
        self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ s
    }

    /// Resolves an entity name to its node.
    pub fn entity_node(&self, name: &str) -> Option<NodeId> {
        self.entities.borrow().get(name).copied()
    }

    /// Assembles a device per the setup and registers its entity name.
    /// The testbed keeps the device alive; the returned handle is shared.
    pub fn add_phone(&self, setup: PhoneSetup) -> Rc<TestbedPhone> {
        let node = self.world.add_node(setup.position);
        self.add_phone_at_node(setup, node)
    }

    /// Assembles a device following a waypoint track (a sailing boat).
    pub fn add_mobile_phone(
        &self,
        setup: PhoneSetup,
        waypoints: Vec<(SimTime, Position)>,
    ) -> Rc<TestbedPhone> {
        let node = self.world.add_mobile_node(waypoints);
        self.add_phone_at_node(setup, node)
    }

    /// Every device assembled so far, in creation order.
    pub fn devices(&self) -> Vec<Rc<TestbedPhone>> {
        self.devices.borrow().clone()
    }

    fn add_phone_at_node(&self, setup: PhoneSetup, node: NodeId) -> Rc<TestbedPhone> {
        // Round-robin partition assignment in creation order; with the
        // default 1-shard config every device stays on shard 0 and no
        // event tag ever differs from the classic path.
        let shard = ShardId(self.devices.borrow().len() as u32 % self.cfg.shards.max(1));
        self.world.set_shard(node, shard);
        let spec = setup.model.spec();
        let phone = Phone::new(
            &self.sim,
            PhoneConfig {
                model: setup.model,
                seed: self.fresh_seed(),
                with_meter: setup.metered,
                display_on: false,
                backlight_on: false,
            },
        );
        self.entities.borrow_mut().insert(setup.name.clone(), node);

        // Bluetooth: every model has it; radio starts in page/inquiry scan.
        let bt_radio = self.bt.attach(node, &phone, self.fresh_seed());
        let bt_ref = Rc::new(SimBtReference::new(&self.sim, &bt_radio, &setup.name));

        // WiFi + Smart Messages on models that have the radio.
        let (wifi_radio, sm_node, wifi_ref) = if spec.has_wifi {
            let radio = self.wifi.attach(node, &phone, self.fresh_seed());
            if setup.wifi_on {
                radio.power_on(|| {});
            }
            let sm_node = self.sm.install(&radio, &phone, self.fresh_seed());
            let wifi_ref = Rc::new(SimWifiReference::new(
                &self.sim,
                &sm_node,
                &radio,
                &setup.name,
                &self.world,
                self.entities.clone(),
            ));
            (Some(radio), Some(sm_node), Some(wifi_ref))
        } else {
            (None, None, None)
        };

        // Cellular + Fuego (all models have at least 2G data).
        let modem = self.cell.attach(node, &phone, self.fresh_seed());
        modem.set_shard(shard);
        if setup.cell_on {
            modem.set_radio(true);
        }
        let fuego = FuegoClient::new(&self.sim, &modem, setup.name.clone());
        let infra_client = InfraClient::new(&fuego);
        let world = self.world.clone();
        let cell_ref = Rc::new(SimCellReference::new(
            &modem,
            &infra_client,
            &setup.name,
            Rc::new(move || world.position_of(node)),
        ));

        // Internal sensors (optional).
        let internal_ref = if setup.internal_sensors.is_empty() {
            None
        } else {
            let world = self.world.clone();
            Some(Rc::new(SimInternalReference::new(
                &self.sim,
                &self.env,
                &setup.internal_sensors,
                Rc::new(move || world.position_of(node).unwrap_or_default()),
                &setup.name,
                self.fresh_seed(),
            )))
        };

        let refs = References {
            internal: internal_ref
                .clone()
                .map(|i| i as Rc<dyn contory::refs::InternalReference>),
            bt: Some(bt_ref.clone()),
            wifi: wifi_ref
                .clone()
                .map(|w| w as Rc<dyn contory::refs::WifiReference>),
            cell: Some(cell_ref.clone()),
        };
        let factory = ContextFactory::new(&self.sim, refs, setup.factory.clone());
        phone.set_middleware_running(true);

        let device = Rc::new(TestbedPhone {
            name: setup.name,
            node,
            phone,
            factory,
            bt_radio,
            wifi_radio,
            sm_node,
            modem: Some(modem),
            fuego: Some(fuego),
            bt_ref,
            wifi_ref,
            cell_ref,
            internal_ref,
        });
        self.devices.borrow_mut().push(device.clone());
        device
    }

    /// Adds a BT-GPS puck on its own world node near `position`,
    /// streaming a burst per `interval`.
    pub fn add_bt_gps(&self, position: Position, interval: SimDuration) -> BtGpsDevice {
        let node = self.world.add_node(position);
        BtGpsDevice::new(
            &self.sim,
            &self.bt,
            &self.world,
            node,
            interval,
            self.fresh_seed(),
        )
    }

    /// Adds a BT-GPS puck mounted on an existing (possibly moving) node —
    /// the boat the phone rides on.
    pub fn add_bt_gps_on(&self, node: NodeId, interval: SimDuration) -> BtGpsDevice {
        BtGpsDevice::new(
            &self.sim,
            &self.bt,
            &self.world,
            node,
            interval,
            self.fresh_seed(),
        )
    }

    /// Wires the standard kill-switch targets into a [`FaultInjector`]
    /// and installs the plan's schedule. Call after assembling the
    /// devices the plan addresses. Target naming convention:
    ///
    /// | target                    | kill-switch                        |
    /// |---------------------------|------------------------------------|
    /// | `broker`                  | Fuego broker outage                |
    /// | `bt:<phone>`              | Bluetooth radio power              |
    /// | `wifi:<phone>`            | WiFi radio power                   |
    /// | `cell:<phone>`            | cellular modem radio               |
    /// | `node:<phone>`            | world-node churn (vanishes)        |
    /// | `sensor:<phone>:<type>`   | integrated-sensor dropout          |
    ///
    /// Targets addressing hardware a device lacks are simply never
    /// registered; the injector still logs their transitions.
    pub fn install_faults(&self, plan: &FaultPlan) -> FaultInjector {
        let injector = FaultInjector::new(&self.sim);
        self.register_fault_targets(&injector);
        injector.install(plan);
        injector
    }

    /// Registers every device's kill-switches (and the broker's) on an
    /// injector without installing a plan — for composing schedules
    /// manually.
    pub fn register_fault_targets(&self, injector: &FaultInjector) {
        {
            let broker = self.broker.clone();
            injector.register("broker", move |up| broker.set_outage(!up));
        }
        for device in self.devices() {
            let name = device.name().to_owned();
            {
                let bt = device.bt_radio.clone();
                injector.register(format!("bt:{name}"), move |up| bt.set_power(up));
            }
            if let Some(wifi) = device.wifi_radio.clone() {
                injector.register(format!("wifi:{name}"), move |up| {
                    if up {
                        wifi.power_on(|| {});
                    } else {
                        wifi.power_off();
                    }
                });
            }
            if let Some(modem) = device.modem.clone() {
                injector.register(format!("cell:{name}"), move |up| modem.set_radio(up));
            }
            {
                let world = self.world.clone();
                let node = device.node;
                injector.register(format!("node:{name}"), move |up| {
                    world.set_node_up(node, up);
                });
            }
            if let Some(internal) = device.internal_ref.clone() {
                for cxt_type in internal.sensor_types() {
                    let internal = internal.clone();
                    let t = cxt_type.clone();
                    injector.register(format!("sensor:{name}:{cxt_type}"), move |up| {
                        internal.set_sensor_online(&t, up);
                    });
                }
            }
        }
    }

    /// Installs an "official" weather station feeding the infrastructure
    /// every `every`.
    pub fn add_weather_station(
        &self,
        name: &str,
        position: Position,
        fields: &[EnvField],
        every: SimDuration,
    ) {
        let mut station =
            WeatherStation::new(name, &self.env, position, fields, self.fresh_seed());
        let infra = self.infra.clone();
        let station_name = name.to_owned();
        let sim = self.sim.clone();
        self.sim.schedule_repeating(every, move || {
            for reading in station.observe(sim.now()) {
                let item = crate::convert::reading_to_item(
                    &reading,
                    &format!("station://{station_name}"),
                );
                infra.store(crate::convert::item_to_record(
                    &item,
                    &station_name,
                    reading.position,
                ));
            }
            true
        });
    }
}

impl fmt::Debug for Testbed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Testbed")
            .field("entities", &self.entities.borrow().len())
            .finish()
    }
}
