//! Measurement harness reproducing the paper's methodology: repeat an
//! operation, report `avg [90 % CI]`; read energy from the phone's power
//! trace (or the series multimeter) over the operation window.

use phone::{Millijoules, Milliwatts, Phone};
use simkit::stats::Summary;
use simkit::{Sim, SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// Runs the simulation until `flag` is set, returning the elapsed time.
///
/// # Panics
///
/// Panics if `max` elapses first (the operation never completed).
pub fn run_until_flag(sim: &Sim, flag: &Rc<Cell<bool>>, max: SimDuration) -> SimDuration {
    let t0 = sim.now();
    let deadline = t0 + max;
    while !flag.get() {
        assert!(
            sim.now() <= deadline,
            "operation did not complete within {max}"
        );
        assert!(sim.step(), "simulation drained before the operation completed");
    }
    sim.now() - t0
}

/// Repeats an asynchronous operation `n` times and summarizes the
/// completion latencies in milliseconds (the unit of the paper's
/// Table 1). Between repetitions the simulation settles for `settle`
/// (letting radio tails drain, as the paper's short spaced experiments
/// did).
pub fn measure_async(
    sim: &Sim,
    n: usize,
    settle: SimDuration,
    mut op: impl FnMut(usize, Box<dyn FnOnce()>),
) -> Summary {
    let mut latencies = Summary::new();
    for i in 0..n {
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let t0 = sim.now();
        op(i, Box::new(move || d.set(true)));
        while !done.get() {
            assert!(sim.step(), "operation {i} never completed");
        }
        latencies.push((sim.now() - t0).as_millis_f64());
        sim.run_for(settle);
    }
    latencies
}

/// Energy accounting over a window of a phone's life, with baseline
/// subtraction — the paper reports *per-operation* energy beyond the
/// idle floor.
pub struct EnergyProbe {
    phone: Phone,
    sim: Sim,
    start: SimTime,
}

impl EnergyProbe {
    /// Starts a probe now.
    pub fn start(sim: &Sim, phone: &Phone) -> Self {
        EnergyProbe {
            phone: phone.clone(),
            sim: sim.clone(),
            start: sim.now(),
        }
    }

    /// Total energy drawn since the probe started.
    pub fn total(&self) -> Millijoules {
        self.phone
            .power()
            .energy_between(self.start, self.sim.now())
    }

    /// Energy beyond a constant baseline draw.
    pub fn above_baseline(&self, baseline: Milliwatts) -> Millijoules {
        let window = self.sim.now() - self.start;
        let floor = baseline * window;
        Millijoules((self.total().0 - floor.0).max(0.0))
    }

    /// Mean power over the probe window.
    pub fn mean_power(&self) -> Milliwatts {
        self.phone.power().mean_between(self.start, self.sim.now())
    }

    /// Elapsed probe time.
    pub fn elapsed(&self) -> SimDuration {
        self.sim.now() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phone::{Consumer, PhoneConfig};

    #[test]
    fn run_until_flag_advances_to_the_event() {
        let sim = Sim::new();
        let flag = Rc::new(Cell::new(false));
        let f = flag.clone();
        sim.schedule_in(SimDuration::from_millis(250), move || f.set(true));
        let took = run_until_flag(&sim, &flag, SimDuration::from_secs(1));
        assert_eq!(took, SimDuration::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "drained")]
    fn run_until_flag_panics_when_nothing_happens() {
        let sim = Sim::new();
        let flag = Rc::new(Cell::new(false));
        run_until_flag(&sim, &flag, SimDuration::from_secs(1));
    }

    #[test]
    fn measure_async_summarizes_latencies() {
        let sim = Sim::new();
        let s = sim.clone();
        let summary = measure_async(&sim, 5, SimDuration::from_millis(10), move |_i, done| {
            s.schedule_in(SimDuration::from_millis(100), done);
        });
        assert_eq!(summary.count(), 5);
        assert!((summary.mean() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn energy_probe_subtracts_baseline() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        let probe = EnergyProbe::start(&sim, &phone);
        phone.power().set(Consumer::Cpu, Milliwatts(100.0));
        sim.run_for(SimDuration::from_secs(10));
        phone.power().set(Consumer::Cpu, Milliwatts(0.0));
        // total = (5.75 baseline + 100) * 10 s
        assert!((probe.total().as_joules() - 1.0575).abs() < 1e-6);
        let extra = probe.above_baseline(Milliwatts(5.75));
        assert!((extra.as_joules() - 1.0).abs() < 1e-6);
    }
}
