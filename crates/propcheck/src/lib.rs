//! Hermetic property-testing shim.
//!
//! This crate implements the *subset* of the `proptest` crate's API that
//! this workspace uses, so the test suite builds and runs fully offline
//! (the build environment has no access to crates.io). It is wired in
//! through a Cargo dependency rename — `proptest = { path = …, package =
//! "contory-propcheck" }` — so test code keeps the idiomatic
//! `use proptest::prelude::*;` imports and would compile unchanged
//! against the real crate.
//!
//! Scope and deliberate simplifications:
//!
//! - **Generation only, no shrinking.** A failing case reports the seed
//!   and case number; re-running with the same `PROPTEST_CASES` and test
//!   name reproduces it exactly (the runner is deterministic).
//! - **Regex strategies** support the character-class subset actually
//!   used (`[a-z]`, `[a-z0-9]{0,8}`, `[ -~]{0,40}`, …): concatenations
//!   of classes with optional `{m}` / `{m,n}` quantifiers.
//! - The runner draws a fixed number of cases (`PROPTEST_CASES`, default
//!   64) from per-test seeds derived by FNV-1a of the test name, so the
//!   whole suite is reproducible and independent of execution order.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case runner and test-case error type.

    /// Outcome of a single generated case, mirroring
    /// `proptest::test_runner::TestCaseError`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition; it is
        /// discarded and replaced, not counted as a failure.
        Reject(String),
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsified-property error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A discarded-case marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic generator handed to strategies (xoshiro256++
    /// seeded via SplitMix64 — self-contained, identical on every
    /// platform).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates a generator; equal seeds yield equal streams.
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let wide = (self.next_u64() as u128).wrapping_mul(n as u128);
            (wide >> 64) as u64
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of accepted cases each property must pass
    /// (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &u64| n > 0)
            .unwrap_or(64)
    }

    /// Runs one property to completion: draws deterministic cases until
    /// `case_count()` of them are accepted, panicking on the first
    /// falsified case with enough context to reproduce it.
    pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let wanted = case_count();
        let seed_base = fnv1a(name);
        let mut accepted: u64 = 0;
        let mut rejected: u64 = 0;
        let mut index: u64 = 0;
        // A property that rejects this often is effectively vacuous;
        // surface that rather than spinning.
        let reject_cap = wanted.saturating_mul(256).max(4096);
        while accepted < wanted {
            let seed = seed_base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            index += 1;
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_cap {
                        panic!(
                            "property '{name}': too many rejected cases \
                             ({rejected} rejects for {accepted}/{wanted} accepts) — \
                             weaken the prop_assume! preconditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property '{name}' falsified at case {index} (seed {seed:#x}):\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real proptest `Strategy` (which produces shrinkable
    /// value *trees*), this shim generates plain values: `generate` is
    /// the whole contract.
    pub trait Strategy: 'static {
        /// The type of generated values.
        type Value: 'static;

        /// Draws one value from the deterministic generator.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies a function to every generated value.
        fn prop_map<O: 'static, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy that
        /// value selects (monadic bind).
        fn prop_flat_map<S: Strategy, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S + 'static,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps a strategy for the inner levels. `depth`
        /// bounds the nesting; the remaining size parameters exist for
        /// proptest signature compatibility and are unused here (each
        /// level gives the leaf and the recursive arm equal weight,
        /// which keeps the expected tree size finite).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }

        /// Erases the strategy type. The result is cheaply `Clone`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy (`Clone` regardless of
    /// the underlying strategy type).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: 'static,
        F: Fn(S::Value) -> O + 'static,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T + 'static,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniformly picks one of several strategies per case (the engine
    /// behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty as $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let u = rng.unit() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, G);
    }

    // ----- regex-subset string strategies --------------------------------

    /// One atom of the supported regex subset: a set of candidate
    /// characters plus a repetition range (inclusive).
    struct Atom {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next(); // consume '-'
                match lookahead.peek() {
                    Some(&hi) if hi != ']' => {
                        chars.next(); // '-'
                        chars.next(); // hi
                        assert!(
                            c <= hi,
                            "descending range {c}-{hi} in pattern {pattern:?}"
                        );
                        for v in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            set.push(c);
        }
        assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
        set
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (u32, u32) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut body = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => body.push(c),
                None => panic!("unterminated quantifier in pattern {pattern:?}"),
            }
        }
        let parse = |s: &str| -> u32 {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in pattern {pattern:?}"))
        };
        match body.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => {
                let n = parse(&body);
                (n, n)
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern),
                '\\' => vec![chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))],
                '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => panic!(
                    "pattern {pattern:?} uses regex feature {c:?} outside the supported \
                     subset (character classes with {{m,n}} quantifiers)"
                ),
                other => vec![other],
            };
            let (min, max) = parse_quantifier(&mut chars, pattern);
            assert!(min <= max, "descending quantifier in pattern {pattern:?}");
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    /// A compiled regex-subset string strategy.
    pub struct StringPattern {
        atoms: Rc<Vec<Atom>>,
    }

    impl Clone for StringPattern {
        fn clone(&self) -> Self {
            StringPattern {
                atoms: Rc::clone(&self.atoms),
            }
        }
    }

    impl StringPattern {
        /// Compiles a pattern; panics on unsupported regex syntax.
        pub fn new(pattern: &str) -> Self {
            StringPattern {
                atoms: Rc::new(parse_pattern(pattern)),
            }
        }
    }

    impl Strategy for StringPattern {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in self.atoms.iter() {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// String literals are strategies generating matching strings, as in
    /// proptest. The pattern is re-compiled per case; these patterns are
    /// tiny, so that is in the noise.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            StringPattern::new(self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is uniform in `len` (half-open, as
    /// in `proptest::collection::vec(strat, 0..8)`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time and `Some` of the
    /// inner strategy otherwise (matching proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
///
/// The body runs inside a closure returning
/// `Result<(), TestCaseError>`, so `return Ok(());` and the
/// `prop_assert*` early returns behave as in proptest.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pc_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pc_rng);)+
                    let __pc_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            return ::std::result::Result::Ok(());
                        })();
                    __pc_outcome
                });
            }
        )*
    };
}

/// Fails the current case if the condition is false. With extra
/// arguments, they are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __pc_left = &$left;
        let __pc_right = &$right;
        if !(*__pc_left == *__pc_right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    concat!(
                        "assertion failed: `",
                        stringify!($left),
                        " == ",
                        stringify!($right),
                        "`\n  left: {:?}\n right: {:?}"
                    ),
                    __pc_left,
                    __pc_right
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is discarded and regenerated) if the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Uniformly picks among several strategies each case. (The real
/// proptest supports `weight => strategy` arms; the uniform form is the
/// only one this workspace uses.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.len()), "bad length {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let p = "[ -~]{0,40}".generate(&mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let u = (1u32..20).generate(&mut rng);
            assert!((1..20).contains(&u));
            let f = (-1e3f64..1e3).generate(&mut rng);
            assert!((-1e3..1e3).contains(&f));
            let i = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&i));
        }
    }

    #[test]
    fn union_and_recursion_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn same_seed_same_values() {
        let strat = prop_oneof![
            Just("fixed".to_owned()),
            "[a-z]{1,10}",
            (0u32..100).prop_map(|n| n.to_string()),
        ];
        let a: Vec<String> = {
            let mut rng = TestRng::new(9);
            (0..64).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = TestRng::new(9);
            (0..64).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        /// The macro surface itself: args, assume, assert, early Ok.
        #[test]
        fn macro_roundtrip(n in 0u64..1000, s in "[a-z]{1,4}") {
            prop_assume!(n != 999);
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n < 1000, "n was {n}");
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
