//! End-to-end tests: phone-side Fuego client ↔ event broker ↔ context
//! infrastructure over the simulated UMTS link.

use fuego::xml::XmlElement;
use fuego::{
    ContextInfrastructure, EventBroker, FuegoClient, InfraClient, InfraQuery, InfraRecord,
    PushMode, RequestError,
};
use phone::{Phone, PhoneConfig};
use radio::cell::{CellModem, CellNetwork, CellParams};
use radio::{NodeId, Position, Region};
use simkit::{Sim, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

struct Rig {
    sim: Sim,
    net: CellNetwork,
    broker: EventBroker,
    infra: ContextInfrastructure,
}

impl Rig {
    fn new() -> Self {
        let sim = Sim::new();
        let net = CellNetwork::new(&sim, CellParams::default(), 99);
        let broker = EventBroker::new(&sim, &net);
        let infra = ContextInfrastructure::new(&sim, &broker);
        Rig {
            sim,
            net,
            broker,
            infra,
        }
    }

    fn phone(&self, id: u32) -> (Phone, CellModem, FuegoClient) {
        let phone = Phone::new(&self.sim, PhoneConfig::default());
        let modem = self.net.attach(NodeId(id), &phone, id as u64 + 7);
        modem.set_radio(true);
        let client = FuegoClient::new(&self.sim, &modem, format!("phone-{id}"));
        (phone, modem, client)
    }
}

#[test]
fn store_then_query_round_trip() {
    let rig = Rig::new();
    let (_p, _m, client) = rig.phone(1);
    let infra_client = InfraClient::new(&client);
    let stored = Rc::new(Cell::new(false));
    let s = stored.clone();
    let record = InfraRecord::new("boat-1", "temperature", "14.0C", rig.sim.now())
        .at(Position::new(100.0, 200.0))
        .with_metadata("accuracy", "0.2");
    infra_client.store(record, move |res| {
        res.unwrap();
        s.set(true);
    });
    rig.sim.run_for(SimDuration::from_secs(30));
    assert!(stored.get());
    assert_eq!(rig.infra.record_count(), 1);

    let got: Rc<RefCell<Option<Vec<InfraRecord>>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    infra_client.query(
        &InfraQuery::for_type("temperature"),
        SimDuration::from_secs(30),
        move |res| *g.borrow_mut() = Some(res.unwrap()),
    );
    rig.sim.run_for(SimDuration::from_secs(30));
    let records = got.borrow_mut().take().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].entity, "boat-1");
    assert_eq!(records[0].value_text, "14.0C");
    assert_eq!(records[0].metadata.get("accuracy").unwrap(), "0.2");
}

#[test]
fn region_and_freshness_filters_apply() {
    let rig = Rig::new();
    let now = rig.sim.now();
    rig.infra
        .store(InfraRecord::new("b1", "wind", "5kn", now).at(Position::new(0.0, 0.0)));
    rig.infra
        .store(InfraRecord::new("b2", "wind", "9kn", now).at(Position::new(5_000.0, 0.0)));
    rig.sim.run_for(SimDuration::from_secs(120));
    rig.infra
        .store(InfraRecord::new("b3", "wind", "12kn", rig.sim.now()).at(Position::new(10.0, 0.0)));

    // Region filter: only records near the origin.
    let q = InfraQuery {
        region: Some(Region::new(Position::new(0.0, 0.0), 100.0)),
        ..InfraQuery::for_type("wind")
    };
    let hits = rig.infra.eval(&q);
    assert_eq!(hits.len(), 2);

    // Freshness filter: only the record stored just now.
    let q = InfraQuery {
        freshness: Some(SimDuration::from_secs(30)),
        ..InfraQuery::for_type("wind")
    };
    let hits = rig.infra.eval(&q);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].entity, "b3");

    // Entity + max_items.
    let q = InfraQuery {
        entity: Some("b1".into()),
        ..InfraQuery::for_type("wind")
    };
    assert_eq!(rig.infra.eval(&q).len(), 1);
    let q = InfraQuery {
        max_items: 1,
        ..InfraQuery::for_type("wind")
    };
    let hits = rig.infra.eval(&q);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].entity, "b3", "most recent first");
}

#[test]
fn periodic_subscription_pushes_batches() {
    let rig = Rig::new();
    let (_p, _m, client) = rig.phone(1);
    let infra_client = InfraClient::new(&client);
    rig.infra
        .store(InfraRecord::new("b1", "temperature", "13.5C", rig.sim.now()));
    let batches = Rc::new(Cell::new(0u32));
    let b = batches.clone();
    let sub = infra_client.subscribe(
        &InfraQuery::for_type("temperature"),
        PushMode::Periodic(SimDuration::from_secs(60)),
        move |records| {
            assert!(!records.is_empty());
            b.set(b.get() + 1);
        },
    );
    rig.sim.run_for(SimDuration::from_secs(310));
    let received = batches.get();
    assert!(
        (3..=5).contains(&received),
        "expected ~5 periodic pushes, got {received}"
    );
    sub.cancel();
    rig.sim.run_for(SimDuration::from_secs(180));
    assert!(
        batches.get() <= received + 1,
        "pushes must stop after cancel"
    );
}

#[test]
fn on_store_subscription_pushes_matching_records_only() {
    let rig = Rig::new();
    let (_p, _m, client) = rig.phone(1);
    let infra_client = InfraClient::new(&client);
    let got: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    let _sub = infra_client.subscribe(
        &InfraQuery::for_type("temperature"),
        PushMode::OnStore,
        move |records| {
            for r in records {
                g.borrow_mut().push(r.value_text);
            }
        },
    );
    rig.sim.run_for(SimDuration::from_secs(30)); // let the subscribe land
    rig.infra
        .store(InfraRecord::new("b1", "temperature", "14.0C", rig.sim.now()));
    rig.infra
        .store(InfraRecord::new("b1", "humidity", "80%", rig.sim.now()));
    rig.infra
        .store(InfraRecord::new("b2", "temperature", "15.0C", rig.sim.now()));
    rig.sim.run_for(SimDuration::from_secs(30));
    // Downlink latencies are independent log-normal draws, so the two
    // pushes may arrive in either order.
    let mut values = got.borrow().clone();
    values.sort();
    assert_eq!(values, vec!["14.0C".to_owned(), "15.0C".to_owned()]);
}

#[test]
fn request_to_unknown_service_reports_no_service() {
    let rig = Rig::new();
    let (_p, _m, client) = rig.phone(1);
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    let ev = client.make_event("no/such/service", XmlElement::new("x"));
    client.request("no/such/service", ev, SimDuration::from_secs(30), move |res| {
        g.set(Some(res.unwrap_err()));
    });
    rig.sim.run_for(SimDuration::from_secs(35));
    assert_eq!(got.take(), Some(RequestError::NoService));
}

#[test]
fn request_with_radio_off_fails_fast_and_timeout_fires_otherwise() {
    let rig = Rig::new();
    let (_p, modem, client) = rig.phone(1);
    modem.set_radio(false);
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    let ev = client.make_event("cxt/query", XmlElement::new("x"));
    client.request("cxt/query", ev, SimDuration::from_secs(30), move |res| {
        g.set(Some(res.unwrap_err()));
    });
    rig.sim.run_for(SimDuration::from_secs(1));
    assert!(matches!(got.take(), Some(RequestError::Link(_))));

    // Timeout: radio back on, but the response is lost because we turn
    // the radio off right after the uplink completes.
    modem.set_radio(true);
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    let ev = client.make_event("cxt/query", XmlElement::new("bad-query"));
    client.request("cxt/query", ev, SimDuration::from_millis(1), move |res| {
        g.set(Some(res.unwrap_err()));
    });
    rig.sim.run_for(SimDuration::from_secs(5));
    assert_eq!(got.take(), Some(RequestError::Timeout));
}

#[test]
fn broker_outage_times_out_requests_then_recovers() {
    let rig = Rig::new();
    let (_p, _m, client) = rig.phone(1);
    let infra_client = InfraClient::new(&client);

    // Store one record while healthy.
    let record = InfraRecord::new("boat-1", "temperature", "14.0C", rig.sim.now());
    infra_client.store(record, |res| res.unwrap());
    rig.sim.run_for(SimDuration::from_secs(10));
    assert_eq!(rig.infra.record_count(), 1);

    // Dark broker: queries vanish into the void and time out.
    rig.broker.set_outage(true);
    assert!(rig.broker.is_in_outage());
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    infra_client.query(
        &InfraQuery::for_type("temperature"),
        SimDuration::from_secs(5),
        move |res| g.set(Some(res.map(|r| r.len()))),
    );
    rig.sim.run_for(SimDuration::from_secs(10));
    assert_eq!(got.take(), Some(Err(RequestError::Timeout)));
    assert!(rig.broker.dropped_count() > 0);

    // Restored broker: same query succeeds, prior state intact.
    rig.broker.set_outage(false);
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    infra_client.query(
        &InfraQuery::for_type("temperature"),
        SimDuration::from_secs(30),
        move |res| g.set(Some(res.map(|r| r.len()))),
    );
    rig.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(got.take(), Some(Ok(1)));
}

#[test]
fn broker_outage_silences_subscriptions_until_restore() {
    let rig = Rig::new();
    let (_p1, _m1, alice) = rig.phone(1);
    let (_p2, _m2, bob) = rig.phone(2);
    let seen = Rc::new(Cell::new(0u32));
    let s = seen.clone();
    alice.subscribe("regatta/news", move |_ev| s.set(s.get() + 1));
    rig.sim.run_for(SimDuration::from_secs(5));

    rig.broker.set_outage(true);
    let ev = bob.make_event("regatta/news", XmlElement::new("gust"));
    // The uplink transfer itself succeeds — the *broker* eats the frame.
    bob.publish(ev, |res| res.unwrap());
    rig.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(seen.get(), 0, "dark broker must not deliver");

    rig.broker.set_outage(false);
    let ev = bob.make_event("regatta/news", XmlElement::new("gust2"));
    bob.publish(ev, |res| res.unwrap());
    rig.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(seen.get(), 1, "subscription must survive the outage");
}

#[test]
fn pubsub_between_two_phones() {
    let rig = Rig::new();
    let (_p1, _m1, alice) = rig.phone(1);
    let (_p2, _m2, bob) = rig.phone(2);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let s = seen.clone();
    bob.subscribe("regatta/positions", move |ev| {
        s.borrow_mut().push(ev.sender.clone());
    });
    rig.sim.run_for(SimDuration::from_secs(10));
    let ev = alice.make_event(
        "regatta/positions",
        XmlElement::new("pos").attr("lat", "60.1"),
    );
    alice.publish(ev, |res| res.unwrap());
    rig.sim.run_for(SimDuration::from_secs(30));
    assert_eq!(*seen.borrow(), vec!["phone-1".to_owned()]);
    assert_eq!(rig.broker.subscriber_count("regatta/positions"), 1);
    assert_eq!(rig.broker.published_count(), 1);
    assert_eq!(rig.broker.delivered_count(), 1);
}

#[test]
fn record_xml_round_trip_preserves_fields() {
    let rec = InfraRecord::new("boat-3", "pressure", "1013hPa", SimTime::from_millis(12_345))
        .at(Position::new(1.5, -2.5))
        .with_metadata("trust", "community");
    let back = InfraRecord::from_xml(&rec.to_xml()).unwrap();
    assert_eq!(back.entity, rec.entity);
    assert_eq!(back.item_type, rec.item_type);
    assert_eq!(back.value_text, rec.value_text);
    assert_eq!(back.timestamp, rec.timestamp);
    assert_eq!(back.position.unwrap().x, 1.5);
    assert_eq!(back.metadata.get("trust").unwrap(), "community");
}

#[test]
fn query_xml_round_trip_preserves_fields() {
    let q = InfraQuery {
        item_type: "wind".into(),
        entity: Some("boat-1".into()),
        region: Some(Region::new(Position::new(10.0, 20.0), 500.0)),
        freshness: Some(SimDuration::from_secs(30)),
        max_items: 10,
    };
    let back = InfraQuery::from_xml(&q.to_xml()).unwrap();
    assert_eq!(back.item_type, "wind");
    assert_eq!(back.entity.as_deref(), Some("boat-1"));
    assert_eq!(back.region.unwrap().radius, 500.0);
    assert_eq!(back.freshness, Some(SimDuration::from_secs(30)));
    assert_eq!(back.max_items, 10);
}
