//! Minimal XML document model, writer and parser.
//!
//! Fuego Core messages are XML; this module provides just enough of XML
//! to build and round-trip event notifications with realistic wire sizes:
//! elements, attributes, text content and the five predefined entities.
//! No namespaces-as-semantics, comments, CDATA or DTDs — attributes named
//! `xmlns:*` are carried verbatim like any other attribute.

use std::error::Error;
use std::fmt;

/// An XML element: name, attributes, text and child elements.
///
/// ```
/// use fuego::xml::XmlElement;
/// let doc = XmlElement::new("item")
///     .attr("type", "temperature")
///     .child(XmlElement::new("value").text("14.0"));
/// let s = doc.to_xml();
/// let back = XmlElement::parse(&s).unwrap();
/// assert_eq!(back.find("value").unwrap().text_content(), "14.0");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Text content (concatenated, stored before children on write).
    pub text: String,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
}

/// Error from [`XmlElement::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseXmlError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseXmlError {}

impl XmlElement {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attributes: Vec::new(),
            text: String::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute, builder style.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Sets the text content, builder style.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Appends a child, builder style.
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// First direct child with the given name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All direct children with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Value of an attribute, if present.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The element's own text content.
    pub fn text_content(&self) -> &str {
        &self.text
    }

    /// Serializes to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialized size in bytes (what the wire-size models use).
    pub fn wire_size(&self) -> usize {
        self.to_xml().len()
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.text.is_empty() && self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a single XML element (optionally preceded by an XML
    /// declaration and whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] on malformed input, including mismatched
    /// or unterminated tags and bad entities.
    pub fn parse(input: &str) -> Result<XmlElement, ParseXmlError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        if p.peek_str("<?") {
            p.skip_until("?>")?;
            p.skip_ws();
        }
        let el = p.element()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document element"));
        }
        Ok(el)
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseXmlError {
        ParseXmlError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(s.as_bytes()))
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseXmlError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseXmlError> {
        while self.pos < self.bytes.len() {
            if self.peek_str(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected '{end}'")))
    }

    fn name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = self.bytes.get(start..self.pos).unwrap_or_default();
        Ok(String::from_utf8_lossy(name).into_owned())
    }

    fn entity(&mut self) -> Result<char, ParseXmlError> {
        // positioned after '&'
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let ent = self.bytes.get(start..self.pos).unwrap_or_default();
                self.pos += 1;
                return match ent {
                    b"amp" => Ok('&'),
                    b"lt" => Ok('<'),
                    b"gt" => Ok('>'),
                    b"quot" => Ok('"'),
                    b"apos" => Ok('\''),
                    other => Err(self.err(format!(
                        "unknown entity &{};",
                        String::from_utf8_lossy(other)
                    ))),
                };
            }
            self.pos += 1;
        }
        Err(self.err("unterminated entity"))
    }

    fn quoted(&mut self) -> Result<String, ParseXmlError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b'"') => return Ok(out),
                Some(b'&') => out.push(self.entity()?),
                Some(b) => out.push(b as char),
            }
        }
    }

    fn element(&mut self) -> Result<XmlElement, ParseXmlError> {
        self.expect_byte(b'<')?;
        let name = self.name()?;
        let mut el = XmlElement::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_byte(b'>')?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.expect_byte(b'=')?;
                    self.skip_ws();
                    let value = self.quoted()?;
                    el.attributes.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // content
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{}>", el.name))),
                Some(b'<') => {
                    if self.peek_str("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != el.name {
                            return Err(
                                self.err(format!("mismatched </{close}> for <{}>", el.name))
                            );
                        }
                        self.skip_ws();
                        self.expect_byte(b'>')?;
                        return Ok(el);
                    }
                    el.children.push(self.element()?);
                }
                Some(b'&') => {
                    self.pos += 1;
                    let c = self.entity()?;
                    el.text.push(c);
                }
                Some(b) => {
                    // Whitespace-only text between children is dropped.
                    if el.children.is_empty() || !b.is_ascii_whitespace() {
                        el.text.push(b as char);
                    }
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_xml() {
        let el = XmlElement::new("a")
            .attr("k", "v")
            .child(XmlElement::new("b").text("hi"))
            .child(XmlElement::new("c"));
        assert_eq!(el.to_xml(), r#"<a k="v"><b>hi</b><c/></a>"#);
        assert_eq!(el.wire_size(), el.to_xml().len());
    }

    #[test]
    fn escapes_special_characters() {
        let el = XmlElement::new("t").attr("q", "a\"b").text("1 < 2 & 3 > 0");
        let s = el.to_xml();
        assert!(s.contains("&quot;"));
        assert!(s.contains("&lt;"));
        assert!(s.contains("&amp;"));
        let back = XmlElement::parse(&s).unwrap();
        assert_eq!(back.attribute("q"), Some("a\"b"));
        assert_eq!(back.text_content(), "1 < 2 & 3 > 0");
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = XmlElement::new("notification")
            .attr("id", "42")
            .child(
                XmlElement::new("routing")
                    .child(XmlElement::new("sender").text("node1"))
                    .child(XmlElement::new("topic").text("cxt/temperature")),
            )
            .child(XmlElement::new("body").child(XmlElement::new("item").attr("t", "temp")));
        let back = XmlElement::parse(&doc.to_xml()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_declaration_and_whitespace() {
        let el = XmlElement::parse("<?xml version=\"1.0\"?>\n  <root>\n  <a/>  </root>").unwrap();
        assert_eq!(el.name, "root");
        assert_eq!(el.children.len(), 1);
    }

    #[test]
    fn find_helpers() {
        let doc = XmlElement::new("r")
            .child(XmlElement::new("x").text("1"))
            .child(XmlElement::new("x").text("2"))
            .child(XmlElement::new("y").text("3"));
        assert_eq!(doc.find("y").unwrap().text_content(), "3");
        let xs: Vec<&str> = doc.find_all("x").map(|e| e.text_content()).collect();
        assert_eq!(xs, vec!["1", "2"]);
        assert!(doc.find("z").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(XmlElement::parse("<a>").is_err());
        assert!(XmlElement::parse("<a></b>").is_err());
        assert!(XmlElement::parse("<a>&bogus;</a>").is_err());
        assert!(XmlElement::parse("<a/><b/>").is_err());
        assert!(XmlElement::parse("no xml here").is_err());
        let err = XmlElement::parse("<a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn self_closing_with_attributes() {
        let el = XmlElement::parse(r#"<ping from="a" to="b"/>"#).unwrap();
        assert_eq!(el.attribute("from"), Some("a"));
        assert_eq!(el.attribute("to"), Some("b"));
        assert!(el.children.is_empty());
    }
}
