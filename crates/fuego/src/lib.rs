//! # contory-fuego
//!
//! A reproduction of the **Fuego Core** event middleware (Tarkoma et al.,
//! PIMRC 2006) that Contory's `2G/3GReference` uses to talk to external
//! context infrastructures: a scalable distributed event framework with
//! XML-based messaging, running over GPRS/UMTS.
//!
//! Pieces:
//!
//! - [`xml`]: a small XML writer/parser used to encode event
//!   notifications. The paper reports a context item or query wrapped in
//!   an event notification weighs **1696 bytes** on the wire; the
//!   [`event::EventNotification`] envelope reproduces that framing (and
//!   hence the UMTS latency/energy the paper measured).
//! - [`EventBroker`]: the fixed-side router: topic subscriptions,
//!   publish fan-out, and request/response services.
//! - [`FuegoClient`]: the phone-side endpoint over a
//!   [`radio::cell::CellModem`], with publish / subscribe / request.
//! - [`ContextInfrastructure`]: the remote context service built on the
//!   broker — stores context records pushed by phones and answers
//!   on-demand, periodic and event-based context queries (the paper's
//!   `extInfra` provisioning).
//! - [`compat`]: the brokerd bridge — federation context packets rendered
//!   into the same fixed 1696-byte envelope, so Table 1's wire-size
//!   accounting survives the brokerd rewiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod client;
pub mod compat;
pub mod event;
mod infra;
pub mod xml;

pub use broker::{EventBroker, SubId};
pub use client::{FuegoClient, RequestError};
pub use infra::{ContextInfrastructure, InfraClient, InfraQuery, InfraRecord, InfraSubscription, PushMode};
