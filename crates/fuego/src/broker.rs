//! The fixed-side event broker.
//!
//! Phones publish, subscribe and issue requests over the cellular link;
//! the broker routes publishes to topic subscribers (as downlink
//! deliveries) and dispatches requests to registered services (the
//! context infrastructure registers itself here).

use crate::event::EventNotification;
use radio::cell::CellNetwork;
use radio::NodeId;
use simkit::Sim;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Client-scoped subscription identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u64);

/// Protocol frames exchanged between [`crate::FuegoClient`]s and the
/// broker. Crate-internal: carried as the opaque payload of cellular
/// messages, with the wire size taken from the XML envelope.
#[derive(Clone, Debug)]
pub(crate) enum Frame {
    /// Client → broker: publish to a topic.
    Publish { event: EventNotification },
    /// Client → broker: subscribe to a topic.
    Subscribe { topic: String, sub: SubId },
    /// Client → broker: cancel a subscription.
    Unsubscribe { sub: SubId },
    /// Client → broker: request/response to a service topic.
    Request {
        topic: String,
        req: u64,
        event: EventNotification,
    },
    /// Broker → client: response to a request (`None` = no such service).
    Response {
        req: u64,
        event: Option<EventNotification>,
    },
    /// Broker → client: delivery for a subscription.
    Deliver { sub: SubId, event: EventNotification },
}

impl Frame {
    /// Bytes on the wire: the enclosed envelope plus a small frame header.
    pub(crate) fn wire_size(&self) -> usize {
        const HEADER: usize = 64;
        match self {
            Frame::Publish { event }
            | Frame::Request { event, .. }
            | Frame::Deliver { event, .. } => HEADER + event.wire_size(),
            Frame::Response { event, .. } => {
                HEADER + event.as_ref().map_or(0, EventNotification::wire_size)
            }
            Frame::Subscribe { topic, .. } => HEADER + topic.len(),
            Frame::Unsubscribe { .. } => HEADER,
        }
    }
}

type Service = Rc<dyn Fn(NodeId, EventNotification) -> Option<EventNotification>>;

struct BrokerInner {
    subs: BTreeMap<String, Vec<(NodeId, SubId)>>,
    services: BTreeMap<String, Service>,
    published: u64,
    delivered: u64,
    /// Fault injection: while `true` the broker is dark — every uplink
    /// frame and server-side publish is dropped on the floor (clients
    /// see request timeouts, subscribers see silence).
    outage: bool,
    /// Frames/publishes discarded during outages.
    dropped: u64,
}

/// The event broker living on the fixed side of the cellular network.
#[derive(Clone)]
pub struct EventBroker {
    sim: Sim,
    net: CellNetwork,
    inner: Rc<RefCell<BrokerInner>>,
}

impl EventBroker {
    /// Creates a broker and wires it to the network's uplink.
    ///
    /// Only one broker may be attached per [`CellNetwork`] (it owns the
    /// uplink handler).
    pub fn new(sim: &Sim, net: &CellNetwork) -> Self {
        let broker = EventBroker {
            sim: sim.clone(),
            net: net.clone(),
            inner: Rc::new(RefCell::new(BrokerInner {
                subs: BTreeMap::new(),
                services: BTreeMap::new(),
                published: 0,
                delivered: 0,
                outage: false,
                dropped: 0,
            })),
        };
        let b = broker.clone();
        net.on_uplink(move |from, payload| {
            if let Ok(frame) = payload.downcast::<Frame>() {
                b.handle(from, frame.as_ref().clone());
            }
        });
        broker
    }

    /// Registers a request/response service on a topic (e.g. the context
    /// infrastructure's `cxt/query`). Replaces any previous handler.
    pub fn register_service(
        &self,
        topic: impl Into<String>,
        f: impl Fn(NodeId, EventNotification) -> Option<EventNotification> + 'static,
    ) {
        self.inner
            .borrow_mut()
            .services
            .insert(topic.into(), Rc::new(f));
    }

    /// Fault injection: turns the broker dark (`true`) or back on
    /// (`false`). A dark broker drops every uplink frame and every
    /// server-side publish; subscriptions and registered services
    /// survive the outage and resume working once restored.
    pub fn set_outage(&self, dark: bool) {
        self.inner.borrow_mut().outage = dark;
    }

    /// Whether the broker is currently dark.
    pub fn is_in_outage(&self) -> bool {
        self.inner.borrow().outage
    }

    /// Frames and publishes discarded during outages so far.
    pub fn dropped_count(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Publishes an event from the fixed side (e.g. infrastructure pushes)
    /// to all subscribers of its topic.
    pub fn publish_from_server(&self, event: EventNotification) {
        let subscribers: Vec<(NodeId, SubId)> = {
            let mut inner = self.inner.borrow_mut();
            if inner.outage {
                inner.dropped += 1;
                obskit::count("fuego_broker_dropped", 1);
                return;
            }
            inner.published += 1;
            obskit::count("fuego_broker_published", 1);
            inner
                .subs
                .get(&event.topic)
                .cloned()
                .unwrap_or_default()
        };
        for (node, sub) in subscribers {
            let frame = Frame::Deliver {
                sub,
                event: event.clone(),
            };
            self.inner.borrow_mut().delivered += 1;
            obskit::count("fuego_broker_deliveries", 1);
            obskit::event(
                obskit::Phase::Deliver,
                &format!("fuego_fanout:{}->{node}", event.topic),
                None,
                self.sim.now(),
            );
            let size = frame.wire_size();
            self.net.send_downlink(node, size, Rc::new(frame));
        }
    }

    /// Events published through the broker so far.
    pub fn published_count(&self) -> u64 {
        self.inner.borrow().published
    }

    /// Deliveries fanned out so far.
    pub fn delivered_count(&self) -> u64 {
        self.inner.borrow().delivered
    }

    /// Current subscriber count on a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner.borrow().subs.get(topic).map_or(0, Vec::len)
    }

    fn handle(&self, from: NodeId, frame: Frame) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.outage {
                inner.dropped += 1;
                obskit::count("fuego_broker_dropped", 1);
                return;
            }
        }
        match frame {
            Frame::Publish { event } => self.publish_from_server(event),
            Frame::Subscribe { topic, sub } => {
                self.inner
                    .borrow_mut()
                    .subs
                    .entry(topic)
                    .or_default()
                    .push((from, sub));
            }
            Frame::Unsubscribe { sub } => {
                let mut inner = self.inner.borrow_mut();
                for list in inner.subs.values_mut() {
                    list.retain(|&(n, s)| !(n == from && s == sub));
                }
                inner.subs.retain(|_, v| !v.is_empty());
            }
            Frame::Request { topic, req, event } => {
                obskit::count("fuego_broker_requests", 1);
                obskit::event(
                    obskit::Phase::Broker,
                    &format!("fuego_dispatch:{topic}@{from}"),
                    None,
                    self.sim.now(),
                );
                let service = self.inner.borrow().services.get(&topic).cloned();
                let response = service.and_then(|s| s(from, event));
                let frame = Frame::Response {
                    req,
                    event: response,
                };
                let size = frame.wire_size();
                self.net.send_downlink(from, size, Rc::new(frame));
            }
            Frame::Response { .. } | Frame::Deliver { .. } => {
                // Downlink-only frames arriving on the uplink are ignored.
            }
        }
    }
}

impl fmt::Debug for EventBroker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("EventBroker")
            .field("topics", &inner.subs.len())
            .field("services", &inner.services.len())
            .field("published", &inner.published)
            .finish()
    }
}
