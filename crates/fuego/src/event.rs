//! Event notifications.
//!
//! Everything that crosses the cellular link is wrapped in an XML event
//! notification. The paper measured the envelope at **1696 bytes** for a
//! context item or query; the header structure here (routing, QoS,
//! metadata, digest) reproduces that framing cost, which is what makes
//! UMTS provisioning pay off only when items are batched.

use crate::xml::XmlElement;
use simkit::SimTime;
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// Fuego protocol namespace (envelope boilerplate).
const NS: &str = "http://www.hiit.fi/fuego/core/event/2006";
const SCHEMA: &str = "http://www.hiit.fi/fuego/core/event/2006 fuego-event-2.1.xsd";
const BROKER_URI: &str = "fuego://broker.dynamos.hiit.fi:5222/events";

/// An XML-encoded event notification.
///
/// ```
/// use fuego::event::EventNotification;
/// use fuego::xml::XmlElement;
/// use simkit::SimTime;
///
/// let body = XmlElement::new("item").attr("type", "temperature").text("14.0");
/// let ev = EventNotification::new("cxt/temperature", "phone-1", body, SimTime::ZERO);
/// assert!(ev.wire_size() > 1000); // realistic envelope framing
/// ```
#[derive(Clone)]
pub struct EventNotification {
    /// Topic the event is published under.
    pub topic: String,
    /// Sender identity (client URI).
    pub sender: String,
    /// Sender-assigned sequence number.
    pub id: u64,
    /// Publication time.
    pub timestamp: SimTime,
    /// Application body.
    pub body: XmlElement,
    /// Structured fast-path payload for in-simulation consumers (not
    /// serialized; the XML body is the wire representation).
    pub payload: Option<Rc<dyn Any>>,
}

impl EventNotification {
    /// Creates a notification.
    pub fn new(
        topic: impl Into<String>,
        sender: impl Into<String>,
        body: XmlElement,
        timestamp: SimTime,
    ) -> Self {
        EventNotification {
            topic: topic.into(),
            sender: sender.into(),
            id: 0,
            timestamp,
            body,
            payload: None,
        }
    }

    /// Attaches a structured payload, builder style.
    pub fn with_payload(mut self, payload: Rc<dyn Any>) -> Self {
        self.payload = Some(payload);
        self
    }

    /// Sets the sequence number, builder style.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Builds the full XML envelope.
    pub fn to_envelope(&self) -> XmlElement {
        // A fake-but-plausible message digest: fixed-width hex derived
        // from cheap hashing, standing in for the integrity header real
        // deployments carry.
        let digest = {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in self.body.to_xml().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            format!("{h:016x}{:016x}{h:016x}{:016x}", h.rotate_left(17), h.rotate_right(23))
        };
        XmlElement::new("fg:notification")
            .attr("xmlns:fg", NS)
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .attr("xsi:schemaLocation", SCHEMA)
            .attr("id", self.id.to_string())
            .attr("version", "2.1")
            .child(
                XmlElement::new("fg:routing")
                    .child(
                        XmlElement::new("fg:sender")
                            .attr("uri", format!("fuego://{}/client", self.sender))
                            .attr("session", format!("s-{:08x}", self.id.wrapping_mul(2654435761))),
                    )
                    .child(
                        XmlElement::new("fg:broker")
                            .attr("uri", BROKER_URI)
                            .attr("hops", "1"),
                    )
                    .child(XmlElement::new("fg:topic").text(&self.topic))
                    .child(
                        XmlElement::new("fg:timestamp")
                            .attr("millis", self.timestamp.as_millis().to_string()),
                    )
                    .child(
                        XmlElement::new("fg:qos")
                            .attr("delivery", "at-least-once")
                            .attr("priority", "normal")
                            .attr("persistent", "false"),
                    )
                    .child(
                        XmlElement::new("fg:expires")
                            .attr("millis", (self.timestamp.as_millis() + 300_000).to_string()),
                    )
                    .child(
                        XmlElement::new("fg:sequence")
                            .attr("epoch", "1124000000000")
                            .attr("number", self.id.to_string())
                            .attr("ack-requested", "true"),
                    )
                    .child(
                        XmlElement::new("fg:trace")
                            .child(
                                XmlElement::new("fg:via")
                                    .attr("uri", "fuego://gprs-gw.operator.example/relay")
                                    .attr("at", self.timestamp.as_millis().to_string()),
                            )
                            .child(
                                XmlElement::new("fg:via")
                                    .attr("uri", BROKER_URI)
                                    .attr("at", (self.timestamp.as_millis() + 1).to_string()),
                            ),
                    ),
            )
            .child(
                XmlElement::new("fg:metadata")
                    .child(
                        XmlElement::new("fg:content-type")
                            .text("application/x-contory-cxtitem+xml"),
                    )
                    .child(XmlElement::new("fg:encoding").text("xebu/none"))
                    .child(XmlElement::new("fg:digest").attr("alg", "fnv64-4").text(&digest))
                    .child(
                        XmlElement::new("fg:security")
                            .child(
                                XmlElement::new("fg:signature")
                                    .attr("alg", "hmac-sha1")
                                    .attr("keyinfo", "dynamos-trial-2005")
                                    // The digest is fixed-width (64 hex chars), but take
                                    // the prefixes fallibly rather than risk a panic in
                                    // the provisioning path if the width ever changes.
                                    .text(format!(
                                        "{digest}{}",
                                        digest.get(..24).unwrap_or(digest.as_str())
                                    )),
                            )
                            .child(
                                XmlElement::new("fg:nonce")
                                    .text(digest.get(..32).unwrap_or(digest.as_str())),
                            ),
                    ),
            )
            .child(XmlElement::new("fg:body").child(self.body.clone()))
    }

    /// Serialized size of the envelope in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_envelope().wire_size()
    }

    /// Reconstructs a notification from an envelope produced by
    /// [`EventNotification::to_envelope`]. The structured payload is lost
    /// (it never crosses the wire). Returns `None` if required envelope
    /// parts are missing.
    pub fn from_envelope(envelope: &XmlElement) -> Option<EventNotification> {
        let routing = envelope.find("fg:routing")?;
        let topic = routing.find("fg:topic")?.text_content().to_owned();
        let sender = routing
            .find("fg:sender")?
            .attribute("uri")?
            .strip_prefix("fuego://")?
            .strip_suffix("/client")?
            .to_owned();
        let millis: u64 = routing
            .find("fg:timestamp")?
            .attribute("millis")?
            .parse()
            .ok()?;
        let id: u64 = envelope.attribute("id")?.parse().ok()?;
        let body = envelope.find("fg:body")?.children.first()?.clone();
        Some(EventNotification {
            topic,
            sender,
            id,
            timestamp: SimTime::from_millis(millis),
            body,
            payload: None,
        })
    }
}

impl fmt::Debug for EventNotification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventNotification")
            .field("topic", &self.topic)
            .field("sender", &self.sender)
            .field("id", &self.id)
            .field("wire_size", &self.wire_size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_item_body() -> XmlElement {
        // A context item body as Contory would encode it: type, value,
        // timestamp, source and the metadata fields of §4.1.
        XmlElement::new("cxtItem")
            .attr("type", "light")
            .attr("timestamp", "1123851807512")
            .attr("lifetime", "30000")
            .attr("source", "intSensor://nokia6630-352087/light0")
            .child(XmlElement::new("value").attr("unit", "lux").text("740.5"))
            .child(
                XmlElement::new("metadata")
                    .child(XmlElement::new("correctness").text("0.93"))
                    .child(XmlElement::new("precision").text("0.5"))
                    .child(XmlElement::new("accuracy").text("1.0"))
                    .child(XmlElement::new("completeness").text("1.0"))
                    .child(XmlElement::new("privacy").text("community"))
                    .child(XmlElement::new("trust").text("trusted")),
            )
    }

    #[test]
    fn typical_item_notification_is_about_1696_bytes() {
        let ev = EventNotification::new(
            "cxt/light",
            "nokia6630-352087",
            typical_item_body(),
            SimTime::from_millis(1_123_851_807),
        )
        .with_id(42);
        let size = ev.wire_size();
        // Paper: "event notifications whose size is 1696 bytes".
        assert!(
            (1500..=1900).contains(&size),
            "envelope size {size}, expected ≈1696"
        );
    }

    #[test]
    fn envelope_round_trips() {
        let ev = EventNotification::new(
            "cxt/temperature",
            "phone-9",
            XmlElement::new("item").text("x"),
            SimTime::from_millis(5_000),
        )
        .with_id(7);
        let env = ev.to_envelope();
        let back = EventNotification::from_envelope(&env).unwrap();
        assert_eq!(back.topic, "cxt/temperature");
        assert_eq!(back.sender, "phone-9");
        assert_eq!(back.id, 7);
        assert_eq!(back.timestamp, SimTime::from_millis(5_000));
        assert_eq!(back.body, ev.body);
    }

    #[test]
    fn payload_is_not_serialized() {
        let ev = EventNotification::new(
            "t",
            "s",
            XmlElement::new("b"),
            SimTime::ZERO,
        )
        .with_payload(Rc::new(123u32));
        let env = ev.to_envelope();
        let back = EventNotification::from_envelope(&env).unwrap();
        assert!(back.payload.is_none());
    }

    #[test]
    fn malformed_envelope_yields_none() {
        assert!(EventNotification::from_envelope(&XmlElement::new("nope")).is_none());
    }
}
